"""The asyncio streaming front, end to end in one process.

Boots the aio front (exactly what ``python -m repro.service --front aio``
runs) on an ephemeral port, then speaks its NDJSON stream protocol with a
plain ``asyncio`` client: verdicts arrive line by line *while the corpus
is still uploading*, so neither side ever holds the whole corpus in
memory.  Also shows per-request deadlines (``X-Repro-Deadline-Ms``),
violation detail negotiation (``?detail=``) and the ``aio`` telemetry
block.  The CI ``service-aio`` job runs this script as the streaming
smoke test.

Run with:  python examples/http_streaming.py
"""

import asyncio
import json

from repro.service import ValidationService
from repro.service.aio import AsyncServiceServer

PATTERN = "(ab+b(b?)a)*"
DTD = "<!ELEMENT a (b, c?)> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>"


async def stream(port: int, target: str, header: dict, items, extra_headers=()):
    """POST one NDJSON stream; print each response line as it lands.

    The request body goes out chunk by chunk and the response is consumed
    line by line off the same connection — this is the whole point of the
    streaming front: verdict N is on the wire before item N+1 leaves.
    """
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    head_lines = [
        f"POST {target} HTTP/1.1",
        "Host: example",
        "Content-Type: application/x-ndjson",
        "Transfer-Encoding: chunked",
        "Connection: close",
        *extra_headers,
    ]
    writer.write(("\r\n".join(head_lines) + "\r\n\r\n").encode())

    def send_line(value) -> None:
        line = (json.dumps(value) + "\n").encode()
        writer.write(f"{len(line):x}\r\n".encode() + line + b"\r\n")

    send_line(header)
    for item in items:
        send_line(item)
        await writer.drain()
    writer.write(b"0\r\n\r\n")
    await writer.drain()

    status_line = (await reader.readline()).decode().strip()
    print(f"  {status_line}")
    while (await reader.readline()).strip():
        pass  # response headers
    results = []
    while True:
        size_line = await reader.readline()
        size = int(size_line.strip() or b"0", 16)
        if size == 0:
            break
        payload = await reader.readexactly(size)
        await reader.readexactly(2)  # CRLF after the chunk
        for line in payload.splitlines():
            value = json.loads(line)
            results.append(value)
            print(f"    {value!r}")
    writer.close()
    return results


async def main() -> None:
    service = ValidationService(workers=8)
    front = AsyncServiceServer(service)
    await front.start("127.0.0.1", 0)
    port = front.address()[1]
    print(f"aio front listening on 127.0.0.1:{port}")

    # -- stream a /match corpus: header line, words, verdicts in order ------
    print("\nstreaming POST /match:")
    words = ["abba", "bb", "", "abbaabba", "ba"]
    lines = await stream(port, "/match", {"pattern": PATTERN}, words)
    verdicts = lines[1:-1]
    assert lines[-1] == {"count": len(words), "done": True}
    assert verdicts == [True, False, True, True, True]

    # -- stream /validate with a negotiated detail level --------------------
    print("\nstreaming POST /validate?detail=summary:")
    documents = ["<a><b/></a>", "<a><c/></a>"]
    lines = await stream(port, "/validate?detail=summary", {"dtd": DTD}, documents)
    assert lines[1] == {"valid": True, "violations": 0}
    assert lines[2]["valid"] is False

    # -- a missed deadline cuts a started stream with an in-stream error ----
    print("\nPOST /match with X-Repro-Deadline-Ms: 1 on a large corpus:")
    try:
        await stream(
            port,
            "/match",
            {"pattern": PATTERN},
            (["abba" * 8] * 20000),
            extra_headers=("X-Repro-Deadline-Ms: 1",),
        )
    except (ConnectionError, asyncio.IncompleteReadError):
        print("    (stream cut at the deadline)")

    # -- the aio telemetry block --------------------------------------------
    stats = front.stats_payload()
    aio = stats["aio"]
    print(
        f"\naio telemetry: {aio['connections']} connections, "
        f"{aio['streams']} streams, {aio['deadline_hits']} deadline hits"
    )
    assert aio["streams"] >= 3

    await front.close()
    service.close()
    print("\nall streaming checks passed")


if __name__ == "__main__":
    asyncio.run(main())
