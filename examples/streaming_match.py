"""Streaming matching of a long event stream against a deterministic expression.

The paper stresses that all its matching algorithms are streamable: they
read the word one symbol at a time and keep only the current position.
This example models a device protocol as a deterministic content model,
generates a long event stream, and matches it with each of the paper's
matchers, comparing the transition counts and showing that validity is
known the moment the stream goes wrong.

Run with:  python examples/streaming_match.py
"""

import random
import time

from repro.matching import (
    ClimbingMatcher,
    GlushkovMatcher,
    KOccurrenceMatcher,
    LowestColoredAncestorMatcher,
    PathDecompositionMatcher,
)
from repro.regex.parse_tree import build_parse_tree
from repro.regex.parser import parse
from repro.regex.words import member_stream

# A device session: connect, authenticate (password or token, with retries),
# then any number of reads/writes each optionally acknowledged, finally close.
PROTOCOL = (
    "connect (password | token) retry? "
    "((read ack?) | (write ack? sync?))* "
    "close"
)


def main() -> None:
    expression = parse(PROTOCOL, dialect="named")
    tree = build_parse_tree(expression)
    print(f"protocol content model: {expression}")
    print(f"parse tree size {tree.size}, alphabet {sorted(tree.alphabet)}")

    rng = random.Random(7)
    stream = member_stream(expression, 20_000, rng)
    print(f"generated a valid event stream of {len(stream)} events")

    matchers = [
        KOccurrenceMatcher(tree),
        PathDecompositionMatcher(tree),
        LowestColoredAncestorMatcher(tree),
        ClimbingMatcher(tree),
        GlushkovMatcher(tree),
    ]
    for matcher in matchers:
        start = time.perf_counter()
        accepted = matcher.accepts(stream)
        elapsed = (time.perf_counter() - start) * 1000
        print(f"  {matcher.name:26} accepted={accepted}   {elapsed:7.1f} ms")

    # Streaming: corrupt one event in the middle and watch the run die there.
    broken = list(stream)
    broken[len(broken) // 2] = "reboot"
    run = KOccurrenceMatcher(tree).start()
    for index, event in enumerate(broken):
        if not run.feed(event):
            print(f"stream rejected at event #{index} ({event!r}) — no buffering needed")
            break
    else:
        print("stream unexpectedly accepted")


if __name__ == "__main__":
    main()
