"""The HTTP validation service, end to end in one process.

Boots ``repro.service`` on an ephemeral port (exactly what
``python -m repro.service --port 0`` runs), then walks through every
endpoint with a plain ``urllib`` client: batch matching on both batch
paths, DTD and XSD document validation, determinism rejections, and the
telemetry snapshot.  The CI ``service`` job runs this script as the HTTP
smoke test.

Run with:  python examples/http_service.py
"""

import json
import threading
import urllib.error
import urllib.request

from repro.service import ServiceHTTPServer, ValidationService


def request(port: int, path: str, payload: dict | None = None) -> tuple[int, dict]:
    """One JSON request against the local service (POST if a payload is given)."""
    url = f"http://127.0.0.1:{port}{path}"
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    req = urllib.request.Request(url, data=data, headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def main() -> None:
    service = ValidationService(workers=8)
    server = ServiceHTTPServer(("127.0.0.1", 0), service)
    port = server.server_address[1]
    threading.Thread(target=server.serve_forever, daemon=True).start()
    print(f"service listening on 127.0.0.1:{port} with 8 workers")

    # -- batch matching: the starred pattern replays shared lazy-DFA rows ----
    status, body = request(
        port, "/match", {"pattern": "(ab+b(b?)a)*", "words": ["abba", "bba", "bb", ""]}
    )
    print(f"\nPOST /match  (status {status}, path {body['batch_path']})")
    print("  verdicts:", body["verdicts"])

    # -- a star-free pattern answers the whole corpus in one scan ------------
    status, body = request(
        port, "/match", {"pattern": "(a+b)(c?)d", "words": ["acd", "bd", "dd"]}
    )
    print(f"POST /match  (status {status}, path {body['batch_path']})")
    print("  verdicts:", body["verdicts"])

    # -- non-deterministic input is a client error, not a server fault -------
    status, body = request(port, "/match", {"pattern": "(a*ba+bb)*", "words": ["bb"]})
    print(f"POST /match on the paper's e2 -> {status}: {body['error'][:60]}...")

    # -- DTD validation with violation messages ------------------------------
    status, body = request(
        port,
        "/validate",
        {
            "dtd": "<!ELEMENT a (b, c?)> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>",
            "documents": ["<a><b/><c/></a>", "<a><c/></a>"],
        },
    )
    print(f"\nPOST /validate (dtd, status {status})")
    for verdict in body["verdicts"]:
        print(" ", verdict)

    # -- XSD validation from the JSON wire shape -----------------------------
    status, body = request(
        port,
        "/validate",
        {
            "xsd": {
                "root": "order",
                "elements": {
                    "order": {
                        "kind": "sequence", "min": 1, "max": 1,
                        "children": [
                            {"kind": "element", "name": "sku", "min": 1, "max": 1},
                            {"kind": "element", "name": "qty", "min": 1, "max": 3},
                        ],
                    }
                },
            },
            "documents": ["<order><sku/><qty/><qty/></order>", "<order><qty/></order>"],
        },
    )
    print(f"POST /validate (xsd, status {status})")
    print("  valid:", [verdict["valid"] for verdict in body["verdicts"]])

    # -- the telemetry snapshot ----------------------------------------------
    status, stats = request(port, "/stats")
    print(f"\nGET /stats (status {status})")
    print("  requests:     ", stats["requests"])
    print("  pattern_cache:", stats["pattern_cache"])
    print("  patterns:     ", sorted(stats["patterns"]))
    print("  validators:   ", [key.split(":", 1)[0] for key in stats["validators"]])
    print("  shared_rows:  ", stats["shared_rows"])

    server.shutdown()
    server.server_close()
    service.close()
    print("\nserver stopped cleanly")


if __name__ == "__main__":
    main()
