"""Tokenizing log lines with the kernel-backed longest-match lexer.

``repro.lexer.Lexer`` joins named rules into one deterministic union
expression, compiles it to a flat stride-1 kernel table, and scans with
maximal munch — the classical lexer discipline, running on the paper's
Glushkov machinery: every scanner state is a position of the marked
union expression, so an accepting state names its rule for free.

Run with:  python examples/lexer_tokenize.py
"""

from repro.errors import LexError
from repro.lexer import Lexer
from repro.regex.ast import plus, sym, union

# Character-class rules are unions of single-character symbols; each rule
# has a disjoint first-character set, which is exactly what makes the
# rule union deterministic.
DIGIT = union(*[sym(ch) for ch in "0123456789"])
LETTER = union(*[sym(ch) for ch in "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"])
PUNCT = union(*[sym(ch) for ch in "-:=[]().,/"])

LOG_LINES = [
    "2026-08-08 12:34:51 INFO worker-7 started (pid=4182)",
    "2026-08-08 12:34:52 WARN retry 3 of 5 for job import.users",
    "2026-08-08 12:35:03 INFO batch done: 14813 rows in 350 ms",
]


def main() -> None:
    lexer = Lexer(
        [
            ("NUM", plus(DIGIT)),
            ("WORD", plus(LETTER)),
            ("PUNCT", PUNCT),
            ("SPACE", plus(sym(" "))),
        ],
        skip=("SPACE",),
    )
    stats = lexer.stats()
    print(
        f"compiled {stats['rules']} rules: {stats['states']} states over a "
        f"{stats['alphabet']}-symbol alphabet, {stats['table_entries']} table entries"
    )

    for line in LOG_LINES:
        tokens = lexer.tokenize(line)
        print(f"\n{line}")
        print("  " + " ".join(f"{token.tag}:{token.text}" for token in tokens))

    # Maximal munch: "350" is one NUM, never three; "worker" one WORD.
    sample = lexer.tokenize("350ms")
    assert [(t.tag, t.text) for t in sample] == [("NUM", "350"), ("WORD", "ms")]

    # A character no rule covers reports the exact stuck offset.
    try:
        lexer.tokenize("pid=4182µs")
    except LexError as error:
        print(f"\nstuck input: {error} (offset {error.position})")


if __name__ == "__main__":
    main()
