"""XSD validation on the warm compile cache, with telemetry.

The walkthrough the README points at: declare an XSD-style schema with
``minOccurs``/``maxOccurs`` bounds, check Unique Particle Attribution
(the XML-Schema determinism rule, Section 3.3 of the paper), then
batch-validate many documents.  Every content model is compiled once into
the process-wide ``repro.compile`` cache; repeated validation replays the
memoized lazy-DFA rows, and the cache/runtime telemetry shows exactly how
much machinery was materialized for the traffic served.

Run with:  python examples/xsd_validation.py
"""

import random

import repro
from repro.xml import element
from repro.xml.xsd import XSDSchema, choice, element_particle, sequence


def declare_schema() -> XSDSchema:
    """An order feed: orders hold items, items carry bounded quantities."""
    schema = XSDSchema(root="orders")
    schema.declare(
        "orders",
        sequence(element_particle("vendor", 0, 1), element_particle("order", 1, None)),
    )
    schema.declare(
        "order",
        sequence(
            element_particle("sku"),
            element_particle("qty", 1, 3),
            choice(
                element_particle("description"),
                element_particle("summary"),
                min_occurs=0,
                max_occurs=1,
            ),
            element_particle("tag", 0, None),
        ),
    )
    return schema


def make_document(order_count: int, seed: int = 2012, break_last: bool = False):
    """A feed with *order_count* varied orders; optionally violate qty maxOccurs."""
    rng = random.Random(seed)
    orders = []
    for index in range(order_count):
        children = [element("sku", text=f"sku-{index}")]
        children.extend(element("qty") for _ in range(rng.randint(1, 3)))
        roll = rng.random()
        if roll < 0.4:
            children.append(element("description"))
        elif roll < 0.8:
            children.append(element("summary"))
        children.extend(element("tag") for _ in range(rng.randint(0, 3)))
        orders.append(element("order", *children))
    if break_last:
        orders[-1].extend([element("qty")] * 4)  # exceeds qty{1,3} (and order)
    return element("orders", element("vendor"), *orders)


def main() -> None:
    schema = declare_schema()

    # --- 1. Unique Particle Attribution (schema determinism) -------------------
    print("UPA check per declared element:")
    for name, report in schema.check_unique_particle_attribution().items():
        particle = schema.particle(name)
        print(f"  [{'OK' if report.deterministic else 'FAIL'}] {name:7} {particle.describe()}")

    # --- 2. batch document validation on the warm cache -------------------------
    documents = [make_document(40, seed=seed) for seed in range(25)]
    documents.append(make_document(40, break_last=True))
    verdicts = [schema.validate_element(document) for document in documents]
    valid = sum(1 for verdict in verdicts if verdict)
    print(f"\nValidated {len(documents)} documents: "
          f"{valid} valid, {len(verdicts) - valid} invalid (the corrupted one)")
    for verdict in verdicts:
        for violation in verdict:  # ValidationResult is list-like over violations
            print(f"  violation: {violation.describe()}")
            print(f"    child_index={violation.child_index} expected={violation.expected}")

    # --- 3. telemetry: what did that traffic cost? -------------------------------
    totals = schema.stats()["totals"]
    print("\nLazy-DFA materialization across all content models:")
    for key, value in totals.items():
        print(f"  {key:22}: {value}")

    cache = repro.stats()["pattern_cache"]
    print("\nCompile cache (process-wide, shared with any other validator):")
    for key, value in cache.items():
        print(f"  {key:22}: {value}")
    print("\nNote: transitions_memoized stays put while documents keep arriving —")
    print("steady-state validation is pure integer-row replay.  Watch 'evictions'")
    print("under real traffic to size repro.COMPILE_CACHE_SIZE.")


if __name__ == "__main__":
    main()
