"""Schema linting: batch determinism checking of content models.

DTD and XML Schema require every content model to be deterministic; a
schema "linter" therefore runs the paper's linear-time test over all
declared models and explains each rejection.  This example lints a mix of
hand-written models (including the paper's examples), a synthetic corpus
shaped like real-world DTDs, and XSD particles with numeric occurrence
constraints (the Unique Particle Attribution rule of Section 3.3).

Run with:  python examples/schema_linting.py
"""

import random

import repro
from repro.regex.generators import dtd_corpus
from repro.regex.properties import classify
from repro.xml import XSDSchema, choice, element_particle, sequence


HAND_WRITTEN = {
    "chapter": "title (para | figure)* footnote?",
    "book": "title author+ (chapter | appendix)+ index?",
    "ambiguous-intro": "front? front body",          # two 'front' first positions
    "paper-e1": "(ab+b(b?)a)*",                       # deterministic (paper Example 2.1)
    "paper-e2": "(a*ba+bb)*",                         # non-deterministic (paper Example 2.1)
    "mixedish": "(item | note | warning)*",
}


def lint_hand_written() -> None:
    print("== Hand-written content models ==")
    for name, text in HAND_WRITTEN.items():
        dialect = "named" if " " in text else "paper"
        pattern = repro.compile(text, dialect=dialect)
        status = "OK " if pattern.is_deterministic else "FAIL"
        print(f"  [{status}] {name:18} {text}")
        if not pattern.is_deterministic:
            print(f"          reason: {pattern.explain()}")


def lint_synthetic_corpus() -> None:
    print("\n== Synthetic DTD-like corpus (substitute for the Grijzenhout crawl) ==")
    rng = random.Random(2012)
    corpus = dtd_corpus(rng, 300)
    deterministic = 0
    worst_depth = 0
    for model in corpus:
        summary = classify(model)
        worst_depth = max(worst_depth, summary["alternation_depth"])
        if repro.is_deterministic(model):
            deterministic += 1
    print(f"  models checked              : {len(corpus)}")
    share = 100 * deterministic / len(corpus)
    print(f"  deterministic               : {deterministic} ({share:.1f}%)")
    print(f"  max +/· alternation depth   : {worst_depth} (paper: <= 4 in real DTDs)")


def lint_xsd_schema() -> None:
    print("\n== XSD particles and Unique Particle Attribution ==")
    schema = XSDSchema(root="order")
    schema.declare(
        "order",
        sequence(
            element_particle("customer"),
            element_particle("item", 1, None),
            element_particle("note", 0, 2),
        ),
    )
    schema.declare(
        "item",
        sequence(
            element_particle("sku"),
            choice(element_particle("qty"), element_particle("weight")),
        ),
    )
    # A UPA violation: after one 'entry' the parser cannot tell which particle
    # the next 'entry' belongs to.
    schema.declare(
        "log",
        sequence(element_particle("entry", 1, 2), element_particle("entry", 1, 1)),
    )
    for name, report in schema.check_unique_particle_attribution().items():
        particle = schema.particle(name)
        status = "OK " if report.deterministic else "FAIL"
        print(f"  [{status}] {name:8} {particle.describe()}")
        if not report.deterministic:
            print(f"          reason: {report.describe()}")


def main() -> None:
    lint_hand_written()
    lint_synthetic_corpus()
    lint_xsd_schema()


if __name__ == "__main__":
    main()
