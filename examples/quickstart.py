"""Quickstart: determinism checking and matching with the public API.

Reproduces the paper's running examples: e1 = (ab+b(b?)a)* (deterministic),
e2 = (a*ba+bb)* (not), and the Figure 1 expression e0, then shows matching,
streaming and the structural summary of an expression.

Run with:  python examples/quickstart.py
"""

import repro


def main() -> None:
    # --- determinism (Theorem 3.5) -----------------------------------------------
    e1 = repro.compile("(ab+b(b?)a)*")
    print(f"e1 = {e1.expression}  ->  {e1.explain()}")

    e2 = repro.compile("(a*ba+bb)*")
    print(f"e2 = {e2.expression}  ->  {e2.explain()}")

    e0 = repro.compile("(c?((ab*)(a?c)))*(ba)")
    print(f"e0 = {e0.expression}  ->  {e0.explain()} (matched with {e0.strategy})")

    # --- matching (Section 4) ------------------------------------------------------
    for word in ["abba", "bba", "", "bb"]:
        print(f"  e1 matches {word!r:8} : {e1.match(word)}")
    for word in ["ba", "cabacba", "acacba", "ab"]:
        print(f"  e0 matches {word!r:10} : {e0.match(word)}")

    # --- streaming: feed one symbol at a time --------------------------------------
    run = e1.stream()
    for symbol in "abba":
        alive = run.feed(symbol)
        print(f"  fed {symbol!r}: alive={alive}, accepting so far={run.is_accepting()}")

    # --- named symbols (XML element names) -----------------------------------------
    content_model = repro.compile("title (author | editor)+ year?", dialect="named")
    print(f"content model deterministic: {content_model.is_deterministic}")
    print("  [title, author, author]  :", content_model.match(["title", "author", "author"]))
    print("  [title, year]            :", content_model.match(["title", "year"]))

    # --- numeric occurrence indicators (Section 3.3) ---------------------------------
    print("(ab){2}a(b+d) deterministic:", repro.is_deterministic("(ab){2}a(b+d)"))
    print("(ab){1,2}a    deterministic:", repro.is_deterministic("(ab){1,2}a"))

    # --- batch matching on the compiled lazy-DFA runtime ----------------------------
    # match_all encodes every word into integer symbol codes once and replays
    # memoized (state, symbol) -> state rows; repeated traffic against one
    # pattern only pays two array/dict probes per symbol.
    words = ["abba", "bba", "bb", "abab", ""]
    print("e1.match_all:", dict(zip(words, e1.match_all(words))))
    print("lazy-DFA materialization:", e1.runtime.stats())

    # --- the compile cache (re-style) ------------------------------------------------
    # repro.compile is LRU-cached: recompiling the same content model (what a
    # schema validator does millions of times) returns the same warm Pattern,
    # memoized transition rows included.  repro.purge() drops the cache.
    again = repro.compile("(ab+b(b?)a)*")
    print("compile cache reuses pattern:", again is e1, repro.stats()["pattern_cache"])

    # --- structural summary ------------------------------------------------------------
    print("summary of e1:", e1.describe())


if __name__ == "__main__":
    main()
