"""DTD validation: the application the paper is motivated by.

Parses an XML document carrying its own DOCTYPE internal subset, builds the
deterministic matchers for every content model, validates the document, and
then shows how a corrupted document is rejected with a located diagnosis.
Also demonstrates streaming validation of a child sequence (the matchers
read one child name at a time, as a SAX-style validator would).

Run with:  python examples/dtd_validation.py
"""

from repro.xml import DTDValidator, element, parse_dtd, parse_xml

DOCUMENT = """<?xml version="1.0"?>
<!DOCTYPE catalog [
  <!ELEMENT catalog (vendor?, product+)>
  <!ELEMENT vendor (#PCDATA)>
  <!ELEMENT product (name, price, (description | summary)?, tag*)>
  <!ELEMENT name (#PCDATA)>
  <!ELEMENT price (#PCDATA)>
  <!ELEMENT description (#PCDATA)>
  <!ELEMENT summary (#PCDATA)>
  <!ELEMENT tag (#PCDATA)>
]>
<catalog>
  <vendor>ACME</vendor>
  <product>
    <name>Widget</name>
    <price>9.99</price>
    <description>A fine widget.</description>
    <tag>tools</tag><tag>metal</tag>
  </product>
  <product>
    <name>Gadget</name>
    <price>19.99</price>
  </product>
</catalog>
"""


def main() -> None:
    parsed = parse_xml(DOCUMENT)
    dtd = parse_dtd(parsed.internal_subset, root=parsed.doctype_name)

    print("Content models declared by the DTD:")
    for name, model in dtd.elements.items():
        print(f"  <!ELEMENT {name:<12}{model.describe()}>")

    validator = DTDValidator(dtd)
    print("\nOriginal document valid:", validator.is_valid(parsed.document))

    # Corrupt the document: price before name in the second product.
    broken = parsed.document
    second = broken.root.find_all("product")[1]
    second.children.reverse()
    print("\nAfter swapping <name> and <price> in the second product:")
    for violation in validator.validate(broken):
        print("  violation:", violation.describe())

    # Streaming validation of a child sequence, one name at a time.
    print("\nStreaming check of a <product> child sequence:")
    checker = validator.checker_for("product")
    for child in ["name", "price", "summary", "tag", "tag"]:
        print(f"  feed {child!r:14} alive={checker.feed(child)} complete={checker.complete()}")

    # Building documents programmatically works the same way.
    generated = element(
        "catalog",
        element("product", element("name", text="Bolt"), element("price", text="0.10")),
    )
    print("\nProgrammatically built document valid:", validator.is_valid(generated))


if __name__ == "__main__":
    main()
