"""Fail when any first-party module grows beyond the size budget.

The api.py god-module accreted past 1200 lines before it was split into
a facade plus ``repro/cache.py`` and ``repro/matching/plan.py``, and the
asyncio front repeated the pattern at 1000+.  This guard (run by the CI
lint job, and locally as ``python tools/check_module_sizes.py``) keeps
both splits honest: no module under ``src/repro`` may exceed
:data:`MAX_LINES` physical lines.

When a module trips the limit, split along an ownership seam (the way
``service/aio.py`` shed its framing helpers and entry points) instead of
raising the budget.  Stdlib only, so the CI runner's bare python works.
"""

from __future__ import annotations

import sys
from pathlib import Path

#: Physical-line budget per module.  Deliberately looser than any
#: current module so the guard only fires on real re-accretion.
MAX_LINES = 900

#: The tree the budget applies to, relative to the repo root.
SOURCE_ROOT = Path("src") / "repro"


def oversized_modules(root: Path, limit: int = MAX_LINES) -> list[tuple[Path, int]]:
    """Every ``.py`` file under *root* longer than *limit* lines."""
    offenders = []
    for path in sorted(root.rglob("*.py")):
        lines = path.read_text(encoding="utf-8").count("\n")
        if lines > limit:
            offenders.append((path, lines))
    return offenders


def main(argv: list[str] | None = None) -> int:
    arguments = argv if argv is not None else sys.argv[1:]
    repo_root = Path(__file__).resolve().parent.parent
    root = Path(arguments[0]) if arguments else repo_root / SOURCE_ROOT
    if not root.is_dir():
        print(f"no such source tree: {root}", file=sys.stderr)
        return 2
    offenders = oversized_modules(root)
    if offenders:
        for path, lines in offenders:
            print(
                f"{path}: {lines} lines exceeds the {MAX_LINES}-line module budget "
                "(split along an ownership seam; do not raise the budget)",
                file=sys.stderr,
            )
        return 1
    print(f"module sizes OK: every module under {root} is <= {MAX_LINES} lines")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
