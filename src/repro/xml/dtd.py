"""DTD content models and document type definitions.

A DTD declares, for every element name, a *content model*: ``EMPTY``,
``ANY``, mixed content ``(#PCDATA | a | b)*`` or an *element content*
model — a regular expression over element names written with ``,``
(sequence), ``|`` (choice) and the postfix operators ``?``, ``*``, ``+``.
The XML specification requires element content models to be
deterministic; this module parses them into the library's AST so the
determinism checkers and matchers of the paper apply directly.

Mixed content is the ``(a1 + ... + am)*`` shape the paper's introduction
uses to show that the classical Glushkov-based determinism test is
quadratic; it is modelled explicitly (:class:`ContentModel` with kind
``"mixed"``), and its expression form is exactly
:func:`repro.regex.generators.mixed_content`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterator

from ..errors import DTDSyntaxError
from ..regex.ast import Optional, Plus, Regex, Star, Sym, Union, concat, star, sym, union

_NAME = r"[A-Za-z_:][A-Za-z0-9_.:-]*"
_ELEMENT_DECL = re.compile(rf"<!ELEMENT\s+({_NAME})\s+(.*?)>", re.S)
_ATTLIST_DECL = re.compile(rf"<!ATTLIST\s+{_NAME}.*?>", re.S)
_COMMENT = re.compile(r"<!--.*?-->", re.S)


@dataclass(frozen=True, slots=True)
class ContentModel:
    """The declared content of one element type.

    ``kind`` is one of ``"empty"``, ``"any"``, ``"mixed"`` or
    ``"children"``; ``expression`` is the regular expression over child
    names (``None`` for EMPTY/ANY), and ``mixed_names`` lists the element
    names allowed in mixed content.
    """

    kind: str
    expression: Regex | None = None
    mixed_names: tuple[str, ...] = ()

    @property
    def allows_text(self) -> bool:
        """True when character data may appear among the children."""
        return self.kind in ("mixed", "any")

    def describe(self) -> str:
        if self.kind == "empty":
            return "EMPTY"
        if self.kind == "any":
            return "ANY"
        if self.kind == "mixed":
            inner = " | ".join(("#PCDATA",) + self.mixed_names)
            return f"({inner})*"
        return str(self.expression)


@dataclass(slots=True)
class DTD:
    """A document type definition: a root name and per-element content models."""

    root: str | None = None
    elements: dict[str, ContentModel] = field(default_factory=dict)

    def declare(self, name: str, model: ContentModel | Regex | str) -> None:
        """Declare (or overwrite) the content model of element *name*."""
        if isinstance(model, str):
            model = parse_content_model(model)
        elif isinstance(model, Regex):
            model = ContentModel("children", model)
        self.elements[name] = model

    def content_model(self, name: str) -> ContentModel | None:
        """The declared content model of *name*, or ``None`` if undeclared."""
        return self.elements.get(name)

    def declared_names(self) -> list[str]:
        """All declared element names."""
        return list(self.elements)

    def content_expressions(self) -> Iterator[tuple[str, Regex]]:
        """Iterate over (element name, content expression) for regex-backed models.

        Mixed content is included in its ``(a1+...+am)*`` expression form so
        callers (the schema linter, the benchmarks) see every expression the
        validator will have to handle.
        """
        for name, model in self.elements.items():
            expression = content_model_expression(model)
            if expression is not None:
                yield name, expression


def content_model_expression(model: ContentModel) -> Regex | None:
    """The regular expression a content model constrains children with."""
    if model.kind == "children":
        return model.expression
    if model.kind == "mixed" and model.mixed_names:
        return star(union(*[sym(name) for name in model.mixed_names]))
    if model.kind == "mixed":
        return None  # (#PCDATA) only: no element children allowed
    return None  # EMPTY and ANY do not constrain children with an expression


def describe_expected(expected: tuple[str, ...], can_end: bool) -> str:
    """Render an expected-next tag set in DTD choice syntax.

    The diagnostics layer hands validators the symbols that may follow a
    stuck child position (see :mod:`repro.diagnostics`); this renders
    them the way a DTD author reads content models — ``(a | b)``, with
    ``#END`` marking that the element could also close here.
    """
    options = [f"<{tag}>" for tag in expected]
    if can_end:
        options.append("#END")
    if not options:
        return "nothing"
    if len(options) == 1:
        return options[0]
    return "(" + " | ".join(options) + ")"


# ---------------------------------------------------------------------------
# Content-model syntax
# ---------------------------------------------------------------------------

@lru_cache(maxsize=1024)
def parse_content_model(text: str) -> ContentModel:
    """Parse the right-hand side of an ``<!ELEMENT>`` declaration.

    Memoized: schema corpora repeat the same handful of declarations across
    thousands of DTDs (Li et al.), and :class:`ContentModel` instances are
    frozen — as are the expression ASTs they carry — so sharing one parse
    across every DTD that declares the same model is free.  It also means
    equal declarations hit the same key in the :mod:`repro.api` compile
    cache downstream, reusing the warm matcher and its lazy-DFA rows.
    """
    stripped = text.strip()
    if stripped == "EMPTY":
        return ContentModel("empty")
    if stripped == "ANY":
        return ContentModel("any")
    if "#PCDATA" in stripped:
        return _parse_mixed(stripped)
    expression = _ContentParser(stripped).parse()
    return ContentModel("children", expression)


def _parse_mixed(text: str) -> ContentModel:
    body = text.strip()
    if body.endswith("*"):
        body = body[:-1].strip()
    if not (body.startswith("(") and body.endswith(")")):
        raise DTDSyntaxError(f"malformed mixed content model: {text!r}")
    parts = [part.strip() for part in body[1:-1].split("|")]
    if parts[0] != "#PCDATA":
        raise DTDSyntaxError("mixed content must start with #PCDATA")
    names = tuple(part for part in parts[1:] if part)
    for name in names:
        if not re.fullmatch(_NAME, name):
            raise DTDSyntaxError(f"invalid element name in mixed content: {name!r}")
    return ContentModel("mixed", mixed_names=names)


class _ContentParser:
    """Recursive-descent parser for element content models (DTD syntax)."""

    def __init__(self, text: str):
        self.text = text
        self.index = 0

    def parse(self) -> Regex:
        expression = self._parse_choice_or_sequence()
        self._skip_whitespace()
        if self.index != len(self.text):
            raise DTDSyntaxError(
                f"unexpected {self.text[self.index]!r} at offset {self.index} in content model"
            )
        return expression

    def _skip_whitespace(self) -> None:
        while self.index < len(self.text) and self.text[self.index].isspace():
            self.index += 1

    def _parse_choice_or_sequence(self) -> Regex:
        items = [self._parse_item()]
        separator: str | None = None
        while True:
            self._skip_whitespace()
            if self.index < len(self.text) and self.text[self.index] in ",|":
                current = self.text[self.index]
                if separator is None:
                    separator = current
                elif separator != current:
                    raise DTDSyntaxError(
                        "cannot mix ',' and '|' at the same level of a content model"
                    )
                self.index += 1
                items.append(self._parse_item())
            else:
                break
        if len(items) == 1:
            return items[0]
        return union(*items) if separator == "|" else concat(*items)

    def _parse_item(self) -> Regex:
        self._skip_whitespace()
        if self.index < len(self.text) and self.text[self.index] == "(":
            self.index += 1
            inner = self._parse_choice_or_sequence()
            self._skip_whitespace()
            if self.index >= len(self.text) or self.text[self.index] != ")":
                raise DTDSyntaxError("expected ')' in content model")
            self.index += 1
            return self._parse_postfix(inner)
        match = re.compile(_NAME).match(self.text, self.index)
        if match is None:
            raise DTDSyntaxError(
                f"expected an element name at offset {self.index} in content model"
            )
        self.index = match.end()
        return self._parse_postfix(Sym(match.group(0)))

    def _parse_postfix(self, expression: Regex) -> Regex:
        if self.index < len(self.text) and self.text[self.index] in "?*+":
            operator = self.text[self.index]
            self.index += 1
            if operator == "?":
                return Optional(expression)
            if operator == "*":
                return Star(expression)
            return Plus(expression)
        return expression


# ---------------------------------------------------------------------------
# DTD documents
# ---------------------------------------------------------------------------

def parse_dtd(text: str, root: str | None = None) -> DTD:
    """Parse the ``<!ELEMENT ...>`` declarations of a DTD (internal subset or file)."""
    cleaned = _COMMENT.sub("", text)
    cleaned = _ATTLIST_DECL.sub("", cleaned)
    dtd = DTD(root=root)
    for match in _ELEMENT_DECL.finditer(cleaned):
        name, model_text = match.group(1), match.group(2)
        dtd.declare(name, parse_content_model(model_text))
    if dtd.root is None and dtd.elements:
        dtd.root = next(iter(dtd.elements))
    return dtd


def dtd_to_text(dtd: DTD) -> str:
    """Serialise a DTD back to ``<!ELEMENT>`` declarations."""
    lines = []
    for name, model in dtd.elements.items():
        if model.kind == "children":
            body = _expression_to_dtd_syntax(model.expression)
        else:
            body = model.describe()
        lines.append(f"<!ELEMENT {name} {body}>")
    return "\n".join(lines)


def _expression_to_dtd_syntax(expression: Regex) -> str:
    from ..regex.ast import Concat as ConcatNode, Epsilon

    if isinstance(expression, Sym):
        return expression.symbol
    if isinstance(expression, Epsilon):
        return "EMPTY"
    if isinstance(expression, ConcatNode):
        return f"({_flatten(expression, ConcatNode, ', ')})"
    if isinstance(expression, Union):
        return f"({_flatten(expression, Union, ' | ')})"
    if isinstance(expression, Star):
        return f"{_wrap_for_postfix(expression.child)}*"
    if isinstance(expression, Plus):
        return f"{_wrap_for_postfix(expression.child)}+"
    if isinstance(expression, Optional):
        return f"{_wrap_for_postfix(expression.child)}?"
    raise DTDSyntaxError(f"cannot express {expression!r} in DTD syntax")


def _flatten(expression: Regex, node_type: type, separator: str) -> str:
    parts: list[str] = []
    stack = [expression]
    while stack:
        node = stack.pop()
        if isinstance(node, node_type):
            stack.append(node.right)
            stack.append(node.left)
        else:
            parts.append(_expression_to_dtd_syntax(node))
    return separator.join(parts)


def _wrap_for_postfix(expression: Regex) -> str:
    rendered = _expression_to_dtd_syntax(expression)
    if rendered.startswith("("):
        return rendered
    return f"({rendered})"
