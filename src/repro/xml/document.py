"""A minimal XML document model.

The paper's motivating application is validating XML documents against
DTDs / XML Schemas, where every element's sequence of children must match
the deterministic content model declared for the element's name.  The
library ships its own tiny element tree (rather than relying on
``xml.etree``) so the whole pipeline — parsing, validation, benchmarks —
is self-contained and easily instrumented.

Only the features the validator needs are modelled: element names,
attributes, character data and child elements.  Namespaces, entities and
processing instructions are out of scope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass(slots=True)
class Element:
    """One XML element: a name, attributes, text chunks and child elements."""

    name: str
    attributes: dict[str, str] = field(default_factory=dict)
    children: list["Element"] = field(default_factory=list)
    text: str = ""

    # -- construction helpers -------------------------------------------------------
    def append(self, child: "Element") -> "Element":
        """Append *child* and return it (enables fluent building in examples)."""
        self.children.append(child)
        return child

    def extend(self, children: list["Element"]) -> "Element":
        """Append several children and return *self*."""
        self.children.extend(children)
        return self

    # -- queries ----------------------------------------------------------------------
    def child_sequence(self) -> list[str]:
        """The names of the direct children, in document order.

        This is exactly the word that must match the element's content
        model — the paper's ``w``.
        """
        return [child.name for child in self.children]

    def iter_elements(self) -> Iterator["Element"]:
        """Iterate over this element and all descendants in document order."""
        stack = [self]
        while stack:
            element = stack.pop()
            yield element
            stack.extend(reversed(element.children))

    def find(self, name: str) -> "Element | None":
        """First descendant (or self) with the given name, in document order."""
        for element in self.iter_elements():
            if element.name == name:
                return element
        return None

    def find_all(self, name: str) -> list["Element"]:
        """All descendants (and self) with the given name, in document order."""
        return [element for element in self.iter_elements() if element.name == name]

    def size(self) -> int:
        """Number of elements in the subtree."""
        return sum(1 for _ in self.iter_elements())

    def has_text(self) -> bool:
        """True when the element contains non-whitespace character data."""
        return bool(self.text.strip())

    # -- serialisation -------------------------------------------------------------------
    def to_xml(self, indent: int = 0) -> str:
        """Serialise the subtree as indented XML text."""
        pad = "  " * indent
        attributes = "".join(
            f' {key}="{_escape(value)}"' for key, value in self.attributes.items()
        )
        if not self.children and not self.text:
            return f"{pad}<{self.name}{attributes}/>"
        if not self.children:
            return f"{pad}<{self.name}{attributes}>{_escape(self.text)}</{self.name}>"
        inner = "\n".join(child.to_xml(indent + 1) for child in self.children)
        return f"{pad}<{self.name}{attributes}>\n{inner}\n{pad}</{self.name}>"


@dataclass(slots=True)
class Document:
    """An XML document: a root element (a prolog is accepted but ignored)."""

    root: Element

    def iter_elements(self) -> Iterator[Element]:
        """Iterate over every element of the document in document order."""
        return self.root.iter_elements()

    def element_count(self) -> int:
        """Total number of elements."""
        return self.root.size()

    def to_xml(self) -> str:
        """Serialise the document (with an XML declaration)."""
        return '<?xml version="1.0"?>\n' + self.root.to_xml()


def element(name: str, *children: Element, text: str = "", **attributes: str) -> Element:
    """Convenience constructor used by examples and tests."""
    node = Element(name, dict(attributes), list(children), text)
    return node


def _escape(value: str) -> str:
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )
