"""Per-element acceptance memos for the XML validators.

The Li et al. schema study's core observation is that real corpora
re-validate the *same few* child sequences against the *same few*
content models millions of times.  The compiled runtime already collapses
the per-symbol cost of that repetition; this module collapses the
per-sequence cost: an :class:`AcceptanceMemo` caches whole
``child-sequence → verdict`` answers, so the steady-state cost of
validating a repeated element is one dict probe — no encoding, no
transition replay at all.

One memo is attached to each cached :class:`~repro.api.Pattern`
(:meth:`Pattern.acceptance_memo`), so every validator compiling a
structurally equal content model — DTD or XSD, across schemas — shares
one memo, exactly like they share the pattern's lazy-DFA rows.  That
also gives the memo a natural persistence identity: the snapshot layer
exports memos keyed by the same PR-4 pattern fingerprints as the dense
rows (the ``MEMO`` section of format v2, ``docs/snapshot.md``), and
:meth:`AcceptanceMemo.adopt` installs persisted entries with the same
strict validate-before-mutate contract as
:meth:`~repro.matching.runtime.CompiledRuntime.adopt_rows`.

Correctness: a memo is pure caching over a deterministic language
membership function.  Locally stored verdicts come from the runtime
itself; adopted verdicts come from a snapshot whose fingerprint proved
it was produced by the *same* pattern identity (and whose section CRC
proved the bytes intact), so a memo can never change a verdict — only
skip recomputing one.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..matching.snapshot import SnapshotError

#: Entries one memo holds at most.  Insertion simply stops at the bound
#: (real validation working sets are far smaller — the point of the Li
#: observation); adopted entries respect the same cap.
MEMO_LIMIT = 4096


class AcceptanceMemo:
    """A bounded, thread-safe ``child-sequence → verdict`` cache.

    Reads and writes are plain dict operations (atomic under the GIL);
    two threads racing to store one key store the same deterministic
    verdict, so no lock sits on the validation hot path.  ``None`` from
    :meth:`get` means "not cached" — verdicts themselves are plain
    bools.
    """

    __slots__ = ("limit", "_entries", "hits", "misses", "adopted")

    def __init__(self, limit: int = MEMO_LIMIT):
        self.limit = limit
        self._entries: dict[tuple[str, ...], bool] = {}
        self.hits = 0
        self.misses = 0
        #: entries installed from a persisted snapshot (telemetry)
        self.adopted = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, word: tuple[str, ...]) -> bool | None:
        """The cached verdict for *word*, or ``None`` when absent."""
        verdict = self._entries.get(word)
        if verdict is None:
            self.misses += 1
        else:
            self.hits += 1
        return verdict

    def put(self, word: tuple[str, ...], verdict: bool) -> None:
        """Cache a locally computed verdict (no-op once the memo is full)."""
        entries = self._entries
        if len(entries) < self.limit or word in entries:
            entries[word] = verdict

    def resize(self, limit: int) -> int:
        """Change the entry bound; returns the previous bound.

        Growing simply lifts the insertion cap (a memo that stopped
        accepting entries resumes).  Shrinking evicts insertion-oldest
        entries beyond the new bound — dicts preserve insertion order,
        so the survivors are the most recently *stored* sequences, which
        under the Li et al. working-set observation are the ones still
        being validated.  The telemetry-driven sizing loop
        (:mod:`repro.service.autosize`) calls this from a background
        thread; eviction rebuilds into a fresh dict and swaps it in with
        one atomic assignment so concurrent readers never see a
        half-trimmed memo.
        """
        if limit < 1:
            raise ValueError(f"memo limit must be >= 1, got {limit}")
        previous = self.limit
        self.limit = limit
        entries = self._entries
        if len(entries) > limit:
            surplus = len(entries) - limit
            self._entries = dict(list(entries.items())[surplus:])
        return previous

    def accepts(self, runtime, children) -> bool:
        """Memoized whole-sequence membership, via *runtime* on a miss.

        The validators' shared fast path: one dict probe answers a
        repeated child sequence; a miss replays the (compiled) runtime
        and caches the verdict for every validator sharing this memo.
        """
        key = tuple(children)
        verdict = self.get(key)
        if verdict is None:
            verdict = runtime.accepts_encoded(runtime.encode(key))
            self.put(key, verdict)
        return verdict

    # -- snapshot export / adoption ------------------------------------------------------
    def export(self) -> list[tuple[tuple[str, ...], bool]]:
        """The memo's entries as ``(word, verdict)`` pairs (for snapshots)."""
        return list(self._entries.items())

    def adopt(self, entries: Iterable[Sequence]) -> int:
        """Install persisted ``(word, verdict)`` pairs; returns entries adopted.

        Validation is strict and happens *before* any mutation: every
        item must be a ``(sequence-of-strings, bool)`` pair.  A violation
        raises :class:`~repro.matching.snapshot.SnapshotError` (reason
        ``"memo-entry"``) and leaves the memo untouched — the API layer
        counts it and validation proceeds uncached.  Locally computed
        entries always win; adoption stops at the memo's size bound.
        """
        validated: list[tuple[tuple[str, ...], bool]] = []
        for item in entries:
            try:
                word, verdict = item
            except (TypeError, ValueError):
                raise SnapshotError("memo-entry", f"invalid memo entry {item!r}") from None
            if isinstance(word, str) or not isinstance(word, (list, tuple)):
                raise SnapshotError(
                    "memo-entry", f"memo key must be a sequence of names, got {word!r}"
                )
            try:
                # str.join scans the names at C speed and raises TypeError
                # on the first non-string — a snapshot-preloaded boot
                # validates every adopted name, so this loop is hot.
                "".join(word)
            except TypeError:
                raise SnapshotError(
                    "memo-entry", f"memo key {word!r} holds non-string names"
                ) from None
            if not isinstance(verdict, bool):
                raise SnapshotError("memo-entry", f"memo verdict {verdict!r} is not a bool")
            validated.append((tuple(word), verdict))
        adopted = 0
        memo = self._entries
        for word, verdict in validated:
            if word not in memo and len(memo) < self.limit:
                memo[word] = verdict
                adopted += 1
        self.adopted += adopted
        return adopted

    def stats(self) -> dict[str, int]:
        """Size, traffic and adoption counters (merged into validator stats)."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "adopted": self.adopted,
            "limit": self.limit,
        }
