"""XML-Schema-style content models with numeric occurrence indicators.

XML Schema generalises DTD content models with ``minOccurs``/``maxOccurs``
counters on particles.  Section 3.3 of the paper shows that determinism of
such expressions can still be decided in linear time; this module provides
the corresponding application layer:

* :class:`Particle` — a lightweight model of sequences, choices and
  element particles with occurrence bounds, convertible to the library's
  AST (``Repeat`` nodes);
* :class:`XSDSchema` — element name → particle, with the counter-aware
  determinism check of :mod:`repro.core.numeric` (the XML Schema "Unique
  Particle Attribution" constraint) and validation through the expanded
  expression.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.numeric import NumericDeterminismReport, check_deterministic_numeric
from ..errors import InvalidExpressionError
from ..regex.ast import Regex, Repeat, Sym, concat, union
from .document import Element


@dataclass(frozen=True, slots=True)
class Particle:
    """An XML Schema particle: an element, a sequence or a choice, with bounds.

    ``kind`` is ``"element"``, ``"sequence"`` or ``"choice"``; ``name`` is
    set for element particles; ``children`` for the two compositors.
    ``max_occurs=None`` means *unbounded*.
    """

    kind: str
    name: str | None = None
    children: tuple["Particle", ...] = ()
    min_occurs: int = 1
    max_occurs: int | None = 1

    def __post_init__(self) -> None:
        if self.kind not in ("element", "sequence", "choice"):
            raise InvalidExpressionError(f"unknown particle kind {self.kind!r}")
        if self.kind == "element" and not self.name:
            raise InvalidExpressionError("element particles need a name")
        if self.kind != "element" and not self.children:
            raise InvalidExpressionError(f"{self.kind} particles need children")
        if self.min_occurs < 0:
            raise InvalidExpressionError("minOccurs must be >= 0")
        if self.max_occurs is not None and self.max_occurs < self.min_occurs:
            raise InvalidExpressionError("maxOccurs must be >= minOccurs")

    # -- conversion --------------------------------------------------------------------
    def to_regex(self) -> Regex:
        """The regular expression (with ``Repeat`` nodes) this particle denotes."""
        if self.kind == "element":
            base: Regex = Sym(self.name)
        elif self.kind == "sequence":
            base = concat(*[child.to_regex() for child in self.children])
        else:
            base = union(*[child.to_regex() for child in self.children])
        if self.min_occurs == 1 and self.max_occurs == 1:
            return base
        return Repeat(base, self.min_occurs, self.max_occurs)

    def describe(self) -> str:
        """Human-readable rendering (used by the schema-linting example)."""
        if self.kind == "element":
            body = self.name or "?"
        else:
            separator = ", " if self.kind == "sequence" else " | "
            body = "(" + separator.join(child.describe() for child in self.children) + ")"
        if self.min_occurs == 1 and self.max_occurs == 1:
            return body
        upper = "unbounded" if self.max_occurs is None else str(self.max_occurs)
        return f"{body}{{{self.min_occurs},{upper}}}"


def element_particle(name: str, min_occurs: int = 1, max_occurs: int | None = 1) -> Particle:
    """An element particle ``<xs:element name=... minOccurs=... maxOccurs=...>``."""
    return Particle("element", name=name, min_occurs=min_occurs, max_occurs=max_occurs)


def sequence(*children: Particle, min_occurs: int = 1, max_occurs: int | None = 1) -> Particle:
    """A ``<xs:sequence>`` compositor."""
    return Particle("sequence", children=tuple(children), min_occurs=min_occurs, max_occurs=max_occurs)


def choice(*children: Particle, min_occurs: int = 1, max_occurs: int | None = 1) -> Particle:
    """A ``<xs:choice>`` compositor."""
    return Particle("choice", children=tuple(children), min_occurs=min_occurs, max_occurs=max_occurs)


@dataclass(slots=True)
class XSDSchema:
    """A minimal XSD-like schema: one content particle per element name."""

    root: str | None = None
    types: dict[str, Particle] = field(default_factory=dict)
    _matcher_cache: dict = field(default_factory=dict, repr=False)

    def declare(self, name: str, particle: Particle) -> None:
        """Declare the content particle of element *name*."""
        self.types[name] = particle

    def particle(self, name: str) -> Particle | None:
        """The declared particle of *name* (or ``None``)."""
        return self.types.get(name)

    # -- Unique Particle Attribution (determinism) ----------------------------------------
    def check_unique_particle_attribution(self) -> dict[str, NumericDeterminismReport]:
        """Run the counter-aware determinism check on every declared type."""
        return {
            name: check_deterministic_numeric(particle.to_regex())
            for name, particle in self.types.items()
        }

    def is_valid_schema(self) -> bool:
        """True when every declared content model satisfies UPA (is deterministic)."""
        return all(report.deterministic for report in self.check_unique_particle_attribution().values())

    # -- validation ----------------------------------------------------------------------------
    def validate_children(self, name: str, child_names: Sequence[str]) -> bool:
        """Check one child sequence against the declared particle of *name*.

        Validation goes through the expanded expression (numeric bounds are
        unfolded), matched with the automatically selected matcher; the
        matcher cache makes repeated validations of the same element type
        cheap.
        """
        matcher = self._matcher_for(name)
        if matcher is None:
            return True  # undeclared elements are unconstrained in this mini-schema
        return matcher.accepts(list(child_names))

    def validate_element(self, element: Element) -> bool:
        """Recursively validate *element* and its descendants."""
        return all(
            self.validate_children(node.name, node.child_sequence())
            for node in element.iter_elements()
        )

    def _matcher_for(self, name: str):
        cache = self._matcher_cache
        if name not in cache:
            particle = self.types.get(name)
            if particle is None:
                cache[name] = None
            else:
                from ..api import Pattern

                cache[name] = Pattern(particle.to_regex()).matcher
        return cache[name]
