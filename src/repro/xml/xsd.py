"""XML-Schema-style content models with numeric occurrence indicators.

XML Schema generalises DTD content models with ``minOccurs``/``maxOccurs``
counters on particles.  Section 3.3 of the paper shows that determinism of
such expressions can still be decided in linear time; this module provides
the corresponding application layer:

* :class:`Particle` — a lightweight model of sequences, choices and
  element particles with occurrence bounds, convertible to the library's
  AST (``Repeat`` nodes);
* :class:`XSDSchema` — element name → particle, with the counter-aware
  determinism check of :mod:`repro.core.numeric` (the XML Schema "Unique
  Particle Attribution" constraint) and validation through the expanded
  expression.

Validation runs on the same engine as the DTD validator: every declared
content model is compiled **through the module-level pattern cache of**
:mod:`repro.api` (``repro.compile``), so two schemas declaring the same
particle — or the same schema validating many documents — share one warm
:class:`~repro.api.Pattern`, including its memoized lazy-DFA transition
rows.  Child sequences are interned once and replayed through the
compiled runtime; pass ``compiled=False`` to validate on the direct
(uncompiled) matcher path instead.

>>> schema = XSDSchema(root="order")
>>> schema.declare("order", sequence(element_particle("item", 1, None),
...                                  element_particle("note", 0, 1)))
>>> schema.is_valid_schema()
True
>>> bool(schema.validate_children("order", ["item", "item", "note"]))
True
>>> result = schema.validate_children("order", ["note"])
>>> bool(result)
False
>>> result[0].child_index, result[0].expected
(0, ('item',))
>>> schema.stats()["totals"]["misses"] > 0
True
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from ..core.determinism import DeterminismReport
from ..core.numeric import NumericDeterminismReport
from ..diagnostics import ValidationResult, diagnose
from ..errors import InvalidExpressionError
from ..matching.plan import PLANNER
from ..matching.runtime import aggregate_stats
from ..regex.ast import Regex, Repeat, Sym, concat, union
from .document import Element
from .dtd import describe_expected
from .validator import Violation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (api imports nothing from here)
    from ..api import Pattern


@dataclass(frozen=True, slots=True)
class Particle:
    """An XML Schema particle: an element, a sequence or a choice, with bounds.

    ``kind`` is ``"element"``, ``"sequence"`` or ``"choice"``; ``name`` is
    set for element particles; ``children`` for the two compositors.
    ``max_occurs=None`` means *unbounded*.
    """

    kind: str
    name: str | None = None
    children: tuple["Particle", ...] = ()
    min_occurs: int = 1
    max_occurs: int | None = 1

    def __post_init__(self) -> None:
        if self.kind not in ("element", "sequence", "choice"):
            raise InvalidExpressionError(f"unknown particle kind {self.kind!r}")
        if self.kind == "element" and not self.name:
            raise InvalidExpressionError("element particles need a name")
        if self.kind != "element" and not self.children:
            raise InvalidExpressionError(f"{self.kind} particles need children")
        if self.min_occurs < 0:
            raise InvalidExpressionError("minOccurs must be >= 0")
        if self.max_occurs is not None and self.max_occurs < self.min_occurs:
            raise InvalidExpressionError("maxOccurs must be >= minOccurs")

    # -- conversion --------------------------------------------------------------------
    def to_regex(self) -> Regex:
        """The regular expression (with ``Repeat`` nodes) this particle denotes."""
        if self.kind == "element":
            base: Regex = Sym(self.name)
        elif self.kind == "sequence":
            base = concat(*[child.to_regex() for child in self.children])
        else:
            base = union(*[child.to_regex() for child in self.children])
        if self.min_occurs == 1 and self.max_occurs == 1:
            return base
        return Repeat(base, self.min_occurs, self.max_occurs)

    def describe(self) -> str:
        """Human-readable rendering (used by the schema-linting example)."""
        if self.kind == "element":
            body = self.name or "?"
        else:
            separator = ", " if self.kind == "sequence" else " | "
            body = "(" + separator.join(child.describe() for child in self.children) + ")"
        if self.min_occurs == 1 and self.max_occurs == 1:
            return body
        upper = "unbounded" if self.max_occurs is None else str(self.max_occurs)
        return f"{body}{{{self.min_occurs},{upper}}}"

    def to_dict(self) -> dict:
        """JSON-serialisable rendering (the validation service's wire shape).

        ``max`` is ``None`` for *unbounded*, matching JSON ``null``;
        :func:`particle_from_dict` is the exact inverse.
        """
        data: dict = {"kind": self.kind, "min": self.min_occurs, "max": self.max_occurs}
        if self.kind == "element":
            data["name"] = self.name
        else:
            data["children"] = [child.to_dict() for child in self.children]
        return data


def element_particle(name: str, min_occurs: int = 1, max_occurs: int | None = 1) -> Particle:
    """An element particle ``<xs:element name=... minOccurs=... maxOccurs=...>``."""
    return Particle("element", name=name, min_occurs=min_occurs, max_occurs=max_occurs)


def sequence(*children: Particle, min_occurs: int = 1, max_occurs: int | None = 1) -> Particle:
    """A ``<xs:sequence>`` compositor."""
    return Particle(
        "sequence", children=tuple(children), min_occurs=min_occurs, max_occurs=max_occurs
    )


def choice(*children: Particle, min_occurs: int = 1, max_occurs: int | None = 1) -> Particle:
    """A ``<xs:choice>`` compositor."""
    return Particle(
        "choice", children=tuple(children), min_occurs=min_occurs, max_occurs=max_occurs
    )


def particle_from_dict(data: dict) -> Particle:
    """Rebuild a :class:`Particle` from its :meth:`~Particle.to_dict` shape.

    The shape is the one ``POST /validate`` accepts on the HTTP service::

        {"kind": "sequence", "min": 1, "max": 1, "children": [
            {"kind": "element", "name": "item", "min": 1, "max": null}]}

    Validation of the field values (kinds, bounds) is delegated to the
    :class:`Particle` constructor, so malformed payloads raise the same
    :class:`~repro.errors.InvalidExpressionError` the Python API raises.
    """
    if not isinstance(data, dict):
        raise InvalidExpressionError(f"particle must be a JSON object, got {type(data).__name__}")
    kind = data.get("kind")
    if kind not in ("element", "sequence", "choice"):
        raise InvalidExpressionError(f"unknown particle kind {kind!r}")
    children = tuple(particle_from_dict(child) for child in data.get("children", ()))
    return Particle(
        kind,
        name=data.get("name"),
        children=children,
        min_occurs=data.get("min", 1),
        max_occurs=data.get("max", 1),
    )


def schema_from_dict(data: dict) -> "XSDSchema":
    """Rebuild an :class:`XSDSchema` from ``{"root": ..., "elements": {...}}``.

    Inverse of :meth:`XSDSchema.to_dict`; element values are
    :func:`particle_from_dict` shapes.
    """
    if not isinstance(data, dict):
        raise InvalidExpressionError(f"schema must be a JSON object, got {type(data).__name__}")
    elements = data.get("elements")
    if not isinstance(elements, dict):
        raise InvalidExpressionError('schema needs an "elements" object mapping names to particles')
    schema = XSDSchema(root=data.get("root"))
    for name, particle in elements.items():
        schema.declare(name, particle_from_dict(particle))
    return schema


@dataclass(slots=True)
class XSDSchema:
    """A minimal XSD-like schema: one content particle per element name.

    *compiled* (default True) routes child-sequence validation through the
    lazy-DFA runtime; the patterns themselves always come from the
    module-level compile cache of :mod:`repro.api`, so structurally equal
    content models are compiled exactly once per process.
    """

    root: str | None = None
    types: dict[str, Particle] = field(default_factory=dict)
    compiled: bool = True
    _patterns: dict[str, "Pattern | None"] = field(default_factory=dict, repr=False)
    #: name → execution plan (the single owner of the engine choice:
    #: compiled runtime + acceptance memo when ``compiled``, else the
    #: direct matcher); memoized so the per-element cost of validation is
    #: one dict probe, with no Pattern property traffic.
    _plans: dict = field(default_factory=dict, repr=False)
    #: serialises plan misses so concurrent validators resolve one plan
    #: per element; warm validation probes the plan dict lock-free.
    #: Re-entrant because the plan miss path resolves the pattern memo
    #: while already holding it.
    _memo_lock: threading.RLock = field(default_factory=threading.RLock, repr=False)

    def declare(self, name: str, particle: Particle) -> None:
        """Declare the content particle of element *name* (re-declaration allowed).

        Declarations are a build-time operation: concurrent *validation* of
        a fully declared schema is thread-safe, re-declaring an element
        while other threads validate it is not.
        """
        self.types[name] = particle
        # Invalidate the per-element memos; the underlying Pattern stays in
        # the module cache for any other schema still declaring it.
        with self._memo_lock:
            self._patterns.pop(name, None)
            self._plans.pop(name, None)

    def to_dict(self) -> dict:
        """JSON-serialisable rendering; :func:`schema_from_dict` is the inverse."""
        return {
            "root": self.root,
            "elements": {name: particle.to_dict() for name, particle in self.types.items()},
        }

    def particle(self, name: str) -> Particle | None:
        """The declared particle of *name* (or ``None``)."""
        return self.types.get(name)

    # -- Unique Particle Attribution (determinism) ----------------------------------------
    def check_unique_particle_attribution(
        self,
    ) -> dict[str, NumericDeterminismReport | DeterminismReport]:
        """Run the counter-aware determinism check on every declared type.

        Each report is the one computed (once, cached) by the compiled
        pattern: particles with occurrence bounds get the Section-3.3
        counter-aware analysis, plain particles the linear-time test —
        exactly the semantics UPA requires.
        """
        return {name: self._pattern_for(name).report for name in self.types}

    def is_valid_schema(self) -> bool:
        """True when every declared content model satisfies UPA (is deterministic)."""
        return all(
            report.deterministic
            for report in self.check_unique_particle_attribution().values()
        )

    # -- validation ----------------------------------------------------------------------------
    def validate_children(
        self,
        name: str,
        child_names: Sequence[str],
        _element: Element | None = None,
        _path: str = "",
    ) -> ValidationResult:
        """Check one child sequence against the declared particle of *name*.

        Returns a truthy/falsy :class:`~repro.diagnostics.ValidationResult`;
        on failure it carries one located :class:`~repro.xml.validator.Violation`
        with the offending child index and the expected tags (diagnosed by
        replaying the sequence — paid only on failure).  The verdict itself
        goes through the expanded expression (numeric bounds are unfolded
        to ``Repeat`` nodes the parse tree rewrites), matched on the
        compiled runtime: the child names are interned into integer codes
        once, then replayed over transition rows shared with every other
        document — and every other schema — that exercised the same
        content model.  *_element*/*_path* are supplied by the
        :meth:`validate_element` walk to locate violations.
        """
        plans = self._plans
        if name in plans:  # lock-free warm probe (the per-element steady state)
            plan = plans[name]
        else:
            with self._memo_lock:
                if name in plans:
                    plan = plans[name]
                else:
                    pattern = self._pattern_for(name)
                    if pattern is None:
                        plan = None
                    else:
                        # ``compiled`` only overrides the execution mode;
                        # the pattern's cache identity is unchanged, so
                        # the underlying rows stay shared process-wide.
                        plan = PLANNER.plan(pattern, compiled=self.compiled).prime()
                    plan = plans[name] = plan
        if plan is None:
            # Undeclared elements are unconstrained in this mini-schema.
            return ValidationResult(True)
        # The plan memoized the engine choice: one chosen before the
        # (mutable) `compiled` flag was flipped keeps working.
        if plan.accepts_children(child_names):
            return ValidationResult(True)
        return ValidationResult(
            False, (self._children_violation(name, child_names, _element, _path),)
        )

    def _children_violation(
        self, name: str, child_names: Sequence[str], element: Element | None, path: str
    ) -> Violation:
        """Diagnose a failed child sequence (runs only on failures)."""
        particle = self.types[name]
        target = element if element is not None else Element(name)
        message = f"children {list(child_names)!r} do not match particle {particle.describe()}"
        diagnosis = diagnose(self._pattern_for(name), list(child_names))
        index = diagnosis.error_index
        if index is not None and index < len(child_names):
            detail = f"unexpected child <{child_names[index]}> at index {index}"
        else:
            detail = f"content ended too early after {len(child_names)} child(ren)"
        wanted = describe_expected(diagnosis.expected, diagnosis.can_end)
        return Violation(
            target,
            "content",
            f"{message}: {detail}; expected {wanted}",
            path=path,
            child_index=index,
            expected=diagnosis.expected,
        )

    def validate_element(self, element: Element) -> ValidationResult:
        """Recursively validate *element*; collects every located violation.

        Returns a truthy/falsy :class:`~repro.diagnostics.ValidationResult`
        over :class:`~repro.xml.validator.Violation` objects with element
        paths.  Particles that violate Unique Particle Attribution are
        reported as ``"upa"`` violations (with the conflicting-position
        context from the counter-aware analysis) instead of being matched
        — the Section 4 matchers are only correct under UPA.
        """
        violations: list[Violation] = []
        stack: list[tuple[Element, str]] = [(element, f"/{element.name}")]
        while stack:
            node, path = stack.pop()
            pattern = self._pattern_for(node.name)
            if pattern is not None and not pattern.is_deterministic:
                particle = self.types[node.name]
                violations.append(
                    Violation(
                        node,
                        "upa",
                        f"particle {particle.describe()} violates Unique Particle "
                        f"Attribution: {pattern.explain()}",
                        path=path,
                    )
                )
            else:
                result = self.validate_children(
                    node.name, node.child_sequence(), _element=node, _path=path
                )
                violations.extend(result)
            children = node.children
            for slot in range(len(children) - 1, -1, -1):
                child = children[slot]
                stack.append((child, f"{path}/{child.name}[{slot + 1}]"))
        return ValidationResult(not violations, violations)

    def _pattern_for(self, name: str) -> "Pattern | None":
        """The compiled pattern of *name*'s particle, memoized per element.

        The memo makes the per-call cost a single dict probe; the pattern
        itself comes from ``repro.compile``'s LRU cache, so it is shared
        with every other schema (and the DTD validator) that compiles a
        structurally equal expression.
        """
        patterns = self._patterns
        if name in patterns:  # lock-free warm probe
            return patterns[name]
        with self._memo_lock:
            if name not in patterns:
                particle = self.types.get(name)
                if particle is None:
                    patterns[name] = None
                else:
                    from ..api import compile as compile_pattern

                    patterns[name] = compile_pattern(particle.to_regex())
            return patterns[name]

    def _matcher_for(self, name: str):
        """The matcher of *name*'s content model (memoized; ``None`` if undeclared).

        Kept as the pre-runtime surface: callers holding a schema can still
        grab the direct matcher, and the regression tests pin down that
        repeated calls return the *same* object instead of rebuilding.
        """
        pattern = self._pattern_for(name)
        return None if pattern is None else pattern.matcher

    # -- telemetry -------------------------------------------------------------------------------
    def stats(self) -> dict[str, dict]:
        """Lazy-DFA materialization telemetry for this schema's runtimes.

        Returns ``{"elements": {name: runtime stats}, "totals": summed
        stats}`` covering every declared element whose runtime has been
        built.  Feed this to a monitoring endpoint to size
        ``repro.COMPILE_CACHE_SIZE`` from real traffic.  Patterns — and
        therefore runtimes and their counters — are shared process-wide
        through the compile cache: a structurally equal content model
        declared by another schema (or a DTD validator) contributes to the
        same rows, so these numbers describe the pattern's total traffic,
        not this schema instance's alone.
        """
        named = []
        for name, pattern in self._patterns.items():
            if pattern is None:
                continue
            runtime = pattern._built_runtime()
            if runtime is not None:
                named.append((name, runtime))
        stats = aggregate_stats(named)
        memos = {}
        for name, plan in self._plans.items():
            memo = plan.built_memo() if plan is not None else None
            if memo is not None:
                memos[name] = memo.stats()
        stats["memos"] = memos
        return stats
