"""A minimal, dependency-free XML parser.

Parses the well-formed subset of XML the examples and benchmarks need:
elements with attributes, character data, comments, CDATA sections,
processing instructions and an optional XML declaration / DOCTYPE (whose
internal subset, if any, is returned as raw text so the DTD module can
parse it).  Namespaces and entity definitions are out of scope; the five
predefined entities are decoded.

The parser is a straightforward single-pass scanner with a stack of open
elements; it reports errors with line/column positions through
:class:`~repro.errors.XMLSyntaxError`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import XMLSyntaxError
from .document import Document, Element

_NAME = r"[A-Za-z_:][A-Za-z0-9_.:-]*"
_ATTRIBUTE = re.compile(rf"\s+({_NAME})\s*=\s*(\"[^\"]*\"|'[^']*')")
_ENTITIES = {"&amp;": "&", "&lt;": "<", "&gt;": ">", "&quot;": '"', "&apos;": "'"}


@dataclass(slots=True)
class ParsedXML:
    """Result of :func:`parse_xml`: the document plus the DOCTYPE internal subset."""

    document: Document
    doctype_name: str | None = None
    internal_subset: str | None = None


def parse_xml(text: str) -> ParsedXML:
    """Parse *text* into a :class:`ParsedXML` (raises on malformed input)."""
    scanner = _Scanner(text)
    return scanner.parse()


def parse_document(text: str) -> Document:
    """Parse *text* and return only the document."""
    return parse_xml(text).document


class _Scanner:
    def __init__(self, text: str):
        self.text = text
        self.index = 0
        self.doctype_name: str | None = None
        self.internal_subset: str | None = None

    # -- error reporting ---------------------------------------------------------------
    def _position(self) -> tuple[int, int]:
        consumed = self.text[: self.index]
        line = consumed.count("\n") + 1
        column = len(consumed) - (consumed.rfind("\n") + 1) + 1
        return line, column

    def _error(self, message: str) -> XMLSyntaxError:
        line, column = self._position()
        return XMLSyntaxError(message, line=line, column=column)

    # -- parsing --------------------------------------------------------------------------
    def parse(self) -> ParsedXML:
        self._skip_prolog()
        root = self._parse_element()
        self._skip_misc()
        if self.index < len(self.text):
            raise self._error("content after the root element")
        return ParsedXML(Document(root), self.doctype_name, self.internal_subset)

    def _skip_prolog(self) -> None:
        while True:
            self._skip_whitespace()
            if self.text.startswith("<?", self.index):
                end = self.text.find("?>", self.index)
                if end < 0:
                    raise self._error("unterminated processing instruction")
                self.index = end + 2
            elif self.text.startswith("<!--", self.index):
                self._skip_comment()
            elif self.text.startswith("<!DOCTYPE", self.index):
                self._parse_doctype()
            else:
                return

    def _skip_misc(self) -> None:
        while True:
            self._skip_whitespace()
            if self.text.startswith("<!--", self.index):
                self._skip_comment()
            elif self.text.startswith("<?", self.index):
                end = self.text.find("?>", self.index)
                if end < 0:
                    raise self._error("unterminated processing instruction")
                self.index = end + 2
            else:
                return

    def _skip_whitespace(self) -> None:
        while self.index < len(self.text) and self.text[self.index].isspace():
            self.index += 1

    def _skip_comment(self) -> None:
        end = self.text.find("-->", self.index)
        if end < 0:
            raise self._error("unterminated comment")
        self.index = end + 3

    def _parse_doctype(self) -> None:
        match = re.compile(rf"<!DOCTYPE\s+({_NAME})\s*").match(self.text, self.index)
        if match is None:
            raise self._error("malformed DOCTYPE declaration")
        self.doctype_name = match.group(1)
        self.index = match.end()
        if self.text.startswith("[", self.index):
            end = self.text.find("]", self.index)
            if end < 0:
                raise self._error("unterminated DOCTYPE internal subset")
            self.internal_subset = self.text[self.index + 1 : end]
            self.index = end + 1
        self._skip_whitespace()
        if not self.text.startswith(">", self.index):
            raise self._error("expected '>' to close DOCTYPE")
        self.index += 1

    def _parse_element(self) -> Element:
        if not self.text.startswith("<", self.index):
            raise self._error("expected an element start tag")
        match = re.compile(rf"<({_NAME})").match(self.text, self.index)
        if match is None:
            raise self._error("malformed start tag")
        name = match.group(1)
        self.index = match.end()
        attributes = self._parse_attributes()
        self._skip_whitespace()
        if self.text.startswith("/>", self.index):
            self.index += 2
            return Element(name, attributes)
        if not self.text.startswith(">", self.index):
            raise self._error(f"expected '>' in start tag of <{name}>")
        self.index += 1
        element = Element(name, attributes)
        self._parse_content(element)
        return element

    def _parse_attributes(self) -> dict[str, str]:
        attributes: dict[str, str] = {}
        while True:
            match = _ATTRIBUTE.match(self.text, self.index)
            if match is None:
                return attributes
            attributes[match.group(1)] = _unescape(match.group(2)[1:-1])
            self.index = match.end()

    def _parse_content(self, parent: Element) -> None:
        text_chunks: list[str] = []
        while True:
            if self.index >= len(self.text):
                raise self._error(f"unexpected end of input inside <{parent.name}>")
            if self.text.startswith("</", self.index):
                match = re.compile(rf"</({_NAME})\s*>").match(self.text, self.index)
                if match is None or match.group(1) != parent.name:
                    raise self._error(f"mismatched end tag for <{parent.name}>")
                self.index = match.end()
                parent.text = "".join(text_chunks)
                return
            if self.text.startswith("<!--", self.index):
                self._skip_comment()
            elif self.text.startswith("<![CDATA[", self.index):
                end = self.text.find("]]>", self.index)
                if end < 0:
                    raise self._error("unterminated CDATA section")
                text_chunks.append(self.text[self.index + 9 : end])
                self.index = end + 3
            elif self.text.startswith("<?", self.index):
                end = self.text.find("?>", self.index)
                if end < 0:
                    raise self._error("unterminated processing instruction")
                self.index = end + 2
            elif self.text.startswith("<", self.index):
                parent.children.append(self._parse_element())
            else:
                next_tag = self.text.find("<", self.index)
                if next_tag < 0:
                    raise self._error(f"unexpected end of input inside <{parent.name}>")
                text_chunks.append(_unescape(self.text[self.index : next_tag]))
                self.index = next_tag


def _unescape(value: str) -> str:
    for entity, replacement in _ENTITIES.items():
        value = value.replace(entity, replacement)
    return value
