"""XML application layer: documents, DTDs, XSD-style schemas, validation.

This is the domain the paper is motivated by: DTD and XML Schema content
models are required to be deterministic regular expressions, and
validating a document amounts to matching each element's child sequence
against its content model.
"""

from .document import Document, Element, element
from .memo import AcceptanceMemo
from .dtd import (
    DTD,
    ContentModel,
    content_model_expression,
    dtd_to_text,
    parse_content_model,
    parse_dtd,
)
from .parser import ParsedXML, parse_document, parse_xml
from .validator import DTDValidator, StreamingContentChecker, Violation
from .xsd import (
    Particle,
    XSDSchema,
    choice,
    element_particle,
    particle_from_dict,
    schema_from_dict,
    sequence,
)

__all__ = [
    "AcceptanceMemo",
    "ContentModel",
    "DTD",
    "DTDValidator",
    "Document",
    "Element",
    "ParsedXML",
    "Particle",
    "StreamingContentChecker",
    "Violation",
    "XSDSchema",
    "choice",
    "content_model_expression",
    "dtd_to_text",
    "element",
    "element_particle",
    "parse_content_model",
    "parse_document",
    "parse_dtd",
    "parse_xml",
    "particle_from_dict",
    "schema_from_dict",
    "sequence",
]
