"""Validating XML documents against DTDs.

This is the end-to-end application the paper motivates: for every element
of the document, the sequence of its children's names must match the
deterministic content model declared for the element's name.  Two code
paths are provided:

* :class:`DTDValidator` — whole-document validation.  One matcher is
  built per declared element name (through the module-level compile cache
  of :mod:`repro.api`, so two validators over the same DTD share patterns)
  and reused across all occurrences, so validation costs
  ``O(Σ_models |e_model| + Σ_elements |children|)`` — the combined-linear
  behaviour experiment E8 measures.  Child sequences run through the
  compiled lazy-DFA runtime by default: every occurrence of an element
  after the first replays memoized integer transitions, which is where
  the Li et al. observation (the same few content models are re-validated
  millions of times) turns into throughput.  Pass ``compiled=False`` to
  validate on the direct matcher path instead.
* :class:`StreamingContentChecker` — incremental validation of one child
  sequence, fed name by name, exercising the streamability of the
  matchers (the paper notes all its matching algorithms are streaming).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from ..api import Pattern, compile as compile_pattern
from ..diagnostics import ValidationResult, diagnose
from ..errors import NotDeterministicError
from ..matching.base import DeterministicMatcher, MatchRun
from ..matching.plan import PLANNER, ExecutionPlan
from ..matching.runtime import CompiledRun, CompiledRuntime, aggregate_stats
from .document import Document, Element
from .dtd import DTD, ContentModel, content_model_expression, describe_expected


@dataclass(frozen=True, slots=True)
class Violation:
    """One validation problem, tied to the offending element.

    Beyond the bare verdict fields (``element``, ``kind``, ``message``),
    content violations carry the diagnosis the deterministic run yields
    for free: ``path`` locates the element from the validation root
    (``/catalog/product[3]``), ``child_index`` is the offset of the first
    offending child (``len(children)`` when the sequence ended too
    early), and ``expected`` lists the child tags that would have been
    legal there — read off the Section 4 follow sets at the stuck
    position (see :mod:`repro.diagnostics`).
    """

    element: Element
    kind: str  # "undeclared", "content", "unexpected-text", "unknown-type", "upa"
    message: str
    path: str = ""
    child_index: int | None = None
    expected: tuple[str, ...] = ()

    def describe(self) -> str:
        where = f" (at {self.path})" if self.path else ""
        return f"<{self.element.name}>: {self.message}{where}"

    def to_dict(self) -> dict:
        """Wire-ready rendering (the ``detail=full`` shape)."""
        payload: dict = {
            "element": self.element.name,
            "kind": self.kind,
            "message": self.message,
        }
        if self.path:
            payload["path"] = self.path
        if self.child_index is not None:
            payload["child_index"] = self.child_index
        if self.expected:
            payload["expected"] = list(self.expected)
        return payload


class DTDValidator:
    """Validate documents against a DTD using the paper's matchers."""

    def __init__(
        self,
        dtd: DTD,
        strategy: str = "auto",
        strict: bool = False,
        compiled: bool = True,
    ):
        """Build matchers for every declared content model.

        *strategy* selects the matching algorithm (see
        :data:`repro.matching.dispatch.STRATEGIES`); *strict* controls
        whether undeclared element names are reported as violations;
        *compiled* routes child-sequence matching through the lazy-DFA
        runtime (the default) or the direct matcher path.
        """
        self.dtd = dtd
        self.strict = strict
        self.compiled = compiled
        #: per-element compiled Pattern — the diagnosis layer replays
        #: failing child sequences through it (off the verdict hot path)
        self._patterns: dict[str, Pattern | None] = {}
        #: per-element execution plan — the single owner of which engine
        #: (compiled runtime + acceptance memo, or the direct matcher)
        #: answers child sequences.  Plans are primed eagerly so the
        #: per-occurrence cost is one dict probe plus the plan call.
        self._plans: dict[str, ExecutionPlan | None] = {}
        self._models: dict[str, ContentModel] = dict(dtd.elements)
        for name, model in dtd.elements.items():
            expression = content_model_expression(model)
            if expression is None:
                self._plans[name] = None
                self._patterns[name] = None
                continue
            # The compile cache applies the right determinism semantics (the
            # counter-aware one when the model uses the DTD '+' operator),
            # picks a matcher, and — since content-model ASTs are frozen and
            # hashable — returns the *same* warm Pattern when another
            # validator (or another document) compiles the same model.
            pattern = compile_pattern(expression, strategy=strategy)
            if not pattern.is_deterministic:
                raise NotDeterministicError(
                    f"content model of <{name}> is not deterministic: {pattern.explain()}",
                    report=pattern.report,
                )
            # ``compiled=False`` overrides the execution mode without
            # changing the pattern's cache identity: the direct route runs
            # over the same cached (compiled-capable) pattern.
            self._plans[name] = PLANNER.plan(pattern, compiled=compiled).prime()
            self._patterns[name] = pattern

    # -- document-level API -----------------------------------------------------------------
    def validate(self, document: Document | Element) -> ValidationResult:
        """Validate *document*; returns a truthy/falsy :class:`ValidationResult`.

        The result is truthy exactly when the document is valid and
        list-like over its :class:`Violation` objects (iteration, ``len``,
        indexing), so pre-PR-9 code that looped over the returned
        violation list keeps working.  Violations carry element paths
        computed during this walk.

        Thread-safe: a validator is immutable once constructed — its
        matchers and runtimes come from the (locked) module compile cache,
        and the runtimes synchronise their own row materialization — so one
        validator instance may be shared by any number of worker threads
        (the ``repro.service`` thread pool does exactly that).
        """
        root = document.root if isinstance(document, Document) else document
        violations: list[Violation] = []
        stack: list[tuple[Element, str]] = [(root, f"/{root.name}")]
        while stack:
            element, path = stack.pop()
            violations.extend(self.validate_element(element, path=path))
            children = element.children
            for slot in range(len(children) - 1, -1, -1):
                child = children[slot]
                stack.append((child, f"{path}/{child.name}[{slot + 1}]"))
        return ValidationResult(not violations, violations)

    def validate_many(self, documents: Sequence[Document | Element]) -> list[ValidationResult]:
        """Validate a corpus of documents; one :class:`ValidationResult` each.

        The batch front door the validation service fans out over its
        worker threads: every document replays the same warm per-model
        runtimes, so the per-document cost after the first is pure
        transition replay.
        """
        return [self.validate(document) for document in documents]

    def is_valid(self, document: Document | Element) -> bool:
        """True when the document has no violations."""
        return self.validate(document).valid

    # -- element-level API --------------------------------------------------------------------
    def validate_element(self, element: Element, path: str = "") -> ValidationResult:
        """Check one element (its child sequence and text) against its declaration.

        Returns a :class:`ValidationResult` over this element's
        violations only; *path* (supplied by the :meth:`validate` walk)
        locates the element in diagnostics.
        """
        model = self._models.get(element.name)
        if model is None:
            if self.strict:
                violation = Violation(
                    element, "undeclared", "element name is not declared", path=path
                )
                return ValidationResult(False, (violation,))
            return ValidationResult(True)
        violations: list[Violation] = []
        if element.has_text() and not model.allows_text:
            violations.append(
                Violation(
                    element, "unexpected-text", "character data is not allowed here", path=path
                )
            )
        children = element.child_sequence()
        if not self._children_allowed(element.name, model, children):
            violations.append(self._content_violation(element, model, children, path))
        return ValidationResult(not violations, violations)

    def _content_violation(
        self, element: Element, model: ContentModel, children: Sequence[str], path: str
    ) -> Violation:
        """Diagnose a failed child sequence into a located violation.

        Runs only on elements that already failed, so the replay cost is
        proportional to the number of *errors*, never to document size.
        """
        message = f"children {children!r} do not match content model {model.describe()}"
        pattern = self._patterns.get(element.name)
        if pattern is None:
            # EMPTY / (#PCDATA)-only models: any child at all is the error.
            return Violation(element, "content", message, path=path, child_index=0)
        diagnosis = diagnose(pattern, list(children))
        index = diagnosis.error_index
        if index is not None and index < len(children):
            detail = f"unexpected child <{children[index]}> at index {index}"
        else:
            detail = f"content ended too early after {len(children)} child(ren)"
        wanted = describe_expected(diagnosis.expected, diagnosis.can_end)
        return Violation(
            element,
            "content",
            f"{message}: {detail}; expected {wanted}",
            path=path,
            child_index=index,
            expected=diagnosis.expected,
        )

    def _children_allowed(self, name: str, model: ContentModel, children: Sequence[str]) -> bool:
        if model.kind == "any":
            return True
        if model.kind == "empty":
            return not children
        plan = self._plans.get(name)
        if plan is None:
            # Mixed content with #PCDATA only: no element children allowed.
            return not children
        return plan.accepts_children(children)

    def stats(self) -> dict[str, dict]:
        """Lazy-DFA materialization telemetry, one entry per content model.

        Mirrors :meth:`repro.xml.xsd.XSDSchema.stats`: ``"elements"`` maps
        each declared name with a built runtime to its
        :meth:`~repro.matching.runtime.CompiledRuntime.stats`, ``"totals"``
        sums them.  Use together with ``repro.stats()["pattern_cache"]`` to size the
        compile cache from observed validation traffic.  Runtimes belong to
        cached patterns, so counters include traffic from every validator
        sharing the same content models through the compile cache.
        """
        named = []
        memos = {}
        for name, plan in self._plans.items():
            if plan is None:
                continue
            runtime = plan.built_runtime()
            if runtime is not None:
                named.append((name, runtime))
            memo = plan.built_memo()
            if memo is not None:
                memos[name] = memo.stats()
        stats = aggregate_stats(named)
        stats["memos"] = memos
        return stats

    def checker_for(self, name: str) -> "StreamingContentChecker | None":
        """A streaming checker for the content model of *name* (or ``None``).

        The checker streams over whatever engine the element's execution
        plan owns — compiled validators hand out runs over the shared
        runtime, so even streaming validation of repeated elements reuses
        memoized rows.
        """
        plan = self._plans.get(name)
        if plan is None:
            return None
        return StreamingContentChecker(plan)


class StreamingContentChecker:
    """Incremental validation of one child sequence, name by name.

    Wraps a :class:`~repro.matching.base.MatchRun`; ``feed`` returns False
    as soon as the children seen so far can no longer be completed into a
    valid sequence **for the symbols consumed so far** (the run is dead),
    and ``complete`` asks whether stopping now yields a valid sequence.
    """

    def __init__(self, matcher: Union[DeterministicMatcher, CompiledRuntime, ExecutionPlan]):
        # Matchers, compiled runtimes and execution plans all expose
        # start() with the same run surface (feed / is_accepting /
        # consumed) — a plan starts a run on whatever engine it owns.
        self._run: MatchRun | CompiledRun = matcher.start()

    def feed(self, child_name: str) -> bool:
        """Consume the next child's name; False when the sequence is already invalid."""
        return self._run.feed(child_name)

    def complete(self) -> bool:
        """True when the names consumed so far form a complete valid sequence."""
        return self._run.is_accepting()

    @property
    def consumed(self) -> int:
        """Number of names consumed."""
        return self._run.consumed
