"""Matching algorithms for deterministic regular expressions (Section 4).

Every matcher implements the same transition-simulation interface
(:class:`~repro.matching.base.DeterministicMatcher`) and is therefore
streamable; :func:`~repro.matching.dispatch.build_matcher` picks the
appropriate algorithm for an expression automatically.
"""

from .automaton import GlushkovMatcher
from .base import DeterministicMatcher, MatchRun
from .climbing import ClimbingMatcher
from .dispatch import STRATEGIES, build_matcher, select_strategy
from .kore import KOccurrenceMatcher, SubsetKOccurrenceMatcher
from .lca_matcher import LowestColoredAncestorMatcher
from .path_decomposition import PathDecompositionMatcher
from .star_free import StarFreeMultiMatcher

__all__ = [
    "ClimbingMatcher",
    "DeterministicMatcher",
    "GlushkovMatcher",
    "KOccurrenceMatcher",
    "LowestColoredAncestorMatcher",
    "MatchRun",
    "PathDecompositionMatcher",
    "STRATEGIES",
    "StarFreeMultiMatcher",
    "SubsetKOccurrenceMatcher",
    "build_matcher",
    "select_strategy",
]
