"""Matching algorithms for deterministic regular expressions (Section 4).

Every matcher implements the same transition-simulation interface
(:class:`~repro.matching.base.DeterministicMatcher`) and is therefore
streamable; :func:`~repro.matching.dispatch.build_matcher` picks the
appropriate algorithm for an expression automatically.  Any matcher can be
lowered on the fly into the lazy-DFA integer runtime
(:class:`~repro.matching.runtime.CompiledRuntime`), which memoizes
``(state, symbol) → state`` transitions as they are exercised.
"""

from .automaton import GlushkovMatcher
from .base import DeterministicMatcher, MatchRun
from .climbing import ClimbingMatcher
from .dispatch import STRATEGIES, build_matcher, select_strategy
from .kore import KOccurrenceMatcher, SubsetKOccurrenceMatcher
from .lca_matcher import LowestColoredAncestorMatcher
from .path_decomposition import PathDecompositionMatcher
from .runtime import CompiledRun, CompiledRuntime, compile_runtime
from .star_free import StarFreeMultiMatcher

__all__ = [
    "ClimbingMatcher",
    "CompiledRun",
    "CompiledRuntime",
    "compile_runtime",
    "DeterministicMatcher",
    "GlushkovMatcher",
    "KOccurrenceMatcher",
    "LowestColoredAncestorMatcher",
    "MatchRun",
    "PathDecompositionMatcher",
    "STRATEGIES",
    "StarFreeMultiMatcher",
    "SubsetKOccurrenceMatcher",
    "build_matcher",
    "select_strategy",
]
