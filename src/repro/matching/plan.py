"""Execution planning: one object per pattern that owns its matching strategy.

Historically every surface of the library re-derived "which engine should
this pattern run on?" for itself: ``Pattern.match``/``match_all`` had one
if/elif ladder, ``describe()`` reconstructed the same decision a second
time for its ``batch_path`` field, the diagnostics replay picked its
adapter from ``pattern._compiled``, the lexer rebuilt the kernel-program
export, and the DTD/XSD validators each kept their own
runtime-vs-matcher-vs-memo dispatch.  Adding a new scenario class (a
Section-4 matcher family, the star-free tables, the kernel programs —
or the planned back-reference dialects) meant one cross-cutting edit per
surface.

This module gives the decision exactly one owner:

* :class:`ExecutionPlan` — the per-pattern strategy object.  A plan knows
  its stable ``route`` name (the string ``describe()["batch_path"]``
  reports), answers single matches (:meth:`~ExecutionPlan.match`), batch
  matches (:meth:`~ExecutionPlan.match_all`), streaming runs
  (:meth:`~ExecutionPlan.stream`), validator child-sequence checks
  (:meth:`~ExecutionPlan.accepts_children`), lexer scan programs
  (:meth:`~ExecutionPlan.scan_program` / :meth:`~ExecutionPlan.longest_match`)
  and hands the diagnostics layer its replay adapter
  (:meth:`~ExecutionPlan.replay_for_diagnostics`).
* :class:`Planner` — an ordered strategy registry.  ``plan(pattern)``
  walks the registered strategies and returns the first plan whose
  predicate accepts the pattern; :meth:`Planner.register` is the landing
  seam for future dialect engines (deterministic regex with
  back-references, memoization-based matching) — a new engine is one
  registry entry, not five surface edits.

The four built-in routes (and their unchanged wire names):

``"per-word"``
    The uncompiled path: one direct Section-4 matcher call per word.
    Selected when the pattern (or the calling validator) asked for
    ``compiled=False`` — the per-symbol structure queries stay observable,
    which is what the benchmarks compare against.
``"star-free-multi"``
    Star-free deterministic patterns batch through the Theorem 4.12
    multi-word matcher: the whole corpus is answered during a single scan
    of the expression's positions.
``"compiled-kernel"``
    The runtime's dense rows flatten into one premultiplied kernel table
    (:mod:`repro.matching.kernel`); batches stride over it branch-free,
    with per-word replay as the convergence fallback.
``"compiled-runtime"``
    Per-word replay over the memoized lazy-DFA rows — the terminal
    compiled fallback for machines too large for a kernel table.

Plans are deliberately thin: the pattern keeps owning the lazily built
matcher, runtime and acceptance memo (and their locks), so a plan never
duplicates engine state — it only decides *which* engine runs and keeps
the telemetry accessors (:meth:`built_runtime`, :meth:`built_star_free`,
:meth:`built_memo`) that snapshot persistence reads without forcing
construction.

>>> import repro
>>> repro.compile("ab(a+b)").plan.route      # star-free and deterministic
'star-free-multi'
>>> repro.compile("(ab)*").plan.route
'compiled-kernel'
>>> repro.compile("a", compiled=False).plan.route
'per-word'
>>> from repro.matching.plan import PLANNER
>>> [name for name, _qualifies in PLANNER.strategies()]
['per-word', 'star-free-multi', 'compiled-kernel', 'compiled-runtime']
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable, Sequence

from ..errors import NotDeterministicError
from . import kernel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api import Pattern


class ExecutionPlan:
    """Base class of all per-pattern strategy objects.

    Subclasses set :attr:`route` (the stable wire name) and implement the
    matching surface; the base class provides the telemetry accessors
    that report "nothing built" so persistence walks need no
    ``isinstance`` checks.
    """

    #: Stable route name — the value ``Pattern.describe()["batch_path"]``
    #: reports and the serving fronts put on the wire.
    route = "abstract"

    __slots__ = ("pattern",)

    def __init__(self, pattern: "Pattern"):
        self.pattern = pattern

    # -- matching surface ---------------------------------------------------------------
    def match(self, symbols: Sequence[str]) -> bool:
        """Verdict for one parsed word."""
        raise NotImplementedError

    def match_all(self, parsed: Sequence[Sequence[str]], detail: str = "verdict"):
        """Verdicts (or full results) for a batch of parsed words."""
        raise NotImplementedError

    def stream(self):
        """Begin a streaming run (``feed`` / ``is_accepting`` / ``consumed``)."""
        raise NotImplementedError

    # ``start()`` aliases ``stream()`` so a plan can stand in anywhere a
    # matcher/runtime was handed out for streaming (StreamingContentChecker).
    def start(self):
        return self.stream()

    def accepts_children(self, children: Sequence[str]) -> bool:
        """Whole-sequence verdict for one validator child sequence."""
        raise NotImplementedError

    def replay_for_diagnostics(self):
        """The :mod:`repro.diagnostics` replay adapter for this strategy."""
        raise NotImplementedError

    # -- lexer surface ------------------------------------------------------------------
    def scan_program(self):
        """The stride-1 kernel program for longest-match scanning.

        Materializes the whole reachable machine, then exports (and
        caches) the flat table.  Returns ``(program, accepting_states)``;
        ``program`` is ``None`` when the machine exceeds the kernel table
        ceiling.  Only compiled plans support scanning.
        """
        raise NotImplementedError(f"route {self.route!r} does not support scan programs")

    def longest_match(self, tags, encoded, start: int):
        """Maximal-munch step over the cached scan program (see the lexer)."""
        raise NotImplementedError(f"route {self.route!r} does not support scanning")

    # -- telemetry accessors (never force construction) ---------------------------------
    def built_runtime(self):
        """The compiled runtime if this plan uses one and it exists, else ``None``."""
        return None

    def built_star_free(self):
        """The star-free multi-matcher if already built, else ``None``."""
        return None

    def built_memo(self):
        """The acceptance memo if already built, else ``None``."""
        return None

    def star_free(self):
        """The (force-built) star-free multi-matcher, or ``None`` off that route."""
        return None

    def prime(self) -> "ExecutionPlan":
        """Force the engines this plan runs on (validator construction path)."""
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} route={self.route!r}>"


class DirectPlan(ExecutionPlan):
    """The uncompiled route: every word runs on the direct Section-4 matcher."""

    route = "per-word"

    __slots__ = ()

    def match(self, symbols: Sequence[str]) -> bool:
        return self.pattern.matcher.accepts(symbols)

    def match_all(self, parsed: Sequence[Sequence[str]], detail: str = "verdict"):
        matcher = self.pattern.matcher
        if detail == "full":
            from ..diagnostics import MatchResult

            return [
                MatchResult(matcher.accepts(word), word, pattern=self.pattern)
                for word in parsed
            ]
        return [bool(matcher.accepts(word)) for word in parsed]

    def stream(self):
        return self.pattern.matcher.start()

    def accepts_children(self, children: Sequence[str]) -> bool:
        return self.pattern.matcher.accepts(list(children))

    def replay_for_diagnostics(self):
        from ..diagnostics import _DirectEngine

        return _DirectEngine(self.pattern.matcher, self.pattern.tree_report.deterministic)

    def prime(self) -> "DirectPlan":
        self.pattern.matcher
        return self


class CompiledPlan(ExecutionPlan):
    """Shared behaviour of every compiled route (runtime-backed).

    Single matches replay the memoized lazy-DFA rows; batches attempt the
    kernel scan (building a composed table costs milliseconds, so tiny
    batches only take it when a program is already cached) and fall back
    to per-word replay; child sequences go through the pattern's
    acceptance memo.  Subclasses only change the *verdict* batch path and
    the route name.
    """

    __slots__ = ("_memo", "_runtime", "_scan")

    def __init__(self, pattern: "Pattern"):
        super().__init__(pattern)
        self._memo = None
        self._runtime = None
        #: lazily exported ``(program, accepting_states)`` for the lexer
        self._scan = None

    @property
    def runtime(self):
        runtime = self._runtime
        if runtime is None:
            runtime = self._runtime = self.pattern.runtime
        return runtime

    def match(self, symbols: Sequence[str]) -> bool:
        return self.runtime.accepts(symbols)

    def stream(self):
        return self.runtime.start()

    def match_all(self, parsed: Sequence[Sequence[str]], detail: str = "verdict"):
        if detail == "full":
            return self._match_all_full(parsed)
        return self._match_verdicts(parsed)

    def _kernel_attempt(self, parsed, replay=None):
        """One kernel pass over the batch, or ``None`` (stay on per-word).

        Returns the verdict list and books the pattern's kernel traffic
        split.  Building a composed table costs milliseconds; tiny batches
        only route through the kernel when a program is already cached.
        """
        runtime = self.runtime
        if len(parsed) >= kernel.MIN_BATCH or runtime._kernel_programs:
            result = kernel.match_words(runtime, parsed, replay=replay)
            if result is not None:
                verdicts, kernel_words, fallback_words = result
                self.pattern._record_kernel_traffic(kernel_words, fallback_words)
                return verdicts
        return None

    def _match_verdicts(self, parsed: Sequence[Sequence[str]]) -> list[bool]:
        verdicts = self._kernel_attempt(parsed)
        if verdicts is not None:
            return verdicts
        runtime = self.runtime
        accepts_encoded = runtime.accepts_encoded
        return [accepts_encoded(runtime.encode(word)) for word in parsed]

    def _match_all_full(self, parsed: Sequence[Sequence[str]]):
        """The ``detail="full"`` batch path: one lazy MatchResult per word.

        Kernel batches route their byte-2 fallback words through a
        :class:`~repro.diagnostics.TraceRecorder`, so the traces those
        replays walk anyway seed the results and no prefix is walked
        twice.  This path is route-independent across the compiled plans:
        full results need per-word traces, which the star-free corpus
        scan does not produce.
        """
        from .. import diagnostics

        runtime = self.runtime
        recorder = diagnostics.TraceRecorder(runtime)
        verdicts = self._kernel_attempt(parsed, replay=recorder)
        if verdicts is not None:
            results = []
            for word, verdict in zip(parsed, verdicts):
                seed = recorder.traces.get(tuple(runtime.encode(word)))
                diagnosis = None
                if seed is not None:
                    diagnosis = diagnostics.complete_from_trace(
                        self.pattern, word, seed[0], seed[1]
                    )
                results.append(
                    diagnostics.MatchResult(
                        verdict, word, pattern=self.pattern, diagnosis=diagnosis
                    )
                )
            return results
        accepts_encoded = runtime.accepts_encoded
        return [
            diagnostics.MatchResult(
                accepts_encoded(runtime.encode(word)), word, pattern=self.pattern
            )
            for word in parsed
        ]

    def accepts_children(self, children: Sequence[str]) -> bool:
        memo = self._memo
        if memo is None:
            memo = self._memo = self.pattern.acceptance_memo()
        # Whole-sequence fast path: repeated child sequences (the Li et
        # al. workload) are answered by one dict probe.
        return memo.accepts(self.runtime, children)

    def replay_for_diagnostics(self):
        from ..diagnostics import _CompiledEngine

        return _CompiledEngine(self.runtime, self.pattern.tree_report.deterministic)

    # -- lexer surface ------------------------------------------------------------------
    def scan_program(self):
        scan = self._scan
        if scan is None:
            runtime = self.runtime
            width = len(runtime.alphabet)
            accepting: list[int] = []
            seen = {runtime._start_state}
            queue = [runtime._start_state]
            step = runtime.step
            while queue:
                state = queue.pop()
                if runtime.state_accepts(state):
                    accepting.append(state)
                for code in range(width):
                    target = step(state, code)
                    if target >= 0 and target not in seen:
                        seen.add(target)
                        queue.append(target)
            program = runtime.export_kernel_program(max_stride=1)
            scan = self._scan = (program, accepting)
        return scan

    def longest_match(self, tags, encoded, start: int):
        program, _accepting = self.scan_program()
        return kernel.longest_match(program, tags, encoded, start)

    # -- telemetry ----------------------------------------------------------------------
    def built_runtime(self):
        return self.pattern._built_runtime()

    def built_memo(self):
        return self.pattern._acceptance_memo

    def prime(self) -> "CompiledPlan":
        self.pattern.matcher
        self._runtime = self.pattern.runtime
        self._memo = self.pattern.acceptance_memo()
        return self


class StarFreePlan(CompiledPlan):
    """Star-free deterministic patterns: Theorem 4.12 corpus batching.

    Single matches, streaming and child sequences still run on the
    compiled runtime (sharing its memoized rows with every other
    surface); *verdict batches* are answered by one encoded-corpus pass
    of the multi-word matcher.
    """

    route = "star-free-multi"

    __slots__ = ("_multi",)

    def __init__(self, pattern: "Pattern"):
        super().__init__(pattern)
        self._multi = None

    def star_free(self):
        """The multi-word matcher, built once under the pattern's init lock."""
        multi = self._multi
        if multi is None:
            with self.pattern._init_lock:
                multi = self._multi
                if multi is None:
                    from .star_free import StarFreeMultiMatcher

                    multi = StarFreeMultiMatcher(self.pattern.tree, verify=False)
                    self._multi = multi
        return multi

    def built_star_free(self):
        return self._multi

    def _match_verdicts(self, parsed: Sequence[Sequence[str]]) -> list[bool]:
        encoded = self.pattern.tree.alphabet.encode_many(iter(parsed))
        return self.star_free().match_all_encoded(encoded)


class KernelPlan(CompiledPlan):
    """Kernel-table batching over the dense rows (per-word replay fallback)."""

    route = "compiled-kernel"

    __slots__ = ()


class RuntimePlan(CompiledPlan):
    """Per-word replay on the memoized rows — the terminal compiled fallback.

    The machine is too large for a kernel table; batch calls still probe
    :func:`kernel.match_words` (which answers ``None`` without a program)
    so a pattern whose rows later become table-eligible needs no re-plan.
    """

    route = "compiled-runtime"

    __slots__ = ()


#: A strategy predicate: ``qualifies(pattern, compiled)`` — *compiled* is
#: the effective execution mode (the pattern's own flag unless the caller
#: overrode it, e.g. a ``compiled=False`` validator sharing a compiled
#: cached pattern).
StrategyPredicate = Callable[["Pattern", bool], bool]


class _Strategy:
    __slots__ = ("name", "qualifies", "build")

    def __init__(self, name: str, qualifies: StrategyPredicate, build):
        self.name = name
        self.qualifies = qualifies
        self.build = build


class Planner:
    """An ordered registry of matching strategies.

    :meth:`plan` returns the first registered strategy whose predicate
    accepts the pattern — registration order *is* the priority order, and
    :meth:`register`'s ``before=`` hook lets a future dialect engine (the
    ROADMAP's back-reference work) slot itself ahead of the built-ins
    without editing any match surface.

    Thread-safety: registration mutates under a lock and `plan` walks an
    immutable snapshot list, so registering at runtime never breaks an
    in-flight plan lookup.  Plans already attached to patterns are not
    re-routed; call :func:`repro.purge` to re-plan cached patterns after
    changing the registry.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._strategies: list[_Strategy] = []

    def register(
        self,
        name: str,
        qualifies: StrategyPredicate,
        build: Callable[["Pattern"], ExecutionPlan],
        before: str | None = None,
    ) -> None:
        """Register strategy *name* (optionally ahead of an existing one).

        *qualifies* is called as ``qualifies(pattern, compiled)`` on
        deterministic patterns only; *build* turns the pattern into an
        :class:`ExecutionPlan`.  Re-registering a name replaces it in
        place.
        """
        with self._lock:
            strategies = [entry for entry in self._strategies if entry.name != name]
            entry = _Strategy(name, qualifies, build)
            if before is None:
                strategies.append(entry)
            else:
                for at, existing in enumerate(strategies):
                    if existing.name == before:
                        strategies.insert(at, entry)
                        break
                else:
                    raise LookupError(f"no strategy named {before!r} to insert before")
            self._strategies = strategies

    def unregister(self, name: str) -> bool:
        """Drop strategy *name*; returns whether it was registered."""
        with self._lock:
            strategies = [entry for entry in self._strategies if entry.name != name]
            changed = len(strategies) != len(self._strategies)
            self._strategies = strategies
            return changed

    def strategies(self) -> list[tuple[str, StrategyPredicate]]:
        """The ``(name, predicate)`` pairs in priority order."""
        return [(entry.name, entry.qualifies) for entry in self._strategies]

    def plan(self, pattern: "Pattern", compiled: bool | None = None) -> ExecutionPlan:
        """The execution plan for *pattern* (raises on non-determinism).

        *compiled* overrides the pattern's own execution mode without
        touching its cache identity — how a ``compiled=False`` validator
        runs the direct route over a pattern other surfaces share in
        compiled form.
        """
        if not pattern.report.deterministic:
            raise NotDeterministicError(
                f"cannot match against a non-deterministic expression: {pattern.explain()}",
                report=pattern.report,
            )
        mode = pattern._compiled if compiled is None else bool(compiled)
        for entry in self._strategies:
            if entry.qualifies(pattern, mode):
                return entry.build(pattern)
        raise LookupError(
            f"no registered strategy plans {pattern!r} (registry emptied?)"
        )


def _qualifies_direct(pattern: "Pattern", compiled: bool) -> bool:
    return not compiled


def _qualifies_star_free(pattern: "Pattern", compiled: bool) -> bool:
    # The rewritten tree must be star-free *and* deterministic under the
    # tree semantics — the +/counter fallback cases run on the
    # k-occurrence matcher, whose transition simulation the multi-matcher
    # does not reproduce.
    return compiled and pattern.tree_report.deterministic and not any(
        node.is_iteration for node in pattern.tree.nodes
    )


def _qualifies_kernel(pattern: "Pattern", compiled: bool) -> bool:
    return compiled and kernel.eligible(pattern.tree)


def _qualifies_runtime(pattern: "Pattern", compiled: bool) -> bool:
    return compiled


#: The process-wide planner every surface consults.  Future dialect
#: engines register here (``PLANNER.register(..., before="star-free-multi")``)
#: and instantly serve ``Pattern.match``/``match_all``, diagnostics
#: replay, the lexer, both XML validators and all three serving fronts.
PLANNER = Planner()
PLANNER.register("per-word", _qualifies_direct, DirectPlan)
PLANNER.register("star-free-multi", _qualifies_star_free, StarFreePlan)
PLANNER.register("compiled-kernel", _qualifies_kernel, KernelPlan)
PLANNER.register("compiled-runtime", _qualifies_runtime, RuntimePlan)


def plan_for(pattern: "Pattern", compiled: bool | None = None) -> ExecutionPlan:
    """Module-level convenience over :data:`PLANNER`."""
    return PLANNER.plan(pattern, compiled=compiled)


__all__ = [
    "CompiledPlan",
    "DirectPlan",
    "ExecutionPlan",
    "KernelPlan",
    "PLANNER",
    "Planner",
    "RuntimePlan",
    "StarFreePlan",
    "plan_for",
]
