"""The path-decomposition matcher (Section 4.3, Theorem 4.10).

Matching costs ``O(|e| + c_e |w|)`` where ``c_e`` is the alternation depth
of union and concatenation operators (at most 4 in real-world DTDs).  The
algorithm follows the paper closely:

* the parse tree is partitioned into vertical paths; a node heads a path
  when it is the root, a SupLast or SupFirst node, a nullable right child,
  or the right child of a union (Section 4.3, "Path decomposition");
* ``top(p)`` is the head of the path containing the left sibling of
  ``pSupFirst(p)``; the map ``h(top(p), lab(p)) = p`` aggregates, per path
  head, the positions reachable "from around the path" (Lemma 4.5
  guarantees the aggregation is collision-free for deterministic
  expressions);
* ``nexttop`` pointers let the transition simulation jump from path head
  to path head instead of climbing node by node; Lemma 4.7 shows the jump
  sequence visits every head that can announce a follower, and Lemma 4.9's
  potential argument bounds the amortised number of jumps by ``c_e + O(1)``
  per consumed symbol;
* ``FindNext`` (Algorithm 3) walks the jump sequence up to ``pSupLast(p)``,
  then performs the final First-set lookup of lines 8-14.

The paper stores ``h`` in lazy arrays; as discussed in DESIGN.md we use
per-head hash maps (the paper itself notes hash maps are the practical
choice), and :class:`~repro.structures.lazy_array.LazyArray` is exercised
on its own and by the star-free matcher.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..regex.parse_tree import NodeKind, TreeNode
from .base import DeterministicMatcher


@dataclass(slots=True)
class _PathRecord:
    """Bookkeeping for one decomposition path during the nexttop DFS."""

    head: TreeNode
    qualifies_statically: bool
    has_concat: bool = False
    in_qualifying_stack: bool = False


class PathDecompositionMatcher(DeterministicMatcher):
    """Theorem 4.10: matching in O(|e| + c_e |w|)."""

    name = "path-decomposition"

    # -- preprocessing --------------------------------------------------------------
    def _prepare(self) -> None:
        self._compute_topmost()
        self._compute_h()
        self._compute_nexttop()
        #: total number of nexttop jumps performed (instrumentation for E4)
        self.jump_count = 0

    def _compute_topmost(self) -> None:
        """Mark path heads and record, for every node, the head of its path."""
        tree = self.tree
        self._is_head = [False] * len(tree.nodes)
        self._path_head = [None] * len(tree.nodes)  # type: list[TreeNode | None]
        for node in tree.nodes:  # pre-order: parents before children
            parent = node.parent
            is_head = (
                parent is None
                or node.sup_last
                or node.sup_first
                or (node is parent.right and node.nullable)
                or (node is parent.right and parent.kind is NodeKind.UNION)
            )
            self._is_head[node.index] = is_head
            self._path_head[node.index] = node if is_head else self._path_head[parent.index]

    def top(self, position: TreeNode) -> TreeNode | None:
        """``top(p)``: head of the path of the left sibling of ``pSupFirst(p)``."""
        sup_first = position.p_sup_first
        if sup_first is None or sup_first.parent is None:
            return None
        left_sibling = sup_first.parent.left
        if left_sibling is None:
            return None
        return self._path_head[left_sibling.index]

    def _compute_h(self) -> None:
        """``h(top(p), lab(p)) = p`` for every position (Lemma 4.5 makes this collision-free)."""
        self._h: dict[int, dict[str, TreeNode]] = {}
        for position in self.tree.positions:
            head = self.top(position)
            if head is None:
                continue
            self._h.setdefault(head.index, {})[position.symbol] = position

    def _compute_nexttop(self) -> None:
        """One DFS computing ``nexttop`` for every node in O(|e|).

        ``nexttop(n)`` is the lowest path head above ``parent(n)`` that is
        the root, a SupLast or SupFirst node, or whose path contains a
        non-nullable concatenation node that is an ancestor of ``n``.  The
        DFS keeps one record per path currently open; a record becomes
        *qualifying* either statically (root/SupLast/SupFirst head) or as
        soon as a non-nullable concatenation of its path is entered —
        which can only happen while the record is the innermost one, so the
        stack of qualifying records stays ordered by depth and its top is
        exactly the pointer we need.
        """
        tree = self.tree
        self._nexttop: list[TreeNode | None] = [None] * len(tree.nodes)
        record_stack: list[_PathRecord] = []
        qualifying: list[_PathRecord] = []

        stack: list[tuple[TreeNode, bool]] = [(tree.root, True)]
        while stack:
            node, entering = stack.pop()
            if not entering:
                if self._is_head[node.index]:
                    record = record_stack.pop()
                    if record.in_qualifying_stack:
                        qualifying.pop()
                continue

            self._nexttop[node.index] = qualifying[-1].head if qualifying else None

            if self._is_head[node.index]:
                parent = node.parent
                statically = (
                    parent is None or node.sup_last or node.sup_first
                )
                record = _PathRecord(node, statically)
                record_stack.append(record)
                if statically:
                    record.in_qualifying_stack = True
                    qualifying.append(record)
            record = record_stack[-1]
            if node.kind is NodeKind.CONCAT and not node.nullable and not record.has_concat:
                record.has_concat = True
                if not record.in_qualifying_stack:
                    record.in_qualifying_stack = True
                    qualifying.append(record)

            stack.append((node, False))
            if node.right is not None:
                stack.append((node.right, True))
            if node.left is not None:
                stack.append((node.left, True))

    def nexttop(self, node: TreeNode) -> TreeNode | None:
        """The precomputed ``nexttop`` pointer of *node*."""
        return self._nexttop[node.index]

    # -- transition simulation (Algorithm 3) ---------------------------------------------
    def next_position(self, position: TreeNode, symbol: str) -> TreeNode | None:
        """``FindNext(p, a)``: follow nexttop jumps, then the final First lookup."""
        follows = self.follow.follows
        h = self._h
        nexttop = self._nexttop
        target = position.p_sup_last

        current: TreeNode | None = position
        while current is not None and current is not target:
            self.jump_count += 1
            candidate = h.get(current.index, {}).get(symbol)
            if candidate is not None and follows(position, candidate):
                return candidate
            current = nexttop[current.index]
        if current is None:
            # The jump sequence ran past the root without meeting pSupLast(p);
            # this cannot happen on R1-wrapped trees but is kept as a guard.
            return None

        candidate = h.get(current.index, {}).get(symbol)
        if candidate is not None and follows(position, candidate):
            return candidate

        # Lines 8-14: look for the follower inside First(parent(pSupLast(p))).
        parent = current.parent
        if parent is None:
            return None
        sup_first = parent.p_sup_first
        if sup_first is None:
            return None
        if sup_first.nullable:
            hop = nexttop[sup_first.index]
            candidate = h.get(hop.index, {}).get(symbol) if hop is not None else None
        else:
            grand = sup_first.parent
            left_sibling = grand.left if grand is not None else None
            candidate = (
                h.get(left_sibling.index, {}).get(symbol) if left_sibling is not None else None
            )
        if candidate is not None and follows(position, candidate):
            return candidate
        return None

    # -- instrumentation --------------------------------------------------------------------
    def reset_jump_count(self) -> None:
        """Reset the jump counter (benchmarks measure jumps per symbol)."""
        self.jump_count = 0

    def head_count(self) -> int:
        """Number of paths in the decomposition."""
        return sum(1 for flag in self._is_head if flag)
