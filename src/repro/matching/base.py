"""Common infrastructure for the Section 4 matching algorithms.

Every matcher in this package follows the paper's scheme: it provides a
*transition simulation* procedure — given the current position ``p`` and
an input symbol ``a``, return the a-labelled position that follows ``p``
(or ``None``) — and the word-level driver is shared:

* start at the ``#`` sentinel position,
* apply the transition simulation to each symbol of ``w`` in turn,
* accept iff the ``$`` sentinel follows the final position.

Because the driver consumes the input one symbol at a time and keeps only
the current position, every matcher is *streamable* exactly as the paper
points out; :class:`MatchRun` exposes that streaming interface directly
(the streaming example and the XML validator use it).

Matchers are only correct on deterministic expressions; by default the
constructor runs the linear-time determinism test and raises
:class:`~repro.errors.NotDeterministicError` on failure (pass
``verify=False`` to skip the check when the caller already knows).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Sequence

from ..core.determinism import DeterminismChecker
from ..core.follow import FollowIndex
from ..errors import NotDeterministicError
from ..regex.ast import Regex
from ..regex.parse_tree import ParseTree, TreeNode, build_parse_tree


class DeterministicMatcher(ABC):
    """Base class implementing the shared matching driver.

    Subclasses implement :meth:`next_position` (the transition simulation
    procedure of the paper) and may override :meth:`_prepare` to build
    their per-algorithm preprocessing structures.
    """

    #: short machine-readable name used by the dispatcher and the benchmarks
    name = "abstract"

    def __init__(
        self,
        expr: Regex | ParseTree | str,
        verify: bool = True,
        checker: DeterminismChecker | None = None,
    ):
        self.tree = expr if isinstance(expr, ParseTree) else build_parse_tree(expr)
        if checker is not None and checker.tree is not self.tree:
            raise ValueError("the supplied checker was built for a different parse tree")
        self._checker = checker
        self.follow: FollowIndex = checker.follow if checker is not None else FollowIndex(self.tree)
        if verify:
            report = self.checker.report()
            if not report.deterministic:
                raise NotDeterministicError(
                    f"{type(self).__name__} requires a deterministic expression: "
                    f"{report.describe()}",
                    report=report,
                )
        #: lazily attached CompiledRuntime (see :func:`repro.matching.runtime.compile_runtime`)
        self._compiled_runtime = None
        self._prepare()

    # -- lazily shared preprocessing -------------------------------------------------
    @property
    def checker(self) -> DeterminismChecker:
        """The determinism checker (and its skeleton index), built on demand."""
        if self._checker is None:
            self._checker = DeterminismChecker(self.tree, self.follow)
        return self._checker

    def _prepare(self) -> None:
        """Hook for per-algorithm preprocessing (default: nothing)."""

    # -- the transition simulation procedure -----------------------------------------
    @abstractmethod
    def next_position(self, position: TreeNode, symbol: str) -> TreeNode | None:
        """Return the *symbol*-labelled position following *position*, or ``None``."""

    # -- word-level driver --------------------------------------------------------------
    def start(self) -> "MatchRun":
        """Begin a streaming run (at the ``#`` sentinel)."""
        return MatchRun(self)

    def accepts(self, word: Iterable[str]) -> bool:
        """True when *word* belongs to the language of the expression.

        Written as a tight loop over the transition simulation with the
        bound method hoisted out — no per-symbol :class:`MatchRun`
        bookkeeping — because this is the inner loop every benchmark and
        every validated element pays.

        A word containing the literal ``$`` character must die at that
        symbol: the only ``$``-labelled position is the R1 end sentinel,
        which is not part of the alphabet the language is defined over
        (``#`` labels only the start position, which never follows
        anything).  The guard keeps the direct path in lock-step with the
        compiled runtime, whose encoder rejects sentinels by construction.
        """
        position = self.tree.start
        end = self.tree.end
        next_position = self.next_position
        for symbol in word:
            position = next_position(position, symbol)
            if position is None or position is end:
                return False
        return self.follow.accepts_at(position)

    def trace(self, word: Iterable[str]) -> list[TreeNode]:
        """The sequence of positions visited while reading *word*.

        The trace stops at the first mismatching symbol; it always starts
        with the ``#`` sentinel.  Mostly useful for tests and debugging.
        """
        position = self.tree.start
        visited = [position]
        for symbol in word:
            following = self.next_position(position, symbol)
            if following is None or following is self.tree.end:
                break
            position = following
            visited.append(position)
        return visited


class MatchRun:
    """A streaming match in progress: feed symbols one at a time.

    ``feed`` returns False once the word has irrevocably fallen outside the
    language (the run stays dead from then on); ``is_accepting`` may be
    consulted at any point and does not consume input, which is exactly
    what incremental validation of an XML child sequence needs.
    """

    __slots__ = ("matcher", "position", "alive", "consumed")

    def __init__(self, matcher: DeterministicMatcher):
        self.matcher = matcher
        self.position: TreeNode = matcher.tree.start
        self.alive = True
        self.consumed = 0

    def feed(self, symbol: str) -> bool:
        """Consume one symbol; return True while the run is still alive.

        Feeding the literal ``$`` kills the run: its only position is the
        R1 end sentinel, which is outside the user alphabet (see
        :meth:`DeterministicMatcher.accepts`).
        """
        if not self.alive:
            return False
        following = self.matcher.next_position(self.position, symbol)
        if following is None or following is self.matcher.tree.end:
            self.alive = False
            return False
        self.position = following
        self.consumed += 1
        return True

    def feed_all(self, word: Iterable[str]) -> bool:
        """Consume a whole word; return True while the run is still alive.

        Equivalent to ``feed`` in a loop but with the position, the counter
        and the transition simulation hoisted into locals, so long words pay
        one attribute flush instead of four attribute accesses per symbol.
        """
        if not self.alive:
            return False
        position = self.position
        consumed = self.consumed
        end = self.matcher.tree.end
        next_position = self.matcher.next_position
        for symbol in word:
            following = next_position(position, symbol)
            if following is None or following is end:
                self.position = position
                self.consumed = consumed
                self.alive = False
                return False
            position = following
            consumed += 1
        self.position = position
        self.consumed = consumed
        return True

    def is_accepting(self) -> bool:
        """True when the symbols consumed so far form a member of the language."""
        return self.alive and self.matcher.follow.accepts_at(self.position)


def as_word(word: str | Sequence[str]) -> list[str]:
    """Normalise user input into a list of symbols (see :func:`repro.regex.parser.parse_word`)."""
    from ..regex.parser import parse_word

    return parse_word(word)
