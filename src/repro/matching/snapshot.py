"""Persisted dense-row snapshots: the lazy DFA survives process boundaries.

The compiled runtime (:mod:`repro.matching.runtime`) turns Section-4
matchers into integer transition rows, but every process re-exercises
those rows from scratch: cold starts pay the full matcher preprocessing
plus one structure query per ``(state, symbol)`` pair.  The Li et al.
large-scale schema study (arXiv:1805.12503) shows real-world content
models repeat heavily across schemas — exactly the workload where the
rows one warm process has materialized are the rows the next thousand
processes will need.  This module persists them:

* a **versioned, checksummed binary format** holding, per pattern, a
  *fingerprint* (SHA-256 over the reconstruction identity: expression
  text, dialects, strategy, frozen-alphabet encoding, position count),
  the per-state acceptance verdicts, and every completed dense
  ``array('i')`` row;
* rows are written through a **file-level interning pool** mirroring the
  in-memory registry: structurally equal rows are stored once and
  referenced by index, so the Li-style repetition collapses on disk too;
* snapshots are **written atomically** (temp file + ``os.replace``) and
  **loaded via ``mmap``**: adopted rows are zero-copy ``memoryview``
  slices into the page cache, so forked workers — and independent
  processes loading the same file — share the row pages copy-on-write
  instead of each materializing a private copy;
* **corruption can never change a verdict**: the loader validates magic,
  version, byte order, item size, bounds and a CRC-32 of the whole
  payload; adoption re-derives the fingerprint from the live pattern and
  bounds-checks every state and target.  Any mismatch raises
  :class:`SnapshotError` (tagged with a ``reason``), which the API layer
  converts into a counted ``snapshot_rejected`` stat and a plain cold
  start — the lazy fill path is always there underneath.

The user-facing surface lives in :mod:`repro.api`
(``save_snapshot`` / ``load_snapshot`` / ``snapshot_stats``); the prefork
service front (:mod:`repro.service.prefork`) preloads a snapshot before
forking so every worker boots warm.  Format details and compatibility
rules are documented in ``docs/snapshot.md``.
"""

from __future__ import annotations

import hashlib
import io
import json
import mmap
import os
import struct
import sys
import tempfile
import zlib
from array import array
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

#: First 8 bytes of every snapshot file.  The trailing digit doubles as a
#: coarse format generation: readers reject anything but an exact match.
MAGIC = b"RPRODFA1"

#: Format version (u16 in the header); bump on any layout change.
VERSION = 1

#: Fixed-size header: magic, version, itemsize, byteorder flag,
#: pattern count, payload CRC-32, payload length.
_HEADER = struct.Struct("<8sHBBIIQ")

#: Dense rows are ``array('i')``; snapshots record the writer's itemsize
#: and readers reject a mismatch instead of reinterpreting the bytes.
ITEMSIZE = array("i").itemsize

#: 0 = little-endian writer, 1 = big-endian.  Row payloads are raw
#: ``array.tobytes()`` (native order), so a cross-endian load is invalid.
_BYTEORDER_FLAG = 0 if sys.byteorder == "little" else 1

#: Fields hashed into a pattern fingerprint, in canonical JSON order.
#: ``expr``/dialects/strategy pin how the pattern is reconstructed;
#: ``alphabet``/``positions``/``width`` pin the row encoding itself —
#: a parser or tree-builder change that shifts either one changes the
#: fingerprint and retires every stale snapshot automatically.
FINGERPRINT_FIELDS = (
    "expr",
    "parse_dialect",
    "key_kind",
    "dialect",
    "strategy",
    "compiled",
    "alphabet",
    "positions",
    "width",
)

#: Byte markers in the per-state acceptance section.
ACCEPT_UNKNOWN = 0xFF


class SnapshotError(Exception):
    """A snapshot failed validation; carries a machine-readable *reason*.

    Reasons are short tags (``"truncated"``, ``"checksum"``,
    ``"fingerprint"``, ``"alphabet-width"``, ...) that the API layer's
    ``snapshot_rejected`` telemetry counts per kind.  The error is always
    recoverable: callers degrade to the normal lazy fill.
    """

    def __init__(self, reason: str, message: str):
        super().__init__(message)
        self.reason = reason


def pattern_fingerprint(meta: Mapping[str, object]) -> bytes:
    """SHA-256 digest of the reconstruction identity in *meta*.

    Hashes exactly :data:`FINGERPRINT_FIELDS` (canonical JSON, sorted
    keys), so two processes agree on a fingerprint iff they agree on how
    to rebuild the pattern *and* on the row encoding it produces.

    >>> meta = {"expr": "(ab)*", "parse_dialect": "paper", "key_kind": "text",
    ...         "dialect": "paper", "strategy": "auto", "compiled": True,
    ...         "alphabet": ["a", "b"], "positions": 4, "width": 2}
    >>> len(pattern_fingerprint(meta))
    32
    >>> pattern_fingerprint(meta) == pattern_fingerprint(dict(meta))
    True
    """
    try:
        identity = {name: meta[name] for name in FINGERPRINT_FIELDS}
    except KeyError as error:
        raise SnapshotError("meta", f"snapshot meta lacks field {error}") from None
    canonical = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).digest()


@dataclass(frozen=True, slots=True)
class SnapshotEntry:
    """One pattern's persisted state inside a loaded snapshot.

    ``rows()`` materializes ``{state: row}`` where each row is a
    zero-copy ``memoryview`` into the snapshot's mmap (int-typed, exactly
    ``meta["width"]`` entries) — handing them to
    :meth:`~repro.matching.runtime.CompiledRuntime.adopt_rows` shares the
    on-disk pages instead of copying them.
    """

    fingerprint: bytes
    meta: dict
    accepts: bytes
    _row_refs: tuple[tuple[int, int], ...]
    _snapshot: "Snapshot"

    def rows(self) -> dict[int, memoryview]:
        return {state: self._snapshot.pool_row(index) for state, index in self._row_refs}

    @property
    def row_count(self) -> int:
        return len(self._row_refs)


@dataclass(slots=True)
class Snapshot:
    """A validated, mmap-backed snapshot file.

    The mmap stays open for the object's lifetime; adopted row views keep
    it (and therefore the shared pages) alive even if the Snapshot object
    itself is dropped.
    """

    path: str
    entries: list[SnapshotEntry] = field(default_factory=list)
    _mm: mmap.mmap | None = None
    _view: memoryview | None = None
    _pool_spans: list[tuple[int, int]] = field(default_factory=list)
    _pool_views: dict[int, memoryview] = field(default_factory=dict)

    def pool_row(self, index: int) -> memoryview:
        """The interned row at *index*, cast to ints (cached per pool slot)."""
        view = self._pool_views.get(index)
        if view is None:
            offset, length = self._pool_spans[index]
            view = self._view[offset : offset + length].cast("i")
            self._pool_views[index] = view
        return view

    @property
    def pool_size(self) -> int:
        """Number of distinct interned rows stored in the file."""
        return len(self._pool_spans)

    @property
    def size_bytes(self) -> int:
        return os.path.getsize(self.path)


class _Reader:
    """Bounds-checked cursor over the payload bytes."""

    __slots__ = ("data", "offset")

    def __init__(self, data: memoryview):
        self.data = data
        self.offset = 0

    def take(self, count: int) -> memoryview:
        if count < 0 or self.offset + count > len(self.data):
            raise SnapshotError("truncated", "payload ends mid-record")
        chunk = self.data[self.offset : self.offset + count]
        self.offset += count
        return chunk

    def u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]

    def pad4(self) -> None:
        self.offset += (-self.offset) % 4
        if self.offset > len(self.data):
            raise SnapshotError("truncated", "payload ends inside padding")


def _write_padded(buffer: io.BytesIO, chunk: bytes) -> None:
    buffer.write(struct.pack("<I", len(chunk)))
    buffer.write(chunk)
    buffer.write(b"\x00" * ((-(4 + len(chunk))) % 4))


def write(path: str | os.PathLike, entries: Iterable[dict]) -> dict:
    """Atomically write a snapshot file; returns ``{patterns, rows, pool_rows, bytes}``.

    Each entry is ``{"fingerprint": bytes, "meta": dict, "accepts": bytes,
    "rows": {state: int-sequence}}`` — the shape
    :meth:`CompiledRuntime.export_rows` plus the API layer's meta builder
    produce.  Rows are interned into a file-level pool: structurally equal
    rows (within or across patterns) are stored once.  The file appears
    atomically via ``os.replace``, so a reader can never observe a
    half-written snapshot — at worst a stale complete one.
    """
    entries = list(entries)
    pool: dict[tuple[int, ...], int] = {}
    pool_rows: list[tuple[int, ...]] = []
    encoded_entries: list[bytes] = []
    total_rows = 0
    for entry in entries:
        meta_bytes = json.dumps(entry["meta"], sort_keys=True).encode("utf-8")
        accepts: bytes = entry["accepts"]
        refs = io.BytesIO()
        rows: Mapping[int, Sequence[int]] = entry["rows"]
        for state in sorted(rows):
            key = tuple(rows[state])
            index = pool.get(key)
            if index is None:
                index = pool[key] = len(pool_rows)
                pool_rows.append(key)
            refs.write(struct.pack("<II", state, index))
            total_rows += 1
        body = io.BytesIO()
        fingerprint: bytes = entry["fingerprint"]
        if len(fingerprint) != 32:
            raise ValueError("fingerprints must be 32-byte SHA-256 digests")
        body.write(fingerprint)
        _write_padded(body, meta_bytes)
        _write_padded(body, accepts)
        body.write(struct.pack("<I", len(rows)))
        body.write(refs.getvalue())
        encoded_entries.append(body.getvalue())

    payload = io.BytesIO()
    payload.write(struct.pack("<I", len(pool_rows)))
    for key in pool_rows:
        payload.write(struct.pack("<I", len(key)))
        payload.write(array("i", key).tobytes())
    payload.write(struct.pack("<I", len(encoded_entries)))
    for body in encoded_entries:
        payload.write(body)
    payload_bytes = payload.getvalue()

    header = _HEADER.pack(
        MAGIC,
        VERSION,
        ITEMSIZE,
        _BYTEORDER_FLAG,
        len(encoded_entries),
        zlib.crc32(payload_bytes) & 0xFFFFFFFF,
        len(payload_bytes),
    )
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    fd, temp_path = tempfile.mkstemp(prefix=".snapshot-", dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(header)
            handle.write(payload_bytes)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    return {
        "patterns": len(encoded_entries),
        "rows": total_rows,
        "pool_rows": len(pool_rows),
        "bytes": len(header) + len(payload_bytes),
    }


def load(path: str | os.PathLike) -> Snapshot:
    """mmap and validate a snapshot file; raises :class:`SnapshotError`.

    Validation order matters for the corruption tests: size/magic/version
    and the machine-compatibility fields are checked before the checksum,
    and the checksum before any structural parsing, so every class of
    corruption maps to one stable ``reason`` tag.
    """
    path = os.fspath(path)
    try:
        handle = open(path, "rb")
    except OSError as error:
        raise SnapshotError("missing", f"cannot open snapshot {path!r}: {error}") from None
    with handle:
        try:
            mm = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError) as error:  # empty file or mmap failure
            raise SnapshotError("truncated", f"cannot map snapshot {path!r}: {error}") from None
    if len(mm) < _HEADER.size:
        raise SnapshotError("truncated", f"{path!r} is shorter than the snapshot header")
    magic, version, itemsize, byteorder, count, checksum, payload_length = _HEADER.unpack_from(
        mm, 0
    )
    if magic != MAGIC:
        raise SnapshotError("magic", f"{path!r} is not a dense-row snapshot")
    if version != VERSION:
        raise SnapshotError("version", f"snapshot version {version} (expected {VERSION})")
    if itemsize != ITEMSIZE:
        raise SnapshotError("itemsize", f"row itemsize {itemsize} (expected {ITEMSIZE})")
    if byteorder != _BYTEORDER_FLAG:
        raise SnapshotError("byte-order", "snapshot was written on a different-endian machine")
    if _HEADER.size + payload_length != len(mm):
        raise SnapshotError(
            "truncated",
            f"payload length {payload_length} does not match file size {len(mm)}",
        )
    view = memoryview(mm)
    payload = view[_HEADER.size :]
    if zlib.crc32(payload) & 0xFFFFFFFF != checksum:
        raise SnapshotError("checksum", f"CRC mismatch in {path!r}")

    snapshot = Snapshot(path=path)
    snapshot._mm = mm
    snapshot._view = payload
    reader = _Reader(payload)
    pool_count = reader.u32()
    for _ in range(pool_count):
        ints = reader.u32()
        if ints > len(payload) // ITEMSIZE:
            raise SnapshotError("malformed", "pool row longer than the payload")
        start = reader.offset
        reader.take(ints * ITEMSIZE)
        snapshot._pool_spans.append((start, ints * ITEMSIZE))
    entry_count = reader.u32()
    if entry_count != count:
        raise SnapshotError("malformed", "entry count disagrees with the header")
    for _ in range(entry_count):
        fingerprint = bytes(reader.take(32))
        meta_bytes = bytes(reader.take(reader.u32()))
        reader.pad4()
        accepts = bytes(reader.take(reader.u32()))
        reader.pad4()
        row_count = reader.u32()
        refs: list[tuple[int, int]] = []
        for _ in range(row_count):
            state = reader.u32()
            index = reader.u32()
            if index >= pool_count:
                raise SnapshotError("malformed", f"row reference {index} outside the pool")
            refs.append((state, index))
        try:
            meta = json.loads(meta_bytes)
        except ValueError as error:
            raise SnapshotError("malformed", f"snapshot meta is not JSON: {error}") from None
        if not isinstance(meta, dict):
            raise SnapshotError("malformed", "snapshot meta must be a JSON object")
        snapshot.entries.append(
            SnapshotEntry(
                fingerprint=fingerprint,
                meta=meta,
                accepts=accepts,
                _row_refs=tuple(refs),
                _snapshot=snapshot,
            )
        )
    return snapshot
