"""Persisted warm-state snapshots: materialized matching state survives processes.

The compiled runtime (:mod:`repro.matching.runtime`) turns Section-4
matchers into integer transition rows, but every process re-exercises
those rows from scratch: cold starts pay the full matcher preprocessing
plus one structure query per ``(state, symbol)`` pair.  The Li et al.
large-scale schema study (arXiv:1805.12503) shows real-world content
models repeat heavily across schemas — exactly the workload where the
state one warm process has materialized is the state the next thousand
processes will need.  This module persists it.

**Format v2** stores three independent *sections* behind one CRC-checked
header + directory:

* ``ROWS`` — the dense lazy-DFA rows (the v1 payload, unchanged): per
  pattern a *fingerprint* (SHA-256 over the reconstruction identity),
  per-state acceptance verdicts and every completed dense ``array('i')``
  row, with rows written through a **file-level interning pool**
  mirroring the in-memory registry;
* ``SFTB`` — the star-free multi-matcher's memoized tables
  (:meth:`repro.matching.star_free.StarFreeMultiMatcher.export_tables`):
  per pattern the ``(entry, scanned) → advance/dead/retain`` decision
  memo and the per-position acceptance verdicts, keyed by the same
  fingerprints;
* ``MEMO`` — the XML validators' per-element acceptance memos
  (:mod:`repro.xml.memo`): ``child-sequence → verdict`` entries, again
  keyed by pattern fingerprint.

Every section carries its own CRC-32 in the directory, so corruption
**degrades per section**: a bit flip inside one section rejects only
that section (recorded in :attr:`Snapshot.section_errors`, counted by
the API layer) while the other two still adopt.  Header/directory
corruption, truncation, or a foreign file reject the whole load.  In
either case the fallback is the normal lazy rebuild — **corruption can
never change a verdict** (the property suite flips random bits end to
end and checks exactly that).

Version-1 files (rows only) still load; the API layer counts them under
``format_v1``.  Snapshots are written atomically (temp file +
``os.replace``) and loaded via ``mmap``: adopted rows are zero-copy
``memoryview`` slices into the page cache, so forked workers — and
independent processes loading the same file — share the row pages
copy-on-write.

The user-facing surface lives in :mod:`repro.api`
(``save_snapshot`` / ``load_snapshot`` / ``snapshot_stats``); the
serving layer adds a live lifecycle on top — a background
re-persist thread (:class:`repro.service.prefork.SnapshotRefresher`)
and a ``GET /snapshot`` endpoint streaming the current file so a fresh
host bootstraps from a running fleet.  Format details and compatibility
rules are documented in ``docs/snapshot.md``.
"""

from __future__ import annotations

import hashlib
import io
import json
import mmap
import os
import struct
import sys
import tempfile
import zlib
from array import array
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

#: First 8 bytes of every snapshot file.  Shared by format versions 1 and
#: 2 (the ``version`` field right after it is what distinguishes them);
#: readers reject anything but an exact match.
MAGIC = b"RPRODFA1"

#: Current format version (u16 in the header); version-1 files (rows
#: only) are still accepted by :func:`load`.
VERSION = 2

#: Version-1 fixed-size header: magic, version, itemsize, byteorder flag,
#: pattern count, payload CRC-32, payload length.
_HEADER_V1 = struct.Struct("<8sHBBIIQ")

#: Version-2 fixed-size header: magic, version, itemsize, byteorder flag,
#: section count, directory CRC-32.  The CRC covers the directory bytes
#: that follow, so a flipped header/directory byte rejects the whole
#: file before any section is trusted.
_HEADER_V2 = struct.Struct("<8sHBBII")

#: One directory entry per section: 4-byte tag, payload CRC-32, absolute
#: file offset, payload length.
_SECTION = struct.Struct("<4sIQQ")

#: Section tags.  Unknown tags are skipped on load (forward compatibility).
SECTION_ROWS = b"ROWS"
SECTION_TABLES = b"SFTB"
SECTION_MEMOS = b"MEMO"

#: Upper bound on the section count a reader will accept; the writer
#: emits at most three.
MAX_SECTIONS = 16

#: Dense rows are ``array('i')``; snapshots record the writer's itemsize
#: and readers reject a mismatch instead of reinterpreting the bytes.
ITEMSIZE = array("i").itemsize

#: 0 = little-endian writer, 1 = big-endian.  Row payloads are raw
#: ``array.tobytes()`` (native order), so a cross-endian load is invalid.
_BYTEORDER_FLAG = 0 if sys.byteorder == "little" else 1

#: Fields hashed into a pattern fingerprint, in canonical JSON order.
#: ``expr``/dialects/strategy pin how the pattern is reconstructed;
#: ``alphabet``/``positions``/``width`` pin the row encoding itself —
#: a parser or tree-builder change that shifts either one changes the
#: fingerprint and retires every stale snapshot automatically.
FINGERPRINT_FIELDS = (
    "expr",
    "parse_dialect",
    "key_kind",
    "dialect",
    "strategy",
    "compiled",
    "alphabet",
    "positions",
    "width",
)

#: Byte markers in the per-state acceptance section.
ACCEPT_UNKNOWN = 0xFF


class SnapshotError(Exception):
    """A snapshot failed validation; carries a machine-readable *reason*.

    Reasons are short tags (``"truncated"``, ``"checksum"``,
    ``"fingerprint"``, ``"alphabet-width"``, ``"table-bounds"``, ...)
    that the API layer's ``snapshot_rejected`` telemetry counts per
    kind.  The error is always recoverable: callers degrade to the
    normal lazy fill.
    """

    def __init__(self, reason: str, message: str):
        super().__init__(message)
        self.reason = reason


def pattern_fingerprint(meta: Mapping[str, object]) -> bytes:
    """SHA-256 digest of the reconstruction identity in *meta*.

    Hashes exactly :data:`FINGERPRINT_FIELDS` (canonical JSON, sorted
    keys), so two processes agree on a fingerprint iff they agree on how
    to rebuild the pattern *and* on the row encoding it produces.

    >>> meta = {"expr": "(ab)*", "parse_dialect": "paper", "key_kind": "text",
    ...         "dialect": "paper", "strategy": "auto", "compiled": True,
    ...         "alphabet": ["a", "b"], "positions": 4, "width": 2}
    >>> len(pattern_fingerprint(meta))
    32
    >>> pattern_fingerprint(meta) == pattern_fingerprint(dict(meta))
    True
    """
    try:
        identity = {name: meta[name] for name in FINGERPRINT_FIELDS}
    except KeyError as error:
        raise SnapshotError("meta", f"snapshot meta lacks field {error}") from None
    canonical = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).digest()


@dataclass(frozen=True, slots=True)
class SnapshotEntry:
    """One pattern's persisted dense rows inside a loaded snapshot.

    ``rows()`` materializes ``{state: row}`` where each row is a
    zero-copy ``memoryview`` into the snapshot's mmap (int-typed, exactly
    ``meta["width"]`` entries) — handing them to
    :meth:`~repro.matching.runtime.CompiledRuntime.adopt_rows` shares the
    on-disk pages instead of copying them.
    """

    fingerprint: bytes
    meta: dict
    accepts: bytes
    _row_refs: tuple[tuple[int, int], ...]
    _snapshot: "Snapshot"

    def rows(self) -> dict[int, memoryview]:
        return {state: self._snapshot.pool_row(index) for state, index in self._row_refs}

    @property
    def row_count(self) -> int:
        return len(self._row_refs)

    @property
    def kernel_ready(self) -> bool:
        """True when adopting this entry materializes the *whole* machine.

        Every state has a persisted row and every acceptance byte is
        resolved, so a runtime adopting the entry can export a batch
        kernel program (``CompiledRuntime.export_kernel_program``) with
        zero fallback edges — and without ever building its matcher: the
        flat scan table is assembled straight from the snapshot's
        interned row pool.  Partial entries still adopt fine; their first
        batch calls just send unseen words through the per-word fallback
        until the remaining rows fill.
        """
        states = self.meta.get("positions", 0)
        return (
            len(self._row_refs) == states
            and len(self.accepts) == states
            and 0xFF not in self.accepts
        )


@dataclass(frozen=True, slots=True)
class StarFreeEntry:
    """One pattern's persisted star-free multi-matcher tables (``SFTB``).

    ``accepts`` maps a position's pre-order number to its 0/1 acceptance
    verdict; ``decisions`` maps ``(entry_pre, scanned_pre)`` pairs to the
    0/1/2 dead/advance/retain decision codes of
    :mod:`repro.matching.star_free`.  Value-range validation happens in
    :meth:`~repro.matching.star_free.StarFreeMultiMatcher.adopt_tables`,
    strictly before any mutation.
    """

    fingerprint: bytes
    meta: dict
    accepts: dict[int, int]
    decisions: dict[tuple[int, int], int]


@dataclass(frozen=True, slots=True)
class MemoEntry:
    """One pattern's persisted validator acceptance memo (``MEMO``).

    ``entries`` is a sequence of ``(child-name sequence, verdict)``
    pairs; shape validation happens in
    :meth:`repro.xml.memo.AcceptanceMemo.adopt`, strictly before any
    mutation.
    """

    fingerprint: bytes
    meta: dict
    entries: tuple

    @property
    def entry_count(self) -> int:
        return len(self.entries)


@dataclass(slots=True)
class Snapshot:
    """A validated, mmap-backed snapshot file.

    The mmap stays open for the object's lifetime; adopted row views keep
    it (and therefore the shared pages) alive even if the Snapshot object
    itself is dropped.  ``section_errors`` records per-section validation
    failures of a v2 file — the sections that *did* validate are still
    populated (per-section degradation).
    """

    path: str
    format_version: int = VERSION
    entries: list[SnapshotEntry] = field(default_factory=list)
    star_free: list[StarFreeEntry] = field(default_factory=list)
    memos: list[MemoEntry] = field(default_factory=list)
    #: tags of the sections that validated and parsed completely; the
    #: API layer counts a load as successful only when this is non-empty
    sections: list[str] = field(default_factory=list)
    section_errors: list[tuple[str, SnapshotError]] = field(default_factory=list)
    _mm: mmap.mmap | None = None
    _view: memoryview | None = None
    _pool_spans: list[tuple[int, int]] = field(default_factory=list)
    _pool_views: dict[int, memoryview] = field(default_factory=dict)

    def pool_row(self, index: int) -> memoryview:
        """The interned row at *index*, cast to ints (cached per pool slot)."""
        view = self._pool_views.get(index)
        if view is None:
            offset, length = self._pool_spans[index]
            view = self._view[offset : offset + length].cast("i")
            self._pool_views[index] = view
        return view

    @property
    def pool_size(self) -> int:
        """Number of distinct interned rows stored in the file."""
        return len(self._pool_spans)

    @property
    def size_bytes(self) -> int:
        return os.path.getsize(self.path)


class _Reader:
    """Bounds-checked cursor over a payload's bytes."""

    __slots__ = ("data", "offset")

    def __init__(self, data: memoryview):
        self.data = data
        self.offset = 0

    def take(self, count: int) -> memoryview:
        if count < 0 or self.offset + count > len(self.data):
            raise SnapshotError("truncated", "payload ends mid-record")
        chunk = self.data[self.offset : self.offset + count]
        self.offset += count
        return chunk

    def u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]

    def pad4(self) -> None:
        self.offset += (-self.offset) % 4
        if self.offset > len(self.data):
            raise SnapshotError("truncated", "payload ends inside padding")


def _write_padded(buffer: io.BytesIO, chunk: bytes) -> None:
    buffer.write(struct.pack("<I", len(chunk)))
    buffer.write(chunk)
    buffer.write(b"\x00" * ((-(4 + len(chunk))) % 4))


# ---------------------------------------------------------------------------
# section encoders
# ---------------------------------------------------------------------------


def _encode_rows(entries: Sequence[dict]) -> tuple[bytes, dict]:
    """The ``ROWS`` payload (identical to the whole v1 payload) + stats."""
    pool: dict[tuple[int, ...], int] = {}
    pool_rows: list[tuple[int, ...]] = []
    encoded_entries: list[bytes] = []
    total_rows = 0
    for entry in entries:
        meta_bytes = json.dumps(entry["meta"], sort_keys=True).encode("utf-8")
        accepts: bytes = entry["accepts"]
        refs = io.BytesIO()
        rows: Mapping[int, Sequence[int]] = entry["rows"]
        for state in sorted(rows):
            key = tuple(rows[state])
            index = pool.get(key)
            if index is None:
                index = pool[key] = len(pool_rows)
                pool_rows.append(key)
            refs.write(struct.pack("<II", state, index))
            total_rows += 1
        body = io.BytesIO()
        fingerprint: bytes = entry["fingerprint"]
        if len(fingerprint) != 32:
            raise ValueError("fingerprints must be 32-byte SHA-256 digests")
        body.write(fingerprint)
        _write_padded(body, meta_bytes)
        _write_padded(body, accepts)
        body.write(struct.pack("<I", len(rows)))
        body.write(refs.getvalue())
        encoded_entries.append(body.getvalue())

    payload = io.BytesIO()
    payload.write(struct.pack("<I", len(pool_rows)))
    for key in pool_rows:
        payload.write(struct.pack("<I", len(key)))
        payload.write(array("i", key).tobytes())
    payload.write(struct.pack("<I", len(encoded_entries)))
    for body in encoded_entries:
        payload.write(body)
    stats = {
        "patterns": len(encoded_entries),
        "rows": total_rows,
        "pool_rows": len(pool_rows),
    }
    return payload.getvalue(), stats


def _encode_tables(entries: Sequence[dict]) -> tuple[bytes, dict]:
    """The ``SFTB`` payload: star-free decision/acceptance tables."""
    payload = io.BytesIO()
    payload.write(struct.pack("<I", len(entries)))
    total_decisions = 0
    for entry in entries:
        fingerprint: bytes = entry["fingerprint"]
        if len(fingerprint) != 32:
            raise ValueError("fingerprints must be 32-byte SHA-256 digests")
        payload.write(fingerprint)
        _write_padded(payload, json.dumps(entry["meta"], sort_keys=True).encode("utf-8"))
        accepts: Mapping[int, int] = entry["accepts"]
        payload.write(struct.pack("<I", len(accepts)))
        for pre in sorted(accepts):
            payload.write(struct.pack("<II", pre, accepts[pre]))
        decisions: Mapping[tuple[int, int], int] = entry["decisions"]
        payload.write(struct.pack("<I", len(decisions)))
        for entry_pre, scanned_pre in sorted(decisions):
            payload.write(
                struct.pack("<III", entry_pre, scanned_pre, decisions[(entry_pre, scanned_pre)])
            )
        total_decisions += len(decisions)
    return payload.getvalue(), {"star_free_patterns": len(entries), "decisions": total_decisions}


def _encode_memos(entries: Sequence[dict]) -> tuple[bytes, dict]:
    """The ``MEMO`` payload: validator acceptance memos (JSON bodies)."""
    payload = io.BytesIO()
    payload.write(struct.pack("<I", len(entries)))
    total = 0
    for entry in entries:
        fingerprint: bytes = entry["fingerprint"]
        if len(fingerprint) != 32:
            raise ValueError("fingerprints must be 32-byte SHA-256 digests")
        payload.write(fingerprint)
        _write_padded(payload, json.dumps(entry["meta"], sort_keys=True).encode("utf-8"))
        body = [[list(word), bool(verdict)] for word, verdict in entry["entries"]]
        _write_padded(payload, json.dumps(body, sort_keys=True).encode("utf-8"))
        total += len(body)
    return payload.getvalue(), {"memo_patterns": len(entries), "memo_entries": total}


def _atomic_write(path: str | os.PathLike, blob: bytes) -> None:
    """Write *blob* to *path* atomically (temp file + ``os.replace``)."""
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    fd, temp_path = tempfile.mkstemp(prefix=".snapshot-", dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def write(
    path: str | os.PathLike,
    entries: Iterable[dict],
    star_free: Iterable[dict] = (),
    memos: Iterable[dict] = (),
) -> dict:
    """Atomically write a format-v2 snapshot file; returns a stats dict.

    *entries* is the dense-row section (``{"fingerprint": bytes, "meta":
    dict, "accepts": bytes, "rows": {state: int-sequence}}`` — the shape
    :meth:`CompiledRuntime.export_rows` plus the API layer's meta builder
    produce).  *star_free* entries carry ``accepts``/``decisions`` table
    dicts (:meth:`StarFreeMultiMatcher.export_tables`), *memos* carry
    ``entries`` pairs (:meth:`AcceptanceMemo.export`).  Empty optional
    sections are omitted from the file.  The file appears atomically via
    ``os.replace``, so a reader can never observe a half-written
    snapshot — at worst a stale complete one.
    """
    rows_payload, stats = _encode_rows(list(entries))
    sections: list[tuple[bytes, bytes]] = [(SECTION_ROWS, rows_payload)]
    star_free = list(star_free)
    if star_free:
        payload, table_stats = _encode_tables(star_free)
        sections.append((SECTION_TABLES, payload))
        stats.update(table_stats)
    else:
        stats.update({"star_free_patterns": 0, "decisions": 0})
    memos = list(memos)
    if memos:
        payload, memo_stats = _encode_memos(memos)
        sections.append((SECTION_MEMOS, payload))
        stats.update(memo_stats)
    else:
        stats.update({"memo_patterns": 0, "memo_entries": 0})

    directory = io.BytesIO()
    offset = _HEADER_V2.size + len(sections) * _SECTION.size
    for tag, payload in sections:
        directory.write(
            _SECTION.pack(tag, zlib.crc32(payload) & 0xFFFFFFFF, offset, len(payload))
        )
        offset += len(payload)
    directory_bytes = directory.getvalue()
    header = _HEADER_V2.pack(
        MAGIC,
        VERSION,
        ITEMSIZE,
        _BYTEORDER_FLAG,
        len(sections),
        zlib.crc32(directory_bytes) & 0xFFFFFFFF,
    )
    _atomic_write(path, header + directory_bytes + b"".join(p for _, p in sections))
    stats["sections"] = [tag.decode("ascii") for tag, _ in sections]
    stats["bytes"] = offset
    return stats


def write_v1(path: str | os.PathLike, entries: Iterable[dict]) -> dict:
    """Write a version-1 (rows-only) snapshot — the pre-v2 on-disk layout.

    Kept so operators can produce files for fleets still running the v1
    reader, and so the compatibility tests can pin down that v1 files
    keep loading (counted as ``format_v1`` in telemetry).
    """
    payload_bytes, stats = _encode_rows(list(entries))
    header = _HEADER_V1.pack(
        MAGIC,
        1,
        ITEMSIZE,
        _BYTEORDER_FLAG,
        stats["patterns"],
        zlib.crc32(payload_bytes) & 0xFFFFFFFF,
        len(payload_bytes),
    )
    _atomic_write(path, header + payload_bytes)
    stats["bytes"] = len(header) + len(payload_bytes)
    stats["sections"] = ["ROWS"]
    return stats


# ---------------------------------------------------------------------------
# section parsers
# ---------------------------------------------------------------------------


def _parse_rows(snapshot: Snapshot, data: memoryview, expected_count: int | None) -> None:
    """Parse a rows payload into *snapshot* (pool spans index into *data*).

    Parses into locals and publishes onto *snapshot* only after the whole
    section validated — a failure mid-parse must reject the section as a
    unit, never leave a half-adopted prefix behind (the per-section
    degradation contract).
    """
    reader = _Reader(data)
    pool_count = reader.u32()
    pool_spans: list[tuple[int, int]] = []
    for _ in range(pool_count):
        ints = reader.u32()
        if ints > len(data) // ITEMSIZE:
            raise SnapshotError("malformed", "pool row longer than the payload")
        start = reader.offset
        reader.take(ints * ITEMSIZE)
        pool_spans.append((start, ints * ITEMSIZE))
    entry_count = reader.u32()
    if expected_count is not None and entry_count != expected_count:
        raise SnapshotError("malformed", "entry count disagrees with the header")
    entries: list[SnapshotEntry] = []
    for _ in range(entry_count):
        fingerprint = bytes(reader.take(32))
        meta = _read_meta(reader)
        accepts = bytes(reader.take(reader.u32()))
        reader.pad4()
        row_count = reader.u32()
        refs: list[tuple[int, int]] = []
        for _ in range(row_count):
            state = reader.u32()
            index = reader.u32()
            if index >= pool_count:
                raise SnapshotError("malformed", f"row reference {index} outside the pool")
            refs.append((state, index))
        entries.append(
            SnapshotEntry(
                fingerprint=fingerprint,
                meta=meta,
                accepts=accepts,
                _row_refs=tuple(refs),
                _snapshot=snapshot,
            )
        )
    snapshot._view = data
    snapshot._pool_spans = pool_spans
    snapshot.entries = entries


def _read_meta(reader: _Reader) -> dict:
    meta_bytes = bytes(reader.take(reader.u32()))
    reader.pad4()
    try:
        meta = json.loads(meta_bytes)
    except ValueError as error:
        raise SnapshotError("malformed", f"snapshot meta is not JSON: {error}") from None
    if not isinstance(meta, dict):
        raise SnapshotError("malformed", "snapshot meta must be a JSON object")
    return meta


def _parse_tables(data: memoryview) -> list[StarFreeEntry]:
    reader = _Reader(data)
    entries: list[StarFreeEntry] = []
    for _ in range(reader.u32()):
        fingerprint = bytes(reader.take(32))
        meta = _read_meta(reader)
        accepts: dict[int, int] = {}
        for _ in range(reader.u32()):
            pre = reader.u32()
            accepts[pre] = reader.u32()
        decisions: dict[tuple[int, int], int] = {}
        for _ in range(reader.u32()):
            entry_pre = reader.u32()
            scanned_pre = reader.u32()
            decisions[(entry_pre, scanned_pre)] = reader.u32()
        entries.append(
            StarFreeEntry(
                fingerprint=fingerprint, meta=meta, accepts=accepts, decisions=decisions
            )
        )
    return entries


def _parse_memos(data: memoryview) -> list[MemoEntry]:
    reader = _Reader(data)
    entries: list[MemoEntry] = []
    for _ in range(reader.u32()):
        fingerprint = bytes(reader.take(32))
        meta = _read_meta(reader)
        body_bytes = bytes(reader.take(reader.u32()))
        reader.pad4()
        try:
            body = json.loads(body_bytes)
        except ValueError as error:
            raise SnapshotError("malformed", f"memo body is not JSON: {error}") from None
        if not isinstance(body, list):
            raise SnapshotError("malformed", "memo body must be a JSON list")
        entries.append(MemoEntry(fingerprint=fingerprint, meta=meta, entries=tuple(body)))
    return entries


# ---------------------------------------------------------------------------
# loading
# ---------------------------------------------------------------------------


def _open_mapped(path: str) -> mmap.mmap:
    try:
        handle = open(path, "rb")
    except OSError as error:
        raise SnapshotError("missing", f"cannot open snapshot {path!r}: {error}") from None
    with handle:
        try:
            return mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError) as error:  # empty file or mmap failure
            raise SnapshotError("truncated", f"cannot map snapshot {path!r}: {error}") from None


def load(path: str | os.PathLike) -> Snapshot:
    """mmap and validate a snapshot file; raises :class:`SnapshotError`.

    Validation order matters for the corruption tests: size/magic/version
    and the machine-compatibility fields are checked before any checksum,
    and checksums before structural parsing, so every class of corruption
    maps to one stable ``reason`` tag.  File-level failures (truncation,
    bad magic/version, header corruption) raise; in a v2 file a
    *section* whose own CRC or structure fails is recorded in
    :attr:`Snapshot.section_errors` while the remaining sections load —
    per-section degradation is the designed behaviour.
    """
    path = os.fspath(path)
    mm = _open_mapped(path)
    if len(mm) < 12:  # magic + version + machine-compat bytes
        raise SnapshotError("truncated", f"{path!r} is shorter than the snapshot header")
    if bytes(mm[:8]) != MAGIC:
        raise SnapshotError("magic", f"{path!r} is not a repro snapshot")
    (version,) = struct.unpack_from("<H", mm, 8)
    if version == 1:
        return _load_v1(path, mm)
    if version != VERSION:
        raise SnapshotError("version", f"snapshot version {version} (expected <= {VERSION})")
    return _load_v2(path, mm)


def _check_machine(itemsize: int, byteorder: int) -> None:
    if itemsize != ITEMSIZE:
        raise SnapshotError("itemsize", f"row itemsize {itemsize} (expected {ITEMSIZE})")
    if byteorder != _BYTEORDER_FLAG:
        raise SnapshotError("byte-order", "snapshot was written on a different-endian machine")


def _load_v1(path: str, mm: mmap.mmap) -> Snapshot:
    if len(mm) < _HEADER_V1.size:
        raise SnapshotError("truncated", f"{path!r} is shorter than the v1 snapshot header")
    _magic, _version, itemsize, byteorder, count, checksum, payload_length = _HEADER_V1.unpack_from(
        mm, 0
    )
    _check_machine(itemsize, byteorder)
    if _HEADER_V1.size + payload_length != len(mm):
        raise SnapshotError(
            "truncated",
            f"payload length {payload_length} does not match file size {len(mm)}",
        )
    view = memoryview(mm)
    payload = view[_HEADER_V1.size :]
    if zlib.crc32(payload) & 0xFFFFFFFF != checksum:
        raise SnapshotError("checksum", f"CRC mismatch in {path!r}")
    snapshot = Snapshot(path=path, format_version=1)
    snapshot._mm = mm
    _parse_rows(snapshot, payload, expected_count=count)
    snapshot.sections.append("ROWS")
    return snapshot


def _load_v2(path: str, mm: mmap.mmap) -> Snapshot:
    if len(mm) < _HEADER_V2.size:
        raise SnapshotError("truncated", f"{path!r} is shorter than the v2 snapshot header")
    _magic, _version, itemsize, byteorder, section_count, directory_crc = _HEADER_V2.unpack_from(
        mm, 0
    )
    _check_machine(itemsize, byteorder)
    if section_count > MAX_SECTIONS:
        raise SnapshotError("malformed", f"implausible section count {section_count}")
    directory_end = _HEADER_V2.size + section_count * _SECTION.size
    if len(mm) < directory_end:
        raise SnapshotError("truncated", f"{path!r} ends inside the section directory")
    view = memoryview(mm)
    directory_bytes = view[_HEADER_V2.size : directory_end]
    if zlib.crc32(directory_bytes) & 0xFFFFFFFF != directory_crc:
        raise SnapshotError("checksum", f"directory CRC mismatch in {path!r}")
    sections: list[tuple[bytes, int, int, int]] = []
    total = 0
    for index in range(section_count):
        tag, crc, offset, length = _SECTION.unpack_from(directory_bytes, index * _SECTION.size)
        if offset < directory_end or offset + length > len(mm):
            raise SnapshotError("truncated", f"section {tag!r} extends past the file")
        sections.append((tag, crc, offset, length))
        total += length
    if directory_end + total != len(mm):
        raise SnapshotError(
            "truncated", f"sections cover {total} bytes but the file has {len(mm) - directory_end}"
        )

    snapshot = Snapshot(path=path, format_version=VERSION)
    snapshot._mm = mm
    seen: set[bytes] = set()
    for tag, crc, offset, length in sections:
        data = view[offset : offset + length]
        try:
            if tag in seen:
                raise SnapshotError("malformed", f"duplicate section {tag!r}")
            seen.add(tag)
            if zlib.crc32(data) & 0xFFFFFFFF != crc:
                raise SnapshotError("checksum", f"CRC mismatch in section {tag!r}")
            if tag == SECTION_ROWS:
                _parse_rows(snapshot, data, expected_count=None)
            elif tag == SECTION_TABLES:
                snapshot.star_free = _parse_tables(data)
            elif tag == SECTION_MEMOS:
                snapshot.memos = _parse_memos(data)
            else:
                # Unknown tags are skipped: a newer writer may add
                # sections this reader does not understand yet.
                continue
            snapshot.sections.append(tag.decode("ascii"))
        except SnapshotError as error:
            snapshot.section_errors.append((tag.decode("ascii", "replace"), error))
    return snapshot


def describe_file(path: str | os.PathLike) -> dict:
    """Header/directory summary of a snapshot file (no payload parsing).

    Returns ``{"format": version, "bytes": size, "sections": [{"tag",
    "offset", "length"}, ...]}``.  Used by the section-targeting
    corruption tests and handy for operators inspecting a live
    snapshot; raises :class:`SnapshotError` on files too damaged to
    carry a directory.
    """
    path = os.fspath(path)
    with open(path, "rb") as handle:
        # Only the header and directory are needed — never the payload,
        # which for a fleet snapshot can run to hundreds of megabytes.
        size = os.fstat(handle.fileno()).st_size
        head = handle.read(max(_HEADER_V1.size, _HEADER_V2.size))
        if len(head) < 12 or head[:8] != MAGIC:
            raise SnapshotError("magic", f"{path!r} is not a repro snapshot")
        (version,) = struct.unpack_from("<H", head, 8)
        if version == 1:
            if len(head) < _HEADER_V1.size:
                raise SnapshotError("truncated", f"{path!r} is shorter than the v1 header")
            payload_length = _HEADER_V1.unpack_from(head, 0)[6]
            return {
                "format": 1,
                "bytes": size,
                "sections": [
                    {"tag": "ROWS", "offset": _HEADER_V1.size, "length": payload_length}
                ],
            }
        if len(head) < _HEADER_V2.size:
            raise SnapshotError("truncated", f"{path!r} is shorter than the v2 header")
        section_count = _HEADER_V2.unpack_from(head, 0)[4]
        handle.seek(_HEADER_V2.size)
        directory = handle.read(section_count * _SECTION.size)
        if len(directory) < section_count * _SECTION.size:
            raise SnapshotError("truncated", f"{path!r} ends inside the section directory")
    sections = []
    for index in range(section_count):
        tag, _crc, offset, length = _SECTION.unpack_from(directory, index * _SECTION.size)
        sections.append(
            {"tag": tag.decode("ascii", "replace"), "offset": offset, "length": length}
        )
    return {"format": version, "bytes": size, "sections": sections}
