"""A lazily compiled integer runtime over any Section-4 matcher.

The paper's matchers answer *"which a-labelled position follows p?"* with
clever O(1)-ish structure queries, but each query is still a handful of
Python-level calls (LCA probe, ancestor tests, candidate scans).  For a
*deterministic* expression the answer is a pure function of the pair
``(p, a)`` — there is at most one a-labelled follower of ``p`` — so the
whole matcher can be lowered on the fly into flat integer transition rows:
the lazy-DFA idiom.  :class:`CompiledRuntime` does exactly that:

* **states** are position indices (``TreeNode.position_index``), dense
  integers assigned by the parse tree;
* **symbols** are interned through the tree's :class:`~repro.regex.alphabet.Alphabet`
  into dense integer codes, and words are encoded once per call/batch
  instead of being re-split per symbol;
* **transitions** ``(state, symbol_code) → state`` are memoized per state
  in a dict row that is created on first visit and filled on first lookup
  by delegating to the wrapped matcher's transition simulation.  Misses
  (no follower) are memoized too, as :data:`DEAD`.

Memory therefore stays proportional to the transitions actually
exercised — never the O(|e|·|Σ|) Glushkov table — while steady-state
matching is two array/dict probes per symbol.  Because the expression is
deterministic, memoization can never change a verdict: the runtime and the
wrapped matcher agree on every word by construction (the property tests
check this against every registered strategy).

The runtime preserves the streaming contract of the direct path:
:meth:`CompiledRuntime.start` returns a :class:`CompiledRun` with the same
``feed`` / ``feed_all`` / ``is_accepting`` / ``consumed`` surface as
:class:`~repro.matching.base.MatchRun`, so the XML streaming checker and
``Pattern.stream`` work unchanged on top of it.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..regex.alphabet import UNKNOWN_CODE
from ..regex.parse_tree import TreeNode
from .base import DeterministicMatcher

#: Memoized "no transition" marker.  Any negative value works (valid states
#: are non-negative position indices); sharing the encoder's UNKNOWN_CODE
#: keeps the hot loop to a single ``< 0`` test for both kinds of rejection.
DEAD = UNKNOWN_CODE


class CompiledRuntime:
    """Lazy-DFA execution of a wrapped :class:`DeterministicMatcher`.

    The wrapped matcher is consulted only on the *first* lookup of each
    ``(state, symbol)`` pair; after that the transition is a dict probe.
    ``stats()`` exposes how much of the machine has been materialized,
    which the cache-reuse tests and the benchmarks inspect.
    """

    __slots__ = (
        "matcher",
        "tree",
        "alphabet",
        "_codes",
        "_symbols",
        "_positions",
        "_rows",
        "_accepts",
        "_start_state",
        "misses",
    )

    def __init__(self, matcher: DeterministicMatcher):
        self.matcher = matcher
        self.tree = matcher.tree
        self.alphabet = self.tree.alphabet
        self._codes: dict[str, int] = self.alphabet.codes
        self._symbols: list[str] = self.alphabet.as_list()
        self._positions: list[TreeNode] = self.tree.positions
        state_count = len(self._positions)
        #: per-state transition rows, created lazily (None until first visit)
        self._rows: list[dict[int, int] | None] = [None] * state_count
        #: per-state acceptance verdict: -1 unknown, 0 reject, 1 accept
        self._accepts: list[int] = [-1] * state_count
        self._start_state: int = self.tree.start.position_index
        #: number of delegations to the wrapped matcher so far (cache misses)
        self.misses = 0

    # -- encoding ----------------------------------------------------------------
    def encode(self, word: Iterable[str]) -> list[int]:
        """Intern *word* into symbol codes (unknown symbols become negative)."""
        return self.alphabet.encode(word)

    # -- the lazy transition function ---------------------------------------------
    def _miss(self, state: int, code: int) -> int:
        """First lookup of ``(state, code)``: delegate to the wrapped matcher."""
        self.misses += 1
        following = self.matcher.next_position(self._positions[state], self._symbols[code])
        return DEAD if following is None else following.position_index

    def step(self, state: int, code: int) -> int:
        """One memoized transition; returns :data:`DEAD` (< 0) on rejection."""
        if code < 0:
            return DEAD
        row = self._rows[state]
        if row is None:
            row = self._rows[state] = {}
        target = row.get(code)
        if target is None:
            target = row[code] = self._miss(state, code)
        return target

    def state_accepts(self, state: int) -> bool:
        """Memoized ``$ ∈ Follow(state)`` — may the word end in this state?"""
        verdict = self._accepts[state]
        if verdict < 0:
            accepted = self.matcher.follow.accepts_at(self._positions[state])
            verdict = self._accepts[state] = 1 if accepted else 0
        return verdict == 1

    # -- whole-word drivers ----------------------------------------------------------
    def accepts_encoded(self, codes: Iterable[int]) -> bool:
        """Membership test over an already-encoded word (the hot loop).

        Everything the loop touches is hoisted into locals; per symbol the
        steady state is one list index plus one dict probe.
        """
        state = self._start_state
        rows = self._rows
        for code in codes:
            if code < 0:
                return False
            row = rows[state]
            if row is None:
                row = rows[state] = {}
            target = row.get(code)
            if target is None:
                target = row[code] = self._miss(state, code)
            if target < 0:
                return False
            state = target
        return self.state_accepts(state)

    def accepts(self, word: Iterable[str]) -> bool:
        """Membership test over a word of symbols (encodes, then runs)."""
        return self.accepts_encoded(self.encode(word))

    def match_many(self, words: Iterable[Sequence[str]]) -> list[bool]:
        """Batch membership: encode each word once, share all memoized rows."""
        accepts_encoded = self.accepts_encoded
        encode = self.encode
        return [accepts_encoded(encode(word)) for word in words]

    # -- streaming ---------------------------------------------------------------------
    def start(self) -> "CompiledRun":
        """Begin a streaming run (mirrors :meth:`DeterministicMatcher.start`)."""
        return CompiledRun(self)

    # -- introspection -------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """How much of the lazy DFA has been materialized so far."""
        rows = [row for row in self._rows if row is not None]
        return {
            "states_visited": len(rows),
            "transitions_memoized": sum(len(row) for row in rows),
            "misses": self.misses,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats()
        return (
            f"CompiledRuntime({self.matcher.name}, "
            f"states={stats['states_visited']}/{len(self._positions)}, "
            f"transitions={stats['transitions_memoized']})"
        )


class CompiledRun:
    """A streaming run over the compiled runtime.

    Drop-in replacement for :class:`~repro.matching.base.MatchRun`: ``feed``
    returns False once the run is dead and stays dead, ``is_accepting`` can
    be consulted at any point, ``consumed`` counts accepted symbols.  The
    ``position`` property maps the integer state back to its tree node so
    diagnostic code written against the direct path keeps working.
    """

    __slots__ = ("runtime", "state", "alive", "consumed")

    def __init__(self, runtime: CompiledRuntime):
        self.runtime = runtime
        self.state: int = runtime._start_state
        self.alive = True
        self.consumed = 0

    @property
    def position(self) -> TreeNode:
        """The parse-tree position corresponding to the current state."""
        return self.runtime._positions[self.state]

    def feed(self, symbol: str) -> bool:
        """Consume one symbol; return True while the run is still alive."""
        if not self.alive:
            return False
        runtime = self.runtime
        code = runtime._codes.get(symbol, UNKNOWN_CODE)
        target = runtime.step(self.state, code)
        if target < 0:
            self.alive = False
            return False
        self.state = target
        self.consumed += 1
        return True

    def feed_all(self, word: Iterable[str]) -> bool:
        """Consume a whole word with the hoisted-locals loop."""
        if not self.alive:
            return False
        runtime = self.runtime
        step = runtime.step
        get = runtime._codes.get
        state = self.state
        consumed = self.consumed
        for symbol in word:
            target = step(state, get(symbol, UNKNOWN_CODE))
            if target < 0:
                self.state = state
                self.consumed = consumed
                self.alive = False
                return False
            state = target
            consumed += 1
        self.state = state
        self.consumed = consumed
        return True

    def is_accepting(self) -> bool:
        """True when the symbols consumed so far form a member of the language."""
        return self.alive and self.runtime.state_accepts(self.state)


def compile_runtime(matcher: DeterministicMatcher) -> CompiledRuntime:
    """Build (or reuse) the compiled runtime attached to *matcher*.

    The runtime is cached on the matcher so repeated calls — e.g. one per
    validated element of a large document — share every memoized row.
    """
    runtime = getattr(matcher, "_compiled_runtime", None)
    if runtime is None:
        runtime = CompiledRuntime(matcher)
        matcher._compiled_runtime = runtime
    return runtime
