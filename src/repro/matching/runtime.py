"""A lazily compiled integer runtime over any Section-4 matcher.

The paper's matchers answer *"which a-labelled position follows p?"* with
clever O(1)-ish structure queries, but each query is still a handful of
Python-level calls (LCA probe, ancestor tests, candidate scans).  For a
*deterministic* expression the answer is a pure function of the pair
``(p, a)`` — there is at most one a-labelled follower of ``p`` — so the
whole matcher can be lowered on the fly into flat integer transition rows:
the lazy-DFA idiom.  :class:`CompiledRuntime` does exactly that:

* **states** are position indices (``TreeNode.position_index``), dense
  integers assigned by the parse tree;
* **symbols** are interned through the tree's :class:`~repro.regex.alphabet.Alphabet`
  into dense integer codes, and words are encoded once per call/batch
  instead of being re-split per symbol;
* **transitions** ``(state, symbol_code) → state`` are memoized per state
  in a dict row that is created on first visit and filled on first lookup
  by delegating to the wrapped matcher's transition simulation.  Misses
  (no follower) are memoized too, as :data:`DEAD`;
* **hot rows densify**: once a state's dict row has collected
  transitions for a threshold fraction of the alphabet (see
  :func:`densify_threshold`), the remaining entries are completed eagerly
  and the whole row is promoted to an ``array('i')``-backed *dense row* —
  steady-state stepping through a hot state is then a C-level array index
  instead of a dict probe;
* **dense rows are shared**: completed rows are interned in a
  module-level registry keyed by their contents, so structurally equal
  sub-expressions — within one runtime or across runtimes — end up
  pointing at the *same* array object (pure memory dedup; the contents,
  being equal, behave identically wherever they are consulted).

Memory therefore stays proportional to the transitions actually
exercised — never the O(|e|·|Σ|) Glushkov table — while steady-state
matching is two array/dict probes per symbol.  Because the expression is
deterministic, memoization can never change a verdict: the runtime and the
wrapped matcher agree on every word by construction (the property tests
check this against every registered strategy).

**Concurrency contract** (the ``repro.service`` thread pool relies on it):
warm reads are lock-free — stepping through an already-memoized transition
touches only a list index plus a dict/array probe, with no lock in the
path — while every *write* (first-time delegation to the wrapped matcher,
row densification, acceptance memoization) happens under a per-runtime
mutex with a double-check after acquisition.  Rows are only ever published
in valid states: a dict row grows monotonically, and densification swaps
the complete array in with one atomic list-slot store, so a reader racing
a writer either sees the old (still correct) row or the new one.  Since
the expression is deterministic, two threads racing to fill the same
``(state, symbol)`` pair would compute the same target anyway — the lock
exists to keep the *wrapped matcher's* lazy structures single-threaded,
not to protect the verdict.  The shared dense-row registry has its own
module-level lock.

>>> from repro.matching import build_matcher
>>> from repro.regex.parse_tree import build_parse_tree
>>> runtime = CompiledRuntime(build_matcher(build_parse_tree("(ab)*"), verify=False))
>>> runtime.accepts("abab")
True
>>> runtime.accepts("aba")
False
>>> sorted(runtime.stats())  # doctest: +NORMALIZE_WHITESPACE
['adopted_rows', 'dense_rows', 'kernel_programs', 'misses', 'shared_rows',
 'states_visited', 'transitions_memoized']

The runtime preserves the streaming contract of the direct path:
:meth:`CompiledRuntime.start` returns a :class:`CompiledRun` with the same
``feed`` / ``feed_all`` / ``is_accepting`` / ``consumed`` surface as
:class:`~repro.matching.base.MatchRun`, so the XML streaming checker and
``Pattern.stream`` work unchanged on top of it.
"""

from __future__ import annotations

import threading
import weakref
from array import array
from typing import Callable, Iterable, Mapping, Sequence

from ..regex.alphabet import UNKNOWN_CODE
from ..regex.parse_tree import ParseTree, TreeNode
from .base import DeterministicMatcher
from .snapshot import SnapshotError

#: Memoized "no transition" marker.  Any negative value works (valid states
#: are non-negative position indices); sharing the encoder's UNKNOWN_CODE
#: keeps the hot loop to a single ``< 0`` test for both kinds of rejection.
DEAD = UNKNOWN_CODE

#: A dict row densifies only after collecting at least this many entries …
DENSIFY_MIN = 4

#: … and at least this fraction of the alphabet (numerator/denominator).
#: Half the alphabet means a dense row at most doubles the row's memory
#: while removing the per-symbol dict probe for the state entirely.
DENSIFY_LOAD = (1, 2)


def densify_threshold(width: int) -> int:
    """Entry count at which a dict row of alphabet *width* turns dense.

    Small alphabets (the common XML case: a handful of element names)
    densify only once fully exercised; larger ones at half coverage but
    never before :data:`DENSIFY_MIN` entries.

    >>> [densify_threshold(width) for width in (1, 2, 4, 8, 20)]
    [1, 2, 4, 4, 10]
    """
    num, den = DENSIFY_LOAD
    return min(width, max(DENSIFY_MIN, (width * num + den - 1) // den))


#: Interning registry for completed dense rows, keyed by row contents.
#: Structurally equal sub-expressions produce identical rows; interning
#: makes every consumer point at one shared array object.  Contents are
#: plain target integers, so sharing across runtimes (each interpreting
#: targets against its own position list) is pure memory dedup and can
#: never change a verdict.  Values are held *weakly*: the runtimes using
#: a row keep it alive, and once the last one is gone (e.g. its pattern
#: was evicted from the compile cache) the entry drops out, so a churning
#: stream of distinct patterns cannot grow the registry without bound.
_SHARED_ROWS: "weakref.WeakValueDictionary[tuple[int, ...], array[int]]" = (
    weakref.WeakValueDictionary()
)

#: Guards the registry: densifications can run concurrently on different
#: runtimes (each holding only its own per-runtime lock), and a WeakValue
#: dictionary additionally mutates itself from garbage-collection
#: callbacks, so every get/insert/clear goes through this mutex.
_ROWS_LOCK = threading.Lock()

#: Guards first-time runtime attachment in :func:`compile_runtime` so two
#: threads racing on a cold matcher share one runtime instead of each
#: memoizing into a private copy.
_ATTACH_LOCK = threading.Lock()


def shared_row_count() -> int:
    """Number of distinct dense rows currently interned (telemetry)."""
    with _ROWS_LOCK:
        return len(_SHARED_ROWS)


def aggregate_stats(named_runtimes: Iterable[tuple[str, "CompiledRuntime"]]) -> dict[str, dict]:
    """Fold per-runtime :meth:`CompiledRuntime.stats` into telemetry.

    Shared by ``DTDValidator.stats`` and ``XSDSchema.stats``: returns
    ``{"elements": {name: stats}, "totals": summed-per-key}`` so a new
    counter added to :meth:`CompiledRuntime.stats` shows up in every
    surface at once.  Structurally equal content models share one runtime
    through the compile cache; each such runtime is listed under every
    name using it but counted into ``totals`` only once, so the totals
    reflect real materialization, not the sharing factor.
    """
    per_element: dict[str, dict[str, int]] = {}
    totals: dict[str, int] = {}
    seen: set[int] = set()
    for name, runtime in named_runtimes:
        stats = runtime.stats()
        per_element[name] = stats
        if id(runtime) in seen:
            continue
        seen.add(id(runtime))
        for key, value in stats.items():
            totals[key] = totals.get(key, 0) + value
    return {"elements": per_element, "totals": totals}


def clear_shared_rows() -> None:
    """Drop the dense-row interning registry (``repro.purge`` calls this).

    Existing runtimes keep the array objects they already reference;
    clearing only stops future densifications from aliasing them.  Safe
    against in-flight matches: a match replaying a dense row holds a
    direct reference to the array, never the registry entry.
    """
    with _ROWS_LOCK:
        _SHARED_ROWS.clear()


class CompiledRuntime:
    """Lazy-DFA execution of a wrapped :class:`DeterministicMatcher`.

    The wrapped matcher is consulted only on the *first* lookup of each
    ``(state, symbol)`` pair; after that the transition is a dict probe —
    or, once the state's row has densified (see :func:`densify_threshold`),
    a C-level array index.  ``stats()`` exposes how much of the machine has
    been materialized, which the cache-reuse tests, the telemetry surfaces
    (``Pattern.stats``, ``XSDSchema.stats``) and the benchmarks
    inspect.
    """

    __slots__ = (
        "_matcher_obj",
        "_matcher_factory",
        "tree",
        "alphabet",
        "_codes",
        "_symbols",
        "_positions",
        "_rows",
        "_accepts",
        "_start_state",
        "_width",
        "_densify_at",
        "_lock",
        "misses",
        "row_dedups",
        "_adopted_rows",
        "_generation",
        "_kernel_programs",
        "kernel_programs_built",
    )

    def __init__(
        self,
        matcher: DeterministicMatcher | None = None,
        *,
        tree: ParseTree | None = None,
        matcher_factory: Callable[[], DeterministicMatcher] | None = None,
    ):
        if matcher is not None:
            tree = matcher.tree
        elif tree is None or matcher_factory is None:
            raise TypeError("CompiledRuntime needs a matcher, or a tree plus a matcher_factory")
        self._matcher_obj = matcher
        self._matcher_factory = matcher_factory
        self.tree = tree
        self.alphabet = self.tree.alphabet
        self._codes: dict[str, int] = self.alphabet.codes
        self._symbols: list[str] = self.alphabet.as_list()
        self._positions: list[TreeNode] = self.tree.positions
        state_count = len(self._positions)
        #: per-state transition rows: None until first visit, then a dict,
        #: then (past the densify threshold) a completed array('i') row
        self._rows: list[dict[int, int] | "array[int]" | None] = [None] * state_count
        #: per-state acceptance verdict: -1 unknown, 0 reject, 1 accept
        self._accepts: list[int] = [-1] * state_count
        self._start_state: int = self.tree.start.position_index
        #: alphabet width; dense rows have exactly this many entries
        self._width: int = len(self.alphabet)
        self._densify_at: int = densify_threshold(self._width)
        #: single writer lock: first-time transitions, densification and
        #: acceptance memoization serialize here (warm reads never do)
        self._lock = threading.Lock()
        #: number of delegations to the wrapped matcher so far (cache misses)
        self.misses = 0
        #: densified rows that aliased an already-interned equal row
        self.row_dedups = 0
        #: rows installed from a persisted snapshot (mmap-backed views)
        self._adopted_rows = 0
        #: bumped on every mutation of rows or acceptance verdicts; kernel
        #: programs are cached against it so a stale flat table is rebuilt
        #: on the next batch call (see :meth:`export_kernel_program`)
        self._generation = 0
        #: per-stride cache of ``(generation, KernelProgram)`` pairs
        self._kernel_programs: dict[int, tuple[int, object]] = {}
        #: kernel programs compiled for this runtime (telemetry)
        self.kernel_programs_built = 0

    @property
    def matcher(self) -> DeterministicMatcher:
        """The wrapped Section-4 matcher, built on first *miss* if deferred.

        Snapshot-preloaded runtimes start without a matcher: as long as
        every transition and acceptance query is answered by adopted
        rows, the (expensive) matcher preprocessing never runs.  The
        first genuine miss invokes the factory — a factory must be
        idempotent under races (``Pattern.matcher`` is: it double-checks
        under the pattern's init lock).
        """
        matcher = self._matcher_obj
        if matcher is None:
            matcher = self._matcher_factory()
            self._matcher_obj = matcher
        return matcher

    # -- encoding ----------------------------------------------------------------
    def encode(self, word: Iterable[str]) -> list[int]:
        """Intern *word* into symbol codes (unknown symbols become negative)."""
        return self.alphabet.encode(word)

    # -- the lazy transition function ---------------------------------------------
    def _miss(self, state: int, code: int) -> int:
        """First lookup of ``(state, code)``: delegate to the wrapped matcher.

        Callers hold :attr:`_lock`; the wrapped matcher may lazily grow its
        own structures (skeleton indexes, candidate tables), so delegation
        is never allowed to race.
        """
        self.misses += 1
        following = self.matcher.next_position(self._positions[state], self._symbols[code])
        return DEAD if following is None else following.position_index

    def _fill(self, state: int, code: int) -> int:
        """Slow path: memoize one transition under the writer lock.

        Double-checks after acquisition — another thread may have filled
        the same ``(state, code)`` pair, or densified the whole row, between
        the reader's lock-free probe and this call.
        """
        with self._lock:
            row = self._rows[state]
            if row is None:
                row = self._rows[state] = {}
            elif type(row) is not dict:  # densified while we waited
                return row[code]
            target = row.get(code)
            if target is None:
                target = row[code] = self._miss(state, code)
                if len(row) >= self._densify_at:
                    self._densify(state, row)
                self._generation += 1
            return target

    def _densify(self, state: int, row: dict[int, int]) -> None:
        """Promote a hot dict row to a completed, interned dense array row.

        Entries the traffic has not exercised yet are filled eagerly (at
        most ``|Σ|`` extra delegations, paid once per hot state), so the
        dense row is total and can be probed with a bare index.  The
        completed row is interned in :data:`_SHARED_ROWS`: structurally
        equal rows collapse to one array object.  Runs under :attr:`_lock`;
        the swap into ``_rows`` is a single atomic list-slot store, and the
        superseded dict row stays valid for any reader still probing it.
        """
        get = row.get
        miss = self._miss
        entries = [get(code) for code in range(self._width)]
        for code, target in enumerate(entries):
            if target is None:
                entries[code] = miss(state, code)
        key = tuple(entries)
        with _ROWS_LOCK:
            dense = _SHARED_ROWS.get(key)
            if dense is None:
                dense = _SHARED_ROWS[key] = array("i", entries)
            else:
                self.row_dedups += 1
        self._rows[state] = dense
        self._generation += 1

    def step(self, state: int, code: int) -> int:
        """One memoized transition; returns :data:`DEAD` (< 0) on rejection."""
        if code < 0:
            return DEAD
        row = self._rows[state]
        if type(row) is dict:
            target = row.get(code)
            if target is None:
                target = self._fill(state, code)
            return target
        if row is None:
            return self._fill(state, code)
        return row[code]

    def state_accepts(self, state: int) -> bool:
        """Memoized ``$ ∈ Follow(state)`` — may the word end in this state?"""
        verdict = self._accepts[state]
        if verdict < 0:
            with self._lock:
                verdict = self._accepts[state]
                if verdict < 0:
                    accepted = self.matcher.follow.accepts_at(self._positions[state])
                    verdict = self._accepts[state] = 1 if accepted else 0
                    self._generation += 1
        return verdict == 1

    # -- whole-word drivers ----------------------------------------------------------
    def accepts_encoded(self, codes: Iterable[int]) -> bool:
        """Membership test over an already-encoded word (the hot loop).

        Everything the loop touches is hoisted into locals; per symbol the
        steady state is one list index plus one dict probe — or a bare
        array index once the state's row has densified.
        """
        state = self._start_state
        rows = self._rows
        for code in codes:
            if code < 0:
                return False
            row = rows[state]
            if type(row) is dict:
                target = row.get(code)
                if target is None:
                    target = self._fill(state, code)
            elif row is None:
                target = self._fill(state, code)
            else:
                target = row[code]
            if target < 0:
                return False
            state = target
        return self.state_accepts(state)

    def accepts(self, word: Iterable[str]) -> bool:
        """Membership test over a word of symbols (encodes, then runs)."""
        return self.accepts_encoded(self.encode(word))

    def match_many(self, words: Iterable[Sequence[str]]) -> list[bool]:
        """Batch membership: encode each word once, share all memoized rows."""
        accepts_encoded = self.accepts_encoded
        encode = self.encode
        return [accepts_encoded(encode(word)) for word in words]

    # -- streaming ---------------------------------------------------------------------
    def start(self, trace: bool = False) -> "CompiledRun":
        """Begin a streaming run (mirrors :meth:`DeterministicMatcher.start`).

        With ``trace=True`` the run is a :class:`TracedRun` recording the
        state sequence it visits — the match witness consumed by
        :mod:`repro.diagnostics`.  Tracing is opt-in per run; the plain
        run type and its feed loops are untouched.
        """
        if trace:
            return TracedRun(self)
        return CompiledRun(self)

    # -- snapshot export / adoption ------------------------------------------------------
    def export_rows(self, complete: bool = True) -> dict:
        """Exportable view of the materialized machine (for snapshots).

        Returns ``{"accepts": bytes, "rows": {state: array('i')},
        "width": int, "positions": int}``.  With *complete* (the default
        for saving) every visited dict row is promoted to a completed
        dense row first and the acceptance verdict of every state is
        resolved — both force the wrapped matcher, which a process warm
        enough to be worth snapshotting has already built.  With
        ``complete=False`` only what is already dense/known is exported.
        Acceptance bytes are 1 (accept), 0 (reject) or 0xFF (unknown).
        """
        with self._lock:
            if complete:
                for state, row in enumerate(self._rows):
                    if type(row) is dict and row:
                        self._densify(state, row)
            rows: dict[int, array] = {}
            for state, row in enumerate(self._rows):
                if row is not None and type(row) is not dict:
                    rows[state] = array("i", row)
            accepts = bytearray(b"\xff" * len(self._positions))
            for state, verdict in enumerate(self._accepts):
                if verdict >= 0:
                    accepts[state] = verdict
            if complete and 0xFF in accepts:
                # Only touch the matcher when some verdict is actually
                # unresolved: re-exporting a snapshot-adopted runtime
                # (complete accepts) must keep its matcher deferred.
                accepts_at = self.matcher.follow.accepts_at
                for state in range(len(self._positions)):
                    if accepts[state] == 0xFF:
                        verdict = 1 if accepts_at(self._positions[state]) else 0
                        self._accepts[state] = verdict
                        accepts[state] = verdict
                        self._generation += 1
        return {
            "accepts": bytes(accepts),
            "rows": rows,
            "width": self._width,
            "positions": len(self._positions),
        }

    def adopt_rows(self, accepts: bytes | None, rows: Mapping[int, Sequence[int]]) -> int:
        """Install snapshot rows into this runtime; returns rows adopted.

        Validation is strict and happens *before* any mutation, so a
        rejected snapshot leaves the runtime exactly as it was (normal
        lazy fill): every state index must be a real position, every row
        exactly alphabet-width, every target :data:`DEAD` or a real
        position, and acceptance bytes must cover every state with
        0/1/0xFF values.  A violation raises
        :class:`~repro.matching.snapshot.SnapshotError` — the API layer
        counts it as ``snapshot_rejected`` and carries on cold.

        Rows are installed as-is (typically mmap-backed memoryviews, so
        forked workers share the pages) but only into states this runtime
        has never visited; locally exercised rows always win.
        """
        position_count = len(self._positions)
        width = self._width
        for state, row in rows.items():
            if not 0 <= state < position_count:
                raise SnapshotError(
                    "row-bounds", f"snapshot row for state {state} outside {position_count} states"
                )
            if len(row) != width:
                raise SnapshotError(
                    "alphabet-width",
                    f"snapshot row has {len(row)} entries for alphabet width {width}",
                )
            # min/max run the scan at C speed; a snapshot-preloaded boot
            # validates every adopted target, so this loop is hot.
            if width and (min(row) < DEAD or max(row) >= position_count):
                raise SnapshotError(
                    "row-bounds", "snapshot transition target out of range"
                )
        if accepts is not None:
            if len(accepts) != position_count:
                raise SnapshotError(
                    "accepts-length",
                    f"snapshot acceptance table covers {len(accepts)} of "
                    f"{position_count} states",
                )
            if not set(accepts) <= {0, 1, 0xFF}:
                bad = sorted(set(accepts) - {0, 1, 0xFF})[0]
                raise SnapshotError("malformed", f"invalid acceptance byte {bad}")
        adopted = 0
        with self._lock:
            for state, row in rows.items():
                if self._rows[state] is None:
                    self._rows[state] = row
                    adopted += 1
            self._adopted_rows += adopted
            if accepts is not None:
                for state, value in enumerate(accepts):
                    if value != 0xFF and self._accepts[state] < 0:
                        self._accepts[state] = value
            self._generation += 1
        return adopted

    # -- kernel export -------------------------------------------------------------------
    def export_kernel_program(self, max_entries: int | None = None, max_stride: int | None = None):
        """The flat batch-scan table over this runtime's current rows.

        Programs (see :mod:`repro.matching.kernel`) are cached per
        requested stride against :attr:`_generation`, which every row
        fill, densification, acceptance resolution and snapshot adoption
        bumps — so a cached program is exactly as warm as the machine,
        and a batch call after new traffic rebuilds it over the larger
        row set.  Building only *reads* rows (missing transitions become
        fallback edges), so exporting never delegates to the wrapped
        matcher: a snapshot-preloaded runtime with adopted rows yields a
        complete kernel program while its matcher stays deferred.

        Returns ``None`` when the machine cannot fit *max_entries* table
        slots (callers then keep the per-word driver).  Two threads
        racing on a cold cache may both build; both programs are correct
        and the last store wins — the cache is an optimization, not a
        correctness gate.
        """
        from .kernel import MAX_STRIDE, TABLE_LIMIT, build_program

        if max_entries is None:
            max_entries = TABLE_LIMIT
        if max_stride is None:
            max_stride = MAX_STRIDE
        generation = self._generation
        cached = self._kernel_programs.get(max_stride)
        if cached is not None and cached[0] == generation:
            return cached[1]
        program = build_program(self, max_entries, max_stride)
        if program is None:
            return None
        if cached is not None and cached[1].stride == program.stride:
            # group encoding depends only on the machine shape, which a
            # generation bump never changes: the rebuilt program inherits
            # the superseded program's memoized word encodings
            program._encode_cache = cached[1]._encode_cache
        program.generation = generation
        self._kernel_programs[max_stride] = (generation, program)
        self.kernel_programs_built += 1
        return program

    def materialized(self) -> int:
        """Single-number gauge of how much state this runtime holds.

        Counts every memoized transition — adopted rows *included*, since
        re-persisting them still costs bytes — plus every resolved
        acceptance verdict.  The snapshot auto-refresh policy
        (:class:`repro.service.prefork.SnapshotRefresher`) compares this
        level across time to decide when the on-disk snapshot is stale.
        """
        total = 0
        for row in self._rows:
            if row is not None:
                total += len(row)
        for verdict in self._accepts:
            if verdict >= 0:
                total += 1
        return total

    # -- introspection -------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """How much of the lazy DFA has been materialized so far.

        ``dense_rows`` counts states promoted to array-backed rows,
        ``shared_rows`` how many of those aliased an already-interned equal
        row instead of allocating a new array, ``adopted_rows`` how many
        came from a persisted snapshot.  Every *locally* memoized
        transition corresponds to exactly one delegation to the wrapped
        matcher — adopted rows were exercised by some earlier process, so
        they are excluded and ``transitions_memoized == misses`` remains
        the invariant the unit tests pin down.  ``kernel_programs`` counts
        flat batch-scan tables compiled from these rows
        (:meth:`export_kernel_program`); kernel scans only read rows, so
        they never perturb the other counters.
        """
        visited = 0
        transitions = 0
        dense_rows = 0
        for row in self._rows:
            if row is None:
                continue
            visited += 1
            transitions += len(row)
            if type(row) is not dict:
                dense_rows += 1
        return {
            "states_visited": visited,
            "transitions_memoized": transitions - self._adopted_rows * self._width,
            "misses": self.misses,
            "dense_rows": dense_rows,
            "shared_rows": self.row_dedups,
            "adopted_rows": self._adopted_rows,
            "kernel_programs": self.kernel_programs_built,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats()
        matcher = self._matcher_obj
        name = matcher.name if matcher is not None else "<deferred>"
        return (
            f"CompiledRuntime({name}, "
            f"states={stats['states_visited']}/{len(self._positions)}, "
            f"transitions={stats['transitions_memoized']})"
        )


class CompiledRun:
    """A streaming run over the compiled runtime.

    Drop-in replacement for :class:`~repro.matching.base.MatchRun`: ``feed``
    returns False once the run is dead and stays dead, ``is_accepting`` can
    be consulted at any point, ``consumed`` counts accepted symbols.  The
    ``position`` property maps the integer state back to its tree node so
    diagnostic code written against the direct path keeps working.
    """

    __slots__ = ("runtime", "state", "alive", "consumed")

    def __init__(self, runtime: CompiledRuntime):
        self.runtime = runtime
        self.state: int = runtime._start_state
        self.alive = True
        self.consumed = 0

    @property
    def position(self) -> TreeNode:
        """The parse-tree position corresponding to the current state."""
        return self.runtime._positions[self.state]

    def feed(self, symbol: str) -> bool:
        """Consume one symbol; return True while the run is still alive."""
        if not self.alive:
            return False
        runtime = self.runtime
        code = runtime._codes.get(symbol, UNKNOWN_CODE)
        target = runtime.step(self.state, code)
        if target < 0:
            self.alive = False
            return False
        self.state = target
        self.consumed += 1
        return True

    def feed_all(self, word: Iterable[str]) -> bool:
        """Consume a whole word with the hoisted-locals loop."""
        if not self.alive:
            return False
        runtime = self.runtime
        step = runtime.step
        get = runtime._codes.get
        state = self.state
        consumed = self.consumed
        for symbol in word:
            target = step(state, get(symbol, UNKNOWN_CODE))
            if target < 0:
                self.state = state
                self.consumed = consumed
                self.alive = False
                return False
            state = target
            consumed += 1
        self.state = state
        self.consumed = consumed
        return True

    def is_accepting(self) -> bool:
        """True when the symbols consumed so far form a member of the language."""
        return self.alive and self.runtime.state_accepts(self.state)


class TracedRun(CompiledRun):
    """A streaming run that records the state trace it visits.

    ``trace[i]`` is the state (position index) after consuming ``i``
    symbols; ``trace[0]`` is the start sentinel.  Determinism makes the
    trace the *unique* parse of the consumed prefix — the match witness.
    The recording costs one list append per symbol, which is why it lives
    in a subclass: ``start()`` without ``trace=True`` never pays it.
    """

    __slots__ = ("trace",)

    def __init__(self, runtime: CompiledRuntime):
        super().__init__(runtime)
        self.trace: list[int] = [self.state]

    def feed(self, symbol: str) -> bool:
        if CompiledRun.feed(self, symbol):
            self.trace.append(self.state)
            return True
        return False

    def feed_all(self, word: Iterable[str]) -> bool:
        if not self.alive:
            return False
        append = self.trace.append
        for symbol in word:
            if not CompiledRun.feed(self, symbol):
                return False
            append(self.state)
        return True


def compile_runtime(matcher: DeterministicMatcher) -> CompiledRuntime:
    """Build (or reuse) the compiled runtime attached to *matcher*.

    The runtime is cached on the matcher so repeated calls — e.g. one per
    validated element of a large document — share every memoized row.
    First-time attachment is serialized so two worker threads hitting a
    cold matcher share one runtime (and its memoized rows) instead of
    each building a private copy.
    """
    runtime = getattr(matcher, "_compiled_runtime", None)
    if runtime is None:
        with _ATTACH_LOCK:
            runtime = getattr(matcher, "_compiled_runtime", None)
            if runtime is None:
                runtime = CompiledRuntime(matcher)
                matcher._compiled_runtime = runtime
    return runtime
