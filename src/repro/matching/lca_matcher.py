"""The lowest-colored-ancestor matcher (Section 4.1, Theorem 4.2).

The linear-time determinism construction colors the parent of every
``pSupFirst`` node with the labels of the positions it announces.  By
Lemma 3.3, the a-labelled follower of a position ``p`` (if any) is one of
``Witness(n,a)``, ``FirstPos(n,a)``, ``Next(n,a)`` where ``n`` is the
*lowest ancestor of p carrying color a* — so transition simulation is one
lowest-colored-ancestor query plus at most three constant-time
``checkIfFollow`` probes.

Lowest colored ancestor queries are answered by
:class:`~repro.structures.colored_ancestor.ColoredAncestorIndex`
(heavy paths + van Emde Boas predecessor search), giving the
``O(|e| + |w| log log |e|)``-style bound of Theorem 4.2 (see DESIGN.md for
the precise query cost of our substitute structure).
"""

from __future__ import annotations

from ..regex.parse_tree import TreeNode
from ..structures.colored_ancestor import ColoredAncestorIndex
from .base import DeterministicMatcher


class LowestColoredAncestorMatcher(DeterministicMatcher):
    """Theorem 4.2: matching arbitrary deterministic expressions."""

    name = "lowest-colored-ancestor"

    def _prepare(self) -> None:
        skeletons = self.checker.skeletons
        self._skeletons = skeletons
        self._ancestors: ColoredAncestorIndex[TreeNode] = ColoredAncestorIndex(
            self.tree.root, self.tree.nodes
        )
        for node, symbol in skeletons.color_assignments():
            self._ancestors.assign_color(node, symbol)

    def next_position(self, position: TreeNode, symbol: str) -> TreeNode | None:
        """Example 4.1's procedure: one ancestor query, three candidate probes."""
        node = self._ancestors.lowest_colored_ancestor(position, symbol)
        if node is None:
            return None
        skeletons = self._skeletons
        follows_maybe = self.follow.follows_maybe

        witness = skeletons.witness(node, symbol)
        if follows_maybe(position, witness):
            return witness
        first_pos = skeletons.first_pos(node, symbol)
        if first_pos is not None and follows_maybe(position, first_pos):
            return first_pos
        next_position = skeletons.next_position(node, symbol)
        if next_position is not None and follows_maybe(position, next_position):
            return next_position
        return None

    # -- instrumentation -----------------------------------------------------------
    def color_assignment_count(self) -> int:
        """Number of (node, color) assignments (the ``C`` of the preprocessing bound)."""
        return self._ancestors.total_assignments
