"""Batch matching kernel: whole corpora over flat tables, no per-symbol Python.

The compiled runtime (:mod:`repro.matching.runtime`) already holds exactly
the memory layout a tight scanner wants — interned ``array('i')`` dense
rows over a frozen alphabet encoding — but its drivers still re-enter the
interpreter once per symbol.  This module lowers those rows one step
further, into a single flat *kernel program* that an entire encoded corpus
runs through in chunks:

**Table layout.**  A program over ``S`` runtime states and alphabet width
``W`` adds two absorbing synthetic states — ``DEAD`` (``S``, every
rejection sink) and ``MISS`` (``S + 1``, "this transition has not been
materialized") — and two synthetic columns: ``W`` (symbols outside the
alphabet, which can never advance any state) and ``W + 1`` (``PAD``, an
identity self-loop used to round words up to the stride).  With
``WP = W + 2`` columns per state the table is conceptually
``(S + 2) × WP``; to remove even the multiply from the inner loop it is
stored *premultiplied*: entry values are ``target_state * span`` where
``span = WP ** stride``, so the whole scan of a word is::

    off = start_offset            # start_state * span
    for g in groups:              # g encodes `stride` symbols in base WP
        off = table[off + g]
    verdict = accepts[off]        # 0 reject, 1 accept, 2 kernel-miss

**Striding.**  Because ``PAD`` is an identity column, tables compose:
``T²[s][c₁·WP + c₂] = T[T[s][c₁]][c₂]`` handles two symbols per Python-level
loop iteration, ``T³`` three.  The builder picks the largest stride whose
composed table stays within :data:`TABLE_LIMIT` entries, and corpora are
group-encoded once to match (``bytes`` when a group fits a byte,
``array('H')``/``array('i')`` otherwise).  Both absorbing states survive
composition, so the loop body has **no branch at all** — dead and
not-yet-materialized paths simply keep striding through their absorbing
rows, and the verdict byte at the final offset says which case happened.

**Repeated-match corpora.**  Encoding dedups the corpus: each distinct
word is scanned once and the verdicts fan back out through an index array.
Real schema corpora re-match the same few child sequences millions of
times (the Li et al. observation the benchmarks model), which a per-word
driver cannot exploit but a corpus-level kernel gets for free.

**Fallback semantics.**  A verdict byte of 2 means the scan crossed a
transition the runtime has not materialized (or ended in a state whose
acceptance is unresolved).  Those words replay through
``CompiledRuntime.accepts_encoded`` — which *fills* the missing rows — so
a corpus converges to the all-kernel path: the next
:meth:`CompiledRuntime.export_kernel_program` sees the bumped generation
counter and rebuilds the program over the now-complete rows.  Kernel scans
never mutate the runtime, so ``transitions_memoized == misses`` (the
invariant the runtime tests pin) is untouched.

**Backends.**  :func:`KernelProgram.scan` runs the loop either in pure
Python (the permanent oracle) or through an optional C helper
(``_kernel.c``, compiled best-effort by ``setup.py`` or
``python -m repro.matching.kernel --build-native``) that walks the same
premultiplied ``int32`` table natively.  ``REPRO_KERNEL`` selects:
``auto`` (native when the shared object is present), ``pure``, or
``native``; a requested-but-missing native backend degrades silently to
pure.  Both backends read identical program/corpus buffers, so they are
interchangeable per call — the property suite diffs their verdict bytes.
"""

from __future__ import annotations

import ctypes
import os
import subprocess
import threading
import warnings
from array import array
from typing import Iterable, Sequence

#: Hard ceiling on flat-table entries (``int32``) per program.  The builder
#: picks the deepest stride whose composed table fits; a machine whose
#: *stride-1* table already exceeds the ceiling gets no program at all
#: (``build_program`` returns ``None``) and batch calls stay on the
#: per-word driver.  2²¹ entries is 8 MiB — far beyond any content model
#: in the Grijzenhout/Li corpora, yet small enough that a burst of
#: distinct patterns cannot blow up a serving process.
TABLE_LIMIT = 1 << 21

#: Deepest stride the builder will compose.  Three symbols per Python-level
#: iteration is where the returns flatten: the composed table grows by a
#: factor of WP per extra symbol while the loop only sheds interpreter
#: overhead that is already down to one index per three symbols.
MAX_STRIDE = 3

#: Batches smaller than this skip the kernel unless a program is already
#: cached: building (or rebuilding) a composed table costs milliseconds,
#: which only a real corpus amortizes.
MIN_BATCH = 8

#: Distinct-word encodings memoized per program before the cache is
#: dropped and restarted.  Repeated-match traffic re-sends the same few
#: word tuples forever (their hashes are cached by CPython), so the cap
#: only ever trips under a flood of genuinely distinct words — where the
#: cache was not helping anyway.
ENCODE_CACHE_LIMIT = 1 << 16

#: Verdict bytes produced by a scan.
VERDICT_REJECT = 0
VERDICT_ACCEPT = 1
VERDICT_FALLBACK = 2

# -- module-wide telemetry ---------------------------------------------------------------

_STATS_LOCK = threading.Lock()
_STATS = {
    "programs_built": 0,
    "corpora_encoded": 0,
    "kernel_words": 0,
    "fallback_words": 0,
}


def stats() -> dict:
    """Process-wide kernel telemetry (``GET /stats`` serves this).

    ``programs_built`` counts flat-table compilations (rebuilds after a
    runtime generation bump included), ``kernel_words`` / ``fallback_words``
    split batch traffic between words answered by the scan and words that
    replayed through the runtime, and ``backend`` names the loop actually
    in use right now (``requested`` preserves the ``REPRO_KERNEL`` ask
    even when the native library is unavailable).
    """
    with _STATS_LOCK:
        snapshot: dict = dict(_STATS)
    requested = requested_backend()
    snapshot["requested"] = requested
    snapshot["native_available"] = native_library() is not None
    snapshot["backend"] = _effective_backend(requested)
    return snapshot


def kernel_stats() -> dict:
    """Deprecated pre-PR-9 name for :func:`stats` (use ``repro.stats()``)."""
    warnings.warn(
        "kernel_stats() is deprecated; use repro.matching.kernel.stats() "
        "or the consolidated repro.stats()['kernel'] namespace",
        DeprecationWarning,
        stacklevel=2,
    )
    return stats()


def reset_kernel_stats() -> None:
    """Zero the module counters (test isolation helper)."""
    with _STATS_LOCK:
        for key in _STATS:
            _STATS[key] = 0


def _bump(**deltas: int) -> None:
    with _STATS_LOCK:
        for key, delta in deltas.items():
            _STATS[key] += delta


# -- backend selection -------------------------------------------------------------------

#: Loaded native library, ``None`` until probed, ``False`` when the probe
#: failed (so a missing shared object is stat'ed at most once).
_NATIVE: ctypes.CDLL | None | bool = None
_NATIVE_LOCK = threading.Lock()


def _native_path() -> str:
    return os.path.join(os.path.dirname(__file__), "_repro_kernel.so")


def requested_backend() -> str:
    """The ``REPRO_KERNEL`` selection: ``auto`` (default), ``pure`` or ``native``."""
    value = os.environ.get("REPRO_KERNEL", "auto").strip().lower()
    return value if value in ("auto", "pure", "native") else "auto"


def _effective_backend(requested: str | None = None) -> str:
    if requested is None:
        requested = requested_backend()
    if requested != "pure" and native_library() is not None:
        return "native"
    return "pure"


def native_library() -> ctypes.CDLL | None:
    """The loaded native scan library, or ``None`` when unavailable.

    The shared object is probed once per process; call
    :func:`invalidate_native` after building it to re-probe.
    """
    global _NATIVE
    lib = _NATIVE
    if lib is None:
        with _NATIVE_LOCK:
            lib = _NATIVE
            if lib is None:
                lib = _load_native()
                _NATIVE = lib if lib is not None else False
    return lib if isinstance(lib, ctypes.CDLL) else None


def _load_native() -> ctypes.CDLL | None:
    path = _native_path()
    if not os.path.exists(path):
        return None
    try:
        lib = ctypes.CDLL(path)
        scan = lib.repro_kernel_scan
    except (OSError, AttributeError):
        return None
    scan.argtypes = [
        ctypes.c_void_p,  # table
        ctypes.c_void_p,  # accepts
        ctypes.c_longlong,  # start offset
        ctypes.c_void_p,  # flat groups
        ctypes.c_void_p,  # word bounds
        ctypes.c_longlong,  # word count
        ctypes.c_void_p,  # verdict bytes out
    ]
    scan.restype = None
    return lib


def invalidate_native() -> None:
    """Forget the probe result so the next :func:`native_library` re-loads."""
    global _NATIVE
    with _NATIVE_LOCK:
        _NATIVE = None


def build_native(verbose: bool = False) -> str | None:
    """Best-effort compile of ``_kernel.c`` into the loadable shared object.

    Uses the system C compiler (``$CC`` or ``cc``); any failure — no
    compiler, no permissions, bad flags — returns ``None`` and leaves the
    pure path in charge.  ``setup.py`` calls this during installs, and
    ``python -m repro.matching.kernel --build-native`` exposes it to CI.
    """
    source = os.path.join(os.path.dirname(__file__), "_kernel.c")
    target = _native_path()
    if not os.path.exists(source):
        return None
    compiler = os.environ.get("CC", "cc")
    command = [compiler, "-O2", "-shared", "-fPIC", "-o", target, source]
    try:
        result = subprocess.run(command, capture_output=True, text=True, timeout=120)
    except (OSError, subprocess.SubprocessError):
        return None
    if result.returncode != 0:
        if verbose:
            print(result.stderr)
        return None
    invalidate_native()
    return target if native_library() is not None else None


# -- programs ----------------------------------------------------------------------------


class KernelCorpus:
    """A corpus pre-encoded for one program shape (encode once, scan many).

    ``distinct`` holds each distinct word group-encoded for the program's
    stride; ``index`` maps every corpus position back to its distinct slot
    (the dedup fan-out); ``raw`` keeps the distinct words' plain symbol
    codes so kernel-miss words can replay through the runtime.  Instances
    are immutable after construction and safe to scan concurrently.
    """

    __slots__ = ("distinct", "raw", "index", "span", "_packed")

    def __init__(self, distinct: list, raw: list, index: "array[int]", span: int):
        self.distinct = distinct
        self.raw = raw
        self.index = index
        self.span = span
        #: lazily built (flat ``array('i')``, bounds ``array('q')``) pair
        #: for the native backend; built at most once, races benign.
        self._packed: tuple | None = None

    def __len__(self) -> int:
        return len(self.index)

    def packed(self) -> tuple:
        """Flat ``int32`` group buffer plus ``int64`` word bounds (native scan)."""
        packed = self._packed
        if packed is None:
            flat = array("i")
            bounds = array("q", [0])
            for groups in self.distinct:
                # array.extend refuses arrays of another typecode ('H'/'i'
                # encodings differ per corpus); go through a plain list.
                flat.extend(groups.tolist() if isinstance(groups, array) else groups)
                bounds.append(len(flat))
            packed = self._packed = (flat, bounds)
        return packed


class KernelProgram:
    """One pattern's flat scan table (see the module docstring for layout)."""

    __slots__ = (
        "table",
        "accepts",
        "codes",
        "width",
        "wp",
        "stride",
        "span",
        "states",
        "start_offset",
        "dead_offset",
        "generation",
        "_c_table",
        "_c_accepts",
        "_encode_cache",
    )

    def __init__(
        self,
        table: "array[int]",
        accepts: bytearray,
        codes: dict,
        width: int,
        stride: int,
        states: int,
        start_state: int,
    ):
        self.table = table
        self.accepts = accepts
        self.codes = codes
        self.width = width
        self.wp = width + 2
        self.stride = stride
        self.span = self.wp**stride
        self.states = states
        self.start_offset = start_state * self.span
        self.dead_offset = states * self.span
        #: runtime generation the table was built from (set by
        #: ``CompiledRuntime.export_kernel_program``)
        self.generation = -1
        self._c_table = None
        self._c_accepts = None
        #: word tuple → (group encoding, raw codes); shape-compatible
        #: rebuilds inherit it (see ``CompiledRuntime.export_kernel_program``)
        #: so repeated corpora skip re-encoding across generations.  Under
        #: the GIL concurrent fills at worst duplicate work.
        self._encode_cache: dict = {}

    # -- corpus encoding -----------------------------------------------------------------
    def encode_corpus(self, words: Iterable[Sequence[str]]) -> KernelCorpus:
        """Dedup and group-encode *words* (symbol sequences) for this program.

        Each distinct word is encoded exactly once: symbols intern through
        the frozen alphabet (unknown symbols take the dead column), the
        code list is padded to a stride multiple with the identity ``PAD``
        column and packed ``stride`` symbols per group in base ``WP``.
        The returned corpus stays valid across program *rebuilds* of the
        same runtime — stride and width are functions of the machine
        shape, not of how much of it is materialized.  Distinct-word
        encodings are additionally memoized on the program itself, so a
        corpus of already-seen words costs one dict probe per word.
        """
        get = self.codes.get
        width = self.width
        wp = self.wp
        stride = self.stride
        span = self.span
        pad = width + 1
        cache = self._encode_cache
        seen: dict = {}
        distinct: list = []
        raw: list = []
        index = array("i")
        small = span <= 256
        medium = span <= 65536
        for word in words:
            key = tuple(word)
            slot = seen.get(key)
            if slot is None:
                entry = cache.get(key)
                if entry is None:
                    codes = [get(symbol, -1) for symbol in word]
                    padded = [width if code < 0 else code for code in codes]
                    while len(padded) % stride:
                        padded.append(pad)
                    groups = []
                    for at in range(0, len(padded), stride):
                        group = 0
                        for offset in range(at, at + stride):
                            group = group * wp + padded[offset]
                        groups.append(group)
                    if small:
                        encoded = bytes(groups)
                    elif medium:
                        encoded = array("H", groups)
                    else:
                        encoded = array("i", groups)
                    if len(cache) >= ENCODE_CACHE_LIMIT:
                        cache.clear()
                    entry = cache[key] = (encoded, codes)
                slot = seen[key] = len(distinct)
                distinct.append(entry[0])
                raw.append(entry[1])
            index.append(slot)
        _bump(corpora_encoded=1)
        return KernelCorpus(distinct, raw, index, span)

    # -- scanning ------------------------------------------------------------------------
    def scan(self, corpus: KernelCorpus, backend: str | None = None) -> bytearray:
        """Verdict bytes (0/1/2) for each *distinct* word of *corpus*.

        *backend* overrides the ``REPRO_KERNEL`` selection for this call
        (the equivalence tests diff ``pure`` against ``native`` directly).
        """
        if corpus.span != self.span:
            raise ValueError("corpus was encoded for a different program shape")
        if _effective_backend(backend) == "native":
            library = native_library()
            if library is not None:
                return self._scan_native(library, corpus)
        return self._scan_pure(corpus)

    def _scan_pure(self, corpus: KernelCorpus) -> bytearray:
        table = self.table
        accepts = self.accepts
        start = self.start_offset
        verdicts = bytearray(len(corpus.distinct))
        slot = 0
        for groups in corpus.distinct:
            off = start
            for group in groups:
                off = table[off + group]
            verdicts[slot] = accepts[off]
            slot += 1
        return verdicts

    def _scan_native(self, library: ctypes.CDLL, corpus: KernelCorpus) -> bytearray:
        if self._c_table is None:
            # buffer_info addresses stay valid for the arrays' lifetime;
            # the program owns both buffers, and from_buffer pins the
            # bytearray, so the pointers cannot dangle mid-scan.
            self._c_table = ctypes.c_void_p(self.table.buffer_info()[0])
            self._c_accepts = (ctypes.c_ubyte * len(self.accepts)).from_buffer(self.accepts)
        flat, bounds = corpus.packed()
        count = len(corpus.distinct)
        verdicts = bytearray(count)
        out = (ctypes.c_ubyte * count).from_buffer(verdicts) if count else None
        library.repro_kernel_scan(
            self._c_table,
            self._c_accepts,
            self.start_offset,
            ctypes.c_void_p(flat.buffer_info()[0]),
            ctypes.c_void_p(bounds.buffer_info()[0]),
            count,
            out,
        )
        return verdicts


def eligible(tree) -> bool:
    """Cheap pre-check: can *tree*'s machine fit a kernel table at all?"""
    states = len(tree.positions)
    width = len(tree.alphabet)
    return (states + 2) * (width + 2) <= TABLE_LIMIT


def build_program(
    runtime,
    max_entries: int = TABLE_LIMIT,
    max_stride: int = MAX_STRIDE,
) -> KernelProgram | None:
    """Flatten *runtime*'s current rows into a :class:`KernelProgram`.

    Never mutates the runtime: unmaterialized transitions become edges
    into the absorbing ``MISS`` state and unresolved acceptance verdicts
    become fallback bytes, so a program built over a half-warm machine is
    still verdict-exact — it just sends more words to the fallback path.
    Adopted (snapshot) rows are read exactly like locally densified ones,
    which is what hands snapshot-preloaded processes a complete kernel
    program without a single matcher delegation.  Returns ``None`` when
    even the stride-1 table would exceed *max_entries*.
    """
    width = runtime._width
    states = len(runtime._positions)
    wp = width + 2
    dead = states
    miss = states + 1
    synthetic = states + 2
    if synthetic * wp > max_entries:
        return None
    stride = 1
    while stride < max_stride and synthetic * wp ** (stride + 1) <= max_entries:
        stride += 1

    rows = runtime._rows
    base: list[list[int]] = []
    for state in range(states):
        row = rows[state]
        if row is None:
            entries = [miss] * width
        elif type(row) is dict:
            entries = []
            get = row.get
            for code in range(width):
                target = get(code)
                if target is None:
                    entries.append(miss)
                elif target < 0:
                    entries.append(dead)
                else:
                    entries.append(target)
        else:  # dense array or adopted memoryview: complete by construction
            entries = [dead if target < 0 else target for target in row]
        entries.append(dead)  # unknown-symbol column
        entries.append(state)  # PAD column: identity self-loop
        base.append(entries)
    base.append([dead] * wp)  # DEAD: absorbing, PAD included
    base.append([miss] * wp)  # MISS: absorbing, PAD included

    # Compose T^k rows by concatenation: T²[s] is, for each first symbol c,
    # the whole T¹ row of T¹[s][c] — extend() copies at C speed, so deeper
    # strides cost WP list-appends per state, not WP^k Python iterations.
    composed = base
    for _ in range(stride - 1):
        previous = composed
        composed = []
        for state in range(synthetic):
            row_entries: list[int] = []
            first_row = base[state]
            for code in range(wp):
                row_entries.extend(previous[first_row[code]])
            composed.append(row_entries)

    span = wp**stride
    table = array("i", [target * span for entries in composed for target in entries])
    accepts = bytearray(synthetic * span)
    known = runtime._accepts
    for state in range(states):
        verdict = known[state]
        accepts[state * span] = VERDICT_FALLBACK if verdict < 0 else verdict
    accepts[miss * span] = VERDICT_FALLBACK
    # the DEAD offset keeps its zero byte: a dead scan is a certain reject

    program = KernelProgram(
        table,
        accepts,
        runtime._codes,
        width,
        stride,
        states,
        runtime._start_state,
    )
    _bump(programs_built=1)
    return program


# -- batch driver ------------------------------------------------------------------------


def match_corpus(runtime, program: KernelProgram, corpus: KernelCorpus, replay=None):
    """Run *corpus* through *program*; returns ``(verdicts, kernel, fallback)``.

    ``verdicts`` is one bool per corpus word (original order and
    multiplicity).  Words whose scan crossed unmaterialized state replay
    through ``runtime.accepts_encoded`` — filling the missing rows, so
    repeated corpora converge to the all-kernel path — and are counted in
    ``fallback`` (by corpus multiplicity; ``kernel`` counts the rest).

    *replay* substitutes the fallback driver: any callable taking an
    encoded word and returning the boolean verdict.  The diagnostics
    layer passes a :class:`repro.diagnostics.TraceRecorder` here so
    byte-2 words route through the tracing path and their witnesses come
    out of the replay they were paying for anyway; the default (and the
    kernel verdict path) is unchanged.
    """
    raw_verdicts = program.scan(corpus)
    resolved: list[bool] = []
    fallback_slots = 0
    accepts_encoded = runtime.accepts_encoded if replay is None else replay
    for slot, verdict in enumerate(raw_verdicts):
        if verdict == VERDICT_FALLBACK:
            fallback_slots += 1
            resolved.append(accepts_encoded(corpus.raw[slot]))
        else:
            resolved.append(verdict == VERDICT_ACCEPT)
    index = corpus.index
    verdicts = [resolved[slot] for slot in index]
    if fallback_slots:
        fallback = sum(1 for slot in index if raw_verdicts[slot] == VERDICT_FALLBACK)
    else:
        fallback = 0
    kernel_count = len(index) - fallback
    _bump(kernel_words=kernel_count, fallback_words=fallback)
    return verdicts, kernel_count, fallback


def match_words(runtime, words: Sequence[Sequence[str]], replay=None):
    """One-call batch driver: program export, corpus encode, scan, fallback.

    Returns ``(verdicts, kernel_words, fallback_words)`` or ``None`` when
    the runtime's machine exceeds :data:`TABLE_LIMIT` (callers keep their
    per-word driver for that case).  *replay* is forwarded to
    :func:`match_corpus`.
    """
    program = runtime.export_kernel_program()
    if program is None:
        return None
    corpus = program.encode_corpus(words)
    return match_corpus(runtime, program, corpus, replay=replay)


# -- tagged longest-match scanning (the Lexer workload) ----------------------------------


def longest_match(
    program: KernelProgram,
    tags: bytearray,
    encoded: Sequence[int],
    start: int,
) -> tuple[int, int]:
    """Maximal munch from ``encoded[start:]``; returns ``(end, tag)``.

    *tags* is an offset-indexed byte table (``tag + 1`` at accepting
    offsets, 0 elsewhere) built by :class:`repro.lexer.Lexer` over a
    stride-1 program whose reachable rows are fully materialized, so the
    scan needs no miss handling: it strides the same premultiplied table
    as the batch path, remembers the last accepting boundary, and stops
    at the absorbing DEAD offset.  ``end`` is the exclusive end of the
    longest token (``-1`` when no rule accepts any prefix) and ``tag``
    the winning rule's ``tag + 1``.
    """
    table = program.table
    dead = program.dead_offset
    off = program.start_offset
    best_end = -1
    best_tag = 0
    at = start
    length = len(encoded)
    while at < length:
        off = table[off + encoded[at]]
        at += 1
        if off == dead:
            break
        tag = tags[off]
        if tag:
            best_end = at
            best_tag = tag
    return best_end, best_tag


def _main(argv: Sequence[str]) -> int:  # pragma: no cover - CLI plumbing
    if "--build-native" in argv:
        built = build_native(verbose=True)
        if built is None:
            print("native kernel build failed; the pure path stays in charge")
            return 1
        print(f"native kernel built: {built}")
        return 0
    print(__doc__)
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    raise SystemExit(_main(sys.argv[1:]))
