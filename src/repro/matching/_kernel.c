/* Native scan loop for the batch matching kernel (see kernel.py).
 *
 * The table is the same premultiplied int32 flat table the pure-Python
 * path strides: entry values are target_state * span, so one transition
 * is a single indexed load with no multiply.  `groups` concatenates the
 * group-encoded distinct words of one corpus; `bounds[w] .. bounds[w+1]`
 * delimits word w.  Verdict bytes land in `out` (0 reject / 1 accept /
 * 2 kernel-miss), exactly as the pure scan produces them — the two
 * backends must be byte-for-byte interchangeable.
 *
 * Built best-effort with the system C compiler (no Python.h needed; the
 * library is loaded through ctypes):
 *
 *     cc -O2 -shared -fPIC -o _repro_kernel.so _kernel.c
 */

#include <stdint.h>

void repro_kernel_scan(const int32_t *table, const uint8_t *accepts,
                       int64_t start_offset, const int32_t *groups,
                       const int64_t *bounds, int64_t word_count,
                       uint8_t *out)
{
    for (int64_t word = 0; word < word_count; ++word) {
        int64_t off = start_offset;
        const int32_t *group = groups + bounds[word];
        const int32_t *end = groups + bounds[word + 1];
        for (; group != end; ++group)
            off = table[off + *group];
        out[word] = accepts[off];
    }
}
