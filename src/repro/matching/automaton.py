"""Automaton-backed baseline matchers with the common matcher interface.

The Glushkov DFA is the classical way of matching a deterministic
expression: build the full transition relation (O(σ|e|) preprocessing),
then walk it (O(1) per symbol).  The paper's matchers exist to avoid that
preprocessing cost; wrapping the baseline in the same
:class:`~repro.matching.base.DeterministicMatcher` interface lets the
benchmarks compare both sides symmetrically and lets the test-suite run
every matcher through identical differential checks.
"""

from __future__ import annotations

from ..regex.language import LanguageOracle
from ..regex.parse_tree import TreeNode
from .base import DeterministicMatcher


class GlushkovMatcher(DeterministicMatcher):
    """Baseline: explicit Glushkov transition table (O(σ|e|) preprocessing)."""

    name = "glushkov-dfa"

    def _prepare(self) -> None:
        oracle = LanguageOracle(self.tree)
        positions = self.tree.positions
        end_index = self.tree.end.position_index
        # delta[p][a] = the a-labelled follower of p (unique by determinism).
        self._delta: list[dict[str, TreeNode]] = []
        for position in positions:
            row: dict[str, TreeNode] = {}
            for q in oracle.follow(position.position_index):
                if q == end_index:
                    continue
                row[positions[q].symbol] = positions[q]
            self._delta.append(row)

    def next_position(self, position: TreeNode, symbol: str) -> TreeNode | None:
        return self._delta[position.position_index].get(symbol)

    def transition_count(self) -> int:
        """Size of the materialised transition table (the quadratic term)."""
        return sum(len(row) for row in self._delta)
