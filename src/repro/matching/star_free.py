"""The star-free multi-word matcher (Section 4.4, Theorem 4.12).

For star-free deterministic expressions, ``N`` words can be matched
simultaneously in ``O(|e| + |w_1| + ... + |w_N|)``: the expression is
traversed *once* in position order, and every word advances whenever the
traversal reaches the position it is waiting to read.

The paper maintains, for every symbol ``a``, a *dynamic a-skeleton*: the
set of positions at which some word currently waits for an ``a``, closed
under LCAs, with insertions always happening to the right of previous
ones.  Our implementation exploits exactly that insertion order: because
words only ever advance to the position currently being scanned, the
per-symbol store receives positions in pre-order, so the "all stored
positions inside the subtree of ``parent(pSupFirst(p))``" extraction that
the paper performs by climbing the skeleton is simply a *suffix* of a
per-symbol stack.  Each popped entry either

* advances (the scanned position follows it through the concatenation at
  their LCA — in star-free expressions Lemma 2.2's star case cannot fire),
* is dead (the LCA is a concatenation but the entry is not in the Last set
  of its left child, hence no later position can follow it either), or
* is retained (the LCA is a union node: the paper's skeleton climb never
  descends into union branches, so these entries must stay; property (P1)
  bounds how often a retained entry can be re-examined for a fixed
  symbol).

The deviation from the paper's explicit skeleton data structure — and why
it preserves the linear behaviour on the star-free workloads measured in
experiment E6 — is discussed in DESIGN.md.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.determinism import DeterminismChecker
from ..core.follow import FollowIndex
from ..errors import NotDeterministicError
from ..regex.ast import Regex
from ..regex.parse_tree import NodeKind, ParseTree, TreeNode, build_parse_tree
from .snapshot import SnapshotError

#: Decision codes for one ``(waiting entry, scanned position)`` pair —
#: what happens when the scan examines the entry.  Pure functions of the
#: parse tree, so they are memoized per pair and can be persisted in the
#: ``SFTB`` snapshot section (see :meth:`StarFreeMultiMatcher.export_tables`).
DECISION_DEAD = 0
DECISION_ADVANCE = 1
DECISION_RETAIN = 2

_DECISIONS = (DECISION_DEAD, DECISION_ADVANCE, DECISION_RETAIN)


class _WaitingEntry:
    """Words waiting at one position for one symbol."""

    __slots__ = ("position", "word_ids")

    def __init__(self, position: TreeNode, word_ids: list[int]):
        self.position = position
        self.word_ids = word_ids


class StarFreeMultiMatcher:
    """Theorem 4.12: batch matching against a star-free deterministic expression."""

    name = "star-free-multi"

    def __init__(self, expr: Regex | ParseTree | str, verify: bool = True):
        self.tree = expr if isinstance(expr, ParseTree) else build_parse_tree(expr)
        if any(node.is_iteration for node in self.tree.nodes):
            raise ValueError("StarFreeMultiMatcher requires a star-free expression")
        self.follow = FollowIndex(self.tree)
        if verify:
            report = DeterminismChecker(self.tree, self.follow).report()
            if not report.deterministic:
                raise NotDeterministicError(
                    "StarFreeMultiMatcher requires a deterministic expression: "
                    f"{report.describe()}",
                    report=report,
                )
        #: number of entries examined during the last match_all call (instrumentation)
        self.examined_entries = 0
        #: memoized ``(entry_pre, scanned_pre) → decision`` table.  The
        #: decision is a pure function of the parse tree, so concurrent
        #: writers racing on one key store the same value — dict stores
        #: are atomic under the GIL, hence no lock on the hot path.
        self._decisions: dict[tuple[int, int], int] = {}
        #: memoized ``position_pre → 0/1`` acceptance table (same contract).
        self._accepts_memo: dict[int, int] = {}
        #: largest pre-order number any node of this tree carries; the
        #: bound :meth:`adopt_tables` validates persisted keys against.
        self._pre_limit = max(node.pre for node in self.tree.nodes)
        #: entries installed from a persisted snapshot (telemetry).
        self._adopted_decisions = 0
        self._adopted_accepts = 0

    # ------------------------------------------------------------------------------
    def match_all(self, words: Sequence[Sequence[str]]) -> list[bool]:
        """Return, for every word, whether it belongs to the language.

        All words are matched during a single scan of the expression's
        positions in document order.  Words are interned through the
        tree's alphabet first; see :meth:`match_all_encoded` for callers
        (``Pattern.match_all``, the validation service) that already hold
        encoded corpora.
        """
        return self.match_all_encoded(self.tree.alphabet.encode_many(words))

    def match_all_encoded(self, words: Sequence[Sequence[int]]) -> list[bool]:
        """The single-scan batch matcher over alphabet-encoded words.

        Identical to :meth:`match_all` but the per-symbol waiting stacks
        are keyed by dense integer codes instead of symbol strings, so the
        scan shares the interned alphabet with the compiled runtime: a
        corpus is encoded once (``Alphabet.encode_many``) and every
        dictionary probe in the hot loop hashes a small int.  Symbols
        outside the alphabet encode to a negative code no scanned position
        can carry, so such words simply never advance — the same verdict
        the string-keyed scan produced.

        Repeated words are deduplicated up front — the same corpus-level
        optimization the batch kernel applies: the scan's waiting-stack
        work is per *distinct* word, and verdicts fan back out through an
        index, so log-like streams that re-match the same few lines cost
        one scanned copy each.
        """
        seen: dict[tuple[int, ...], int] = {}
        index: list[int] = []
        distinct: list[Sequence[int]] = []
        for word in words:
            key = tuple(word)
            slot = seen.get(key)
            if slot is None:
                slot = seen[key] = len(distinct)
                distinct.append(word)
            index.append(slot)
        if len(distinct) < len(words):
            verdicts = self._match_all_encoded_distinct(distinct)
            return [verdicts[slot] for slot in index]
        return self._match_all_encoded_distinct(words)

    def _match_all_encoded_distinct(self, words: Sequence[Sequence[int]]) -> list[bool]:
        """One waiting-stack scan over an already-distinct encoded corpus."""
        follow = self.follow
        tree = self.tree
        symbol_codes = tree.alphabet.codes
        decisions = self._decisions
        results = [False] * len(words)
        # Index of the next symbol each word expects.
        cursors = [0] * len(words)
        # Position at which each fully-consumed word stopped (None = not finished).
        finished_at: list[TreeNode | None] = [None] * len(words)
        # Per-code stacks of waiting entries, kept sorted by pre-order of position.
        waiting: dict[int, list[_WaitingEntry]] = {}
        self.examined_entries = 0

        start = tree.start
        empty_accepts = self._accepts_at(start)
        initial: dict[int, list[int]] = {}
        for word_id, word in enumerate(words):
            if len(word) == 0:
                results[word_id] = empty_accepts
            else:
                initial.setdefault(word[0], []).append(word_id)
        for code, word_ids in initial.items():
            waiting[code] = [_WaitingEntry(start, word_ids)]

        for scanned in tree.positions[1:-1]:  # every position of e', in document order
            stack = waiting.get(symbol_codes[scanned.symbol])
            if not stack:
                continue
            boundary = scanned.p_sup_first.parent if scanned.p_sup_first is not None else None
            if boundary is None:
                continue
            scanned_pre = scanned.pre
            advanced: list[int] = []
            retained: list[_WaitingEntry] = []
            # Entries whose position lies inside the subtree of `boundary` form
            # a suffix of the stack (insertions happen in pre-order).
            while stack and stack[-1].position.pre >= boundary.pre:
                entry = stack.pop()
                self.examined_entries += 1
                key = (entry.position.pre, scanned_pre)
                decision = decisions.get(key)
                if decision is None:
                    if follow.follows_via_concat(entry.position, scanned):
                        decision = DECISION_ADVANCE
                    elif follow.lca(entry.position, scanned).kind is NodeKind.CONCAT:
                        # Not in Last(Lchild(meeting)): no later position can
                        # follow this entry either — dead, simply dropped.
                        decision = DECISION_DEAD
                    else:
                        decision = DECISION_RETAIN
                    decisions[key] = decision
                if decision == DECISION_ADVANCE:
                    advanced.extend(entry.word_ids)
                elif decision == DECISION_RETAIN:
                    retained.append(entry)
            # Retained entries keep their original (pre-order) relative order.
            stack.extend(reversed(retained))

            if not advanced:
                continue
            newly_waiting: list[int] = []
            for word_id in advanced:
                cursors[word_id] += 1
                word = words[word_id]
                if cursors[word_id] >= len(word):
                    finished_at[word_id] = scanned
                else:
                    newly_waiting.append(word_id)
            by_code: dict[int, list[int]] = {}
            for word_id in newly_waiting:
                by_code.setdefault(words[word_id][cursors[word_id]], []).append(word_id)
            for code, word_ids in by_code.items():
                waiting.setdefault(code, []).append(_WaitingEntry(scanned, word_ids))

        for word_id, stopped_at in enumerate(finished_at):
            if stopped_at is not None:
                results[word_id] = self._accepts_at(stopped_at)
        return results

    def _accepts_at(self, position: TreeNode) -> bool:
        """Memoized ``$ ∈ Follow(position)`` (persisted in the SFTB tables)."""
        verdict = self._accepts_memo.get(position.pre)
        if verdict is None:
            verdict = 1 if self.follow.accepts_at(position) else 0
            self._accepts_memo[position.pre] = verdict
        return verdict == 1

    def accepts(self, word: Sequence[str]) -> bool:
        """Single-word convenience wrapper around :meth:`match_all`."""
        return self.match_all([list(word)])[0]

    # -- snapshot export / adoption -----------------------------------------------------
    def export_tables(self) -> dict:
        """Exportable view of the memoized tables (for snapshots).

        Returns ``{"accepts": {position_pre: 0/1}, "decisions":
        {(entry_pre, scanned_pre): code}, "pre_limit": int}`` — the shape
        :func:`repro.matching.snapshot.write` persists in the ``SFTB``
        section.  Mirrors the compiled runtime's
        :meth:`~repro.matching.runtime.CompiledRuntime.export_rows` row
        contract: everything exported was either computed locally from
        the parse tree or adopted from a fingerprint-matched snapshot,
        so re-exporting an adopted matcher is a fixpoint.
        """
        return {
            "accepts": dict(self._accepts_memo),
            "decisions": dict(self._decisions),
            "pre_limit": self._pre_limit,
        }

    def adopt_tables(
        self,
        accepts: Mapping[int, int],
        decisions: Mapping[tuple[int, int], int],
    ) -> int:
        """Install persisted tables into this matcher; returns entries adopted.

        Validation is strict and happens *before* any mutation (the
        :meth:`CompiledRuntime.adopt_rows` contract), so a rejected
        snapshot leaves the matcher exactly as it was: every pre-order
        key must fall inside this tree's numbering and every value must
        be a known decision/verdict code.  A violation raises
        :class:`~repro.matching.snapshot.SnapshotError` — the API layer
        counts it as ``snapshot_rejected`` and carries on with the lazy
        computation.  Entries are installed only for keys this matcher
        has not computed locally; local results always win.
        """
        limit = self._pre_limit
        for pre, verdict in accepts.items():
            if not (isinstance(pre, int) and 0 <= pre <= limit):
                raise SnapshotError(
                    "table-bounds", f"acceptance key {pre!r} outside pre-order range 0..{limit}"
                )
            if verdict not in (0, 1):
                raise SnapshotError("malformed", f"invalid acceptance verdict {verdict!r}")
        for key, decision in decisions.items():
            try:
                entry_pre, scanned_pre = key
            except (TypeError, ValueError):
                raise SnapshotError("malformed", f"invalid decision key {key!r}") from None
            for pre in (entry_pre, scanned_pre):
                if not (isinstance(pre, int) and 0 <= pre <= limit):
                    raise SnapshotError(
                        "table-bounds",
                        f"decision key {key!r} outside pre-order range 0..{limit}",
                    )
            if decision not in _DECISIONS:
                raise SnapshotError("malformed", f"invalid decision code {decision!r}")
        adopted = 0
        accepts_memo = self._accepts_memo
        for pre, verdict in accepts.items():
            if pre not in accepts_memo:
                accepts_memo[pre] = verdict
                adopted += 1
                self._adopted_accepts += 1
        decision_memo = self._decisions
        for key, decision in decisions.items():
            if key not in decision_memo:
                decision_memo[key] = decision
                adopted += 1
                self._adopted_decisions += 1
        return adopted

    def table_stats(self) -> dict[str, int]:
        """How much of the decision/acceptance tables is materialized."""
        return {
            "decisions": len(self._decisions),
            "accepts": len(self._accepts_memo),
            "adopted_decisions": self._adopted_decisions,
            "adopted_accepts": self._adopted_accepts,
        }
