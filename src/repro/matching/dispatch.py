"""Choosing a matcher for an expression.

The paper provides four matching algorithms whose sweet spots are
structural classes of expressions; :func:`select_strategy` encodes the
obvious dispatch rule (the one a validator such as Xerces would apply):

* small occurrence bound (k ≤ 4, which covers the overwhelming majority of
  real-world content models) → the k-occurrence matcher of Theorem 4.3;
* small union/concatenation alternation depth (c_e ≤ 6, true of every
  content model in Grijzenhout's corpus) → the path-decomposition matcher
  of Theorem 4.10;
* anything else → the lowest-colored-ancestor matcher of Theorem 4.2.

Star-free expressions additionally support the batch matcher of
Theorem 4.12 (:class:`~repro.matching.star_free.StarFreeMultiMatcher`),
which is selected explicitly because its interface (many words at once)
differs from the streaming one.
"""

from __future__ import annotations

from ..core.determinism import DeterminismChecker
from ..regex.ast import Regex
from ..regex.parse_tree import ParseTree, build_parse_tree
from ..regex.properties import alternation_depth, occurrence_bound
from .automaton import GlushkovMatcher
from .base import DeterministicMatcher
from .climbing import ClimbingMatcher
from .kore import KOccurrenceMatcher
from .lca_matcher import LowestColoredAncestorMatcher
from .path_decomposition import PathDecompositionMatcher

#: occurrence bound below which the k-occurrence matcher is preferred
SMALL_OCCURRENCE_BOUND = 4
#: alternation depth below which the path-decomposition matcher is preferred
SMALL_ALTERNATION_DEPTH = 6

STRATEGIES: dict[str, type[DeterministicMatcher]] = {
    KOccurrenceMatcher.name: KOccurrenceMatcher,
    PathDecompositionMatcher.name: PathDecompositionMatcher,
    LowestColoredAncestorMatcher.name: LowestColoredAncestorMatcher,
    ClimbingMatcher.name: ClimbingMatcher,
    GlushkovMatcher.name: GlushkovMatcher,
}


def select_strategy(tree: ParseTree) -> str:
    """Pick the matcher name the dispatch rule prefers for *tree*."""
    if occurrence_bound(tree) <= SMALL_OCCURRENCE_BOUND:
        return KOccurrenceMatcher.name
    if alternation_depth(tree) <= SMALL_ALTERNATION_DEPTH:
        return PathDecompositionMatcher.name
    return LowestColoredAncestorMatcher.name


def build_matcher(
    expr: Regex | ParseTree | str,
    strategy: str = "auto",
    verify: bool = True,
    checker: DeterminismChecker | None = None,
) -> DeterministicMatcher:
    """Build a matcher for *expr* using *strategy* (or the automatic rule).

    *strategy* is ``"auto"`` or one of the names in :data:`STRATEGIES`.
    """
    tree = expr if isinstance(expr, ParseTree) else build_parse_tree(expr)
    name = select_strategy(tree) if strategy == "auto" else strategy
    matcher_class = STRATEGIES.get(name)
    if matcher_class is None:
        raise ValueError(
            f"unknown matching strategy {strategy!r}; expected 'auto' or one of "
            f"{sorted(STRATEGIES)}"
        )
    return matcher_class(tree, verify=verify, checker=checker)
