"""The climbing matcher: O(depth(e)) transition simulation.

Section 4.3 introduces the path-decomposition algorithm as a speed-up of
a "naïve" climbing procedure: starting from the current position, walk up
the parse tree until an ancestor is found through which an a-labelled
follow position is reachable.  By Lemma 3.3 it is enough to climb to the
*lowest ancestor carrying color a* and examine its three candidate
positions (witness, FirstPos, Next); checkIfFollow picks the right one.

The climbing matcher is therefore the lowest-colored-ancestor matcher of
Theorem 4.2 with the O(log log |e|) ancestor query replaced by a plain
parent walk: O(depth(e)) per consumed symbol, O(|e| + depth(e)·|w|) per
word.  It is kept as a baseline for experiments E4/E5 and as a reference
implementation against which the cleverer matchers are tested.
"""

from __future__ import annotations

from ..regex.parse_tree import TreeNode
from .base import DeterministicMatcher


class ClimbingMatcher(DeterministicMatcher):
    """Transition simulation by climbing to the lowest colored ancestor."""

    name = "climbing"

    def _prepare(self) -> None:
        self._skeletons = self.checker.skeletons

    def next_position(self, position: TreeNode, symbol: str) -> TreeNode | None:
        """Walk up from *position* until a node colored *symbol* resolves the move."""
        skeletons = self._skeletons
        follows_maybe = self.follow.follows_maybe
        node: TreeNode | None = position
        while node is not None:
            by_symbol = skeletons.colors.get(node.index)
            if by_symbol is not None and symbol in by_symbol:
                witness = by_symbol[symbol]
                if follows_maybe(position, witness):
                    return witness
                first_pos = skeletons.first_pos(node, symbol)
                if first_pos is not None and follows_maybe(position, first_pos):
                    return first_pos
                next_position = skeletons.next_position(node, symbol)
                if next_position is not None and follows_maybe(position, next_position):
                    return next_position
                # Lemma 3.3: the lowest colored ancestor already carries every
                # possible a-labelled follower of `position`.
                return None
            node = node.parent
        return None
