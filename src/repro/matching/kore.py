"""Matching k-occurrence expressions (Section 4.2, Theorem 4.3).

A k-occurrence expression (k-ORE) uses every symbol at most ``k`` times,
and real-world schemas are overwhelmingly 1-OREs (Bex et al., cited in
the paper).  Transition simulation is then trivial: gather the a-labelled
positions during preprocessing and probe each with the constant-time
``checkIfFollow`` test — at most ``k`` probes per consumed symbol, hence
``O(|e| + k|w|)`` matching.

The module also provides the non-deterministic variant sketched after
Theorem 4.3: for a (possibly non-deterministic) k-ORE, maintain the *set*
of reachable positions; each step costs ``O(k^2)`` follow probes.
"""

from __future__ import annotations

from typing import Iterable

from ..core.follow import FollowIndex
from ..regex.ast import Regex
from ..regex.parse_tree import ParseTree, TreeNode, build_parse_tree
from .base import DeterministicMatcher


class KOccurrenceMatcher(DeterministicMatcher):
    """Theorem 4.3: deterministic k-ORE matching in O(|e| + k|w|)."""

    name = "k-occurrence"

    def _prepare(self) -> None:
        # One list of positions per symbol, gathered in a single pass; the
        # list for symbol a has length <= k by definition of k-ORE.
        self._positions_by_symbol: dict[str, list[TreeNode]] = {}
        for position in self.tree.positions:
            self._positions_by_symbol.setdefault(position.symbol, []).append(position)

    @property
    def occurrence_bound(self) -> int:
        """The ``k`` of the expression (maximum positions sharing a symbol)."""
        return max(
            (len(ps) for s, ps in self._positions_by_symbol.items() if s not in ("#", "$")),
            default=0,
        )

    def next_position(self, position: TreeNode, symbol: str) -> TreeNode | None:
        """Probe the (at most k) candidate positions labelled *symbol*."""
        follows = self.follow.follows
        for candidate in self._positions_by_symbol.get(symbol, ()):
            if follows(position, candidate):
                return candidate
        return None


class SubsetKOccurrenceMatcher:
    """The non-deterministic variant: subset simulation over follow probes.

    Works for *any* expression (deterministic or not); each consumed symbol
    costs ``O(k * |current set|)`` follow probes, i.e. ``O(k^2)`` for a
    k-ORE, giving the ``O(|e| + k^2 |w|)`` bound mentioned in the paper.
    Unlike the Glushkov baseline it never materialises the transition
    relation, so preprocessing stays O(|e|).
    """

    name = "k-occurrence-subset"

    def __init__(self, expr: Regex | ParseTree | str):
        self.tree = expr if isinstance(expr, ParseTree) else build_parse_tree(expr)
        self.follow = FollowIndex(self.tree)
        self._positions_by_symbol: dict[str, list[TreeNode]] = {}
        for position in self.tree.positions:
            self._positions_by_symbol.setdefault(position.symbol, []).append(position)

    def step(self, current: list[TreeNode], symbol: str) -> list[TreeNode]:
        """All *symbol*-labelled positions following any position of *current*."""
        follows = self.follow.follows
        return [
            candidate
            for candidate in self._positions_by_symbol.get(symbol, ())
            if any(follows(position, candidate) for position in current)
        ]

    def accepts(self, word: Iterable[str]) -> bool:
        """Membership test by subset simulation of follow probes."""
        current = [self.tree.start]
        for symbol in word:
            current = self.step(current, symbol)
            if not current:
                return False
        end = self.tree.end
        follows = self.follow.follows
        return any(follows(position, end) for position in current)
