"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch a single base class.  The hierarchy mirrors the main
stages of the pipeline, one subtree per stage:

Syntax errors — rejecting the *input text* before any algorithm runs:

* :class:`RegexSyntaxError` — textual expression cannot be parsed.
* :class:`XMLSyntaxError` — malformed XML document.
* :class:`DTDSyntaxError` — malformed DTD declaration or content model.

Structural errors — the input parsed but violates a requirement of the
paper's algorithms:

* :class:`InvalidExpressionError` — AST/parse-tree invariant broken
  (e.g. numeric repetition with ``low > high``).
* :class:`NotDeterministicError` — a Section 4 matcher was requested for
  an expression that is not one-unambiguous; carries the
  :class:`~repro.core.determinism.DeterminismReport` explaining the
  conflict.
* :class:`AlphabetError` — strict APIs reject symbols outside the
  expression alphabet.

Runtime errors — raised while consuming input with a correct machine:

* :class:`LexError` — bad lexer rule sets, or stuck input; stuck-input
  errors carry the offset, the expected next symbols and the rule tags
  still viable at that offset (the same Section 4 expected-next sets
  that power :mod:`repro.diagnostics`).
* :class:`DiagnosticsError` — the witness/diagnosis layer was asked for
  something it cannot provide (tracing an uncompiled pattern) or its
  replay disagreed with the recorded verdict (an internal invariant).
* :class:`ValidationError` — structural problems while validating XML.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class RegexSyntaxError(ReproError):
    """Raised when a textual expression cannot be parsed.

    Attributes
    ----------
    text:
        The input text being parsed.
    position:
        Offset (0-based) in ``text`` where the error was detected, or
        ``None`` when the error is not tied to a single offset.
    """

    def __init__(self, message: str, text: str = "", position: int | None = None):
        super().__init__(message)
        self.text = text
        self.position = position

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.position is None:
            return base
        return f"{base} (at offset {self.position} in {self.text!r})"


class InvalidExpressionError(ReproError):
    """Raised when an AST or parse tree violates a structural requirement.

    Examples: numeric repetitions with ``low > high``, empty unions, or an
    attempt to run a paper algorithm on a tree that has not been normalised
    to satisfy restrictions (R1)-(R3).
    """


class NotDeterministicError(ReproError):
    """Raised when an operation requires a deterministic expression.

    The deterministic matchers of Section 4 are only correct on
    deterministic (one-unambiguous) expressions; constructing one of them
    from a non-deterministic expression raises this error, carrying the
    diagnostic report explaining the conflict.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class LexError(ReproError):
    """Raised by :class:`repro.lexer.Lexer` for bad rule sets or stuck input.

    Bad rule sets: a nullable rule (it would match the empty word and the
    scanner could not advance) or more rules than the tag table can hold.
    Stuck input: a position where no rule matches any prefix; ``position``
    carries the character offset, ``expected`` the symbols that would have
    let the scanner advance (the Section 4 expected-next set at the stuck
    state), and ``tags`` the names of the rules those symbols belong to.
    """

    def __init__(
        self,
        message: str,
        position: int | None = None,
        expected: tuple[str, ...] = (),
        tags: tuple[str, ...] = (),
    ):
        super().__init__(message)
        self.position = position
        self.expected = expected
        self.tags = tags


class AlphabetError(ReproError):
    """Raised when a word contains a symbol outside the expression alphabet.

    Matchers treat unknown symbols as an immediate mismatch by default; the
    strict APIs raise this error instead so schema authors can distinguish
    "wrong order" from "unknown element".
    """


class ValidationError(ReproError):
    """Raised for structural problems while validating an XML document."""


class XMLSyntaxError(ReproError):
    """Raised by the minimal XML parser on malformed input."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        super().__init__(message)
        self.line = line
        self.column = column

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.line is None:
            return base
        return f"{base} (line {self.line}, column {self.column})"


class DTDSyntaxError(ReproError):
    """Raised when a DTD declaration or content model cannot be parsed."""


class DiagnosticsError(ReproError):
    """Raised by :mod:`repro.diagnostics` for unsatisfiable requests.

    Two cases: tracing was requested where it cannot be provided (e.g.
    ``Pattern.stream(trace=True)`` on an uncompiled pattern), or a
    diagnostic replay produced a verdict that contradicts the recorded
    one — the latter indicates an internal invariant violation and should
    be reported as a bug.
    """
