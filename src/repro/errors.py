"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch a single base class.  The hierarchy mirrors the main
stages of the pipeline: parsing text syntax, building/normalising parse
trees, checking determinism, matching words, and validating XML documents.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class RegexSyntaxError(ReproError):
    """Raised when a textual expression cannot be parsed.

    Attributes
    ----------
    text:
        The input text being parsed.
    position:
        Offset (0-based) in ``text`` where the error was detected, or
        ``None`` when the error is not tied to a single offset.
    """

    def __init__(self, message: str, text: str = "", position: int | None = None):
        super().__init__(message)
        self.text = text
        self.position = position

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.position is None:
            return base
        return f"{base} (at offset {self.position} in {self.text!r})"


class InvalidExpressionError(ReproError):
    """Raised when an AST or parse tree violates a structural requirement.

    Examples: numeric repetitions with ``low > high``, empty unions, or an
    attempt to run a paper algorithm on a tree that has not been normalised
    to satisfy restrictions (R1)-(R3).
    """


class NotDeterministicError(ReproError):
    """Raised when an operation requires a deterministic expression.

    The deterministic matchers of Section 4 are only correct on
    deterministic (one-unambiguous) expressions; constructing one of them
    from a non-deterministic expression raises this error, carrying the
    diagnostic report explaining the conflict.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class LexError(ReproError):
    """Raised by :class:`repro.lexer.Lexer` for bad rule sets or stuck input.

    Bad rule sets: a nullable rule (it would match the empty word and the
    scanner could not advance) or more rules than the tag table can hold.
    Stuck input: a position where no rule matches any prefix; ``position``
    carries the character offset for error reporting.
    """

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class AlphabetError(ReproError):
    """Raised when a word contains a symbol outside the expression alphabet.

    Matchers treat unknown symbols as an immediate mismatch by default; the
    strict APIs raise this error instead so schema authors can distinguish
    "wrong order" from "unknown element".
    """


class ValidationError(ReproError):
    """Raised for structural problems while validating an XML document."""


class XMLSyntaxError(ReproError):
    """Raised by the minimal XML parser on malformed input."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        super().__init__(message)
        self.line = line
        self.column = column

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.line is None:
            return base
        return f"{base} (line {self.line}, column {self.column})"


class DTDSyntaxError(ReproError):
    """Raised when a DTD declaration or content model cannot be parsed."""
