"""Constant-time lowest common ancestor queries.

Theorem 2.4 of the paper needs LCA queries in O(1) after linear-time
preprocessing of the parse tree (citing Harel & Tarjan / Bender &
Farach-Colton).  This module implements the Euler-tour + RMQ reduction:

* walk the tree once, recording the Euler tour (node visited every time
  the traversal enters or returns to it) and each node's depth;
* an LCA query becomes a range-minimum query on the depth array between
  the first occurrences of the two nodes.

The structure is generic over any tree exposing ``children()`` and an
integer ``index`` attribute (as :class:`repro.regex.parse_tree.TreeNode`
does), so it is reused by the skeleton builder and by test trees.
"""

from __future__ import annotations

from typing import Generic, Protocol, Sequence, TypeVar

from .rmq import SparseTableRMQ


class _TreeLike(Protocol):
    index: int

    def children(self) -> Sequence["_TreeLike"]:  # pragma: no cover - protocol
        ...


N = TypeVar("N", bound=_TreeLike)


class LCAIndex(Generic[N]):
    """Euler tour + sparse-table RMQ giving O(1) LCA on a fixed tree.

    ``nodes`` must contain every node of the tree and ``nodes[i].index``
    must equal ``i`` (the convention used by :class:`ParseTree`); the tree
    is rooted at ``root``.
    """

    __slots__ = ("root", "_nodes", "_first_occurrence", "_tour", "_rmq")

    def __init__(self, root: N, nodes: Sequence[N]):
        self.root = root
        self._nodes = nodes
        tour: list[int] = []
        depths: list[int] = []
        first: list[int] = [-1] * len(nodes)

        # Iterative Euler tour: each frame is (node, depth, next-child cursor).
        stack: list[tuple[N, int, int]] = [(root, 0, 0)]
        while stack:
            node, depth, cursor = stack.pop()
            if first[node.index] < 0:
                first[node.index] = len(tour)
            tour.append(node.index)
            depths.append(depth)
            children = node.children()
            if cursor < len(children):
                stack.append((node, depth, cursor + 1))
                stack.append((children[cursor], depth + 1, 0))

        self._tour = tour
        self._first_occurrence = first
        self._rmq = SparseTableRMQ(depths)

    def lca(self, a: N, b: N) -> N:
        """Return the lowest common ancestor of *a* and *b*."""
        ia = self._first_occurrence[a.index]
        ib = self._first_occurrence[b.index]
        if ia < 0 or ib < 0:
            raise KeyError("node does not belong to the indexed tree")
        lo, hi = (ia, ib) if ia <= ib else (ib, ia)
        winner = self._rmq.argmin(lo, hi + 1)
        return self._nodes[self._tour[winner]]

    def is_ancestor(self, ancestor: N, node: N) -> bool:
        """Reflexive ancestor test expressed through LCA (used in tests)."""
        return self.lca(ancestor, node) is ancestor

    def depth_of(self, node: N) -> int:
        """Depth of *node* (root has depth 0)."""
        return self._rmq.values[self._first_occurrence[node.index]]

    def __len__(self) -> int:
        return len(self._nodes)
