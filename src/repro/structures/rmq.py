"""Sparse-table range minimum queries.

The constant-time LCA structure of Bender & Farach-Colton reduces LCA to
range-minimum queries over the Euler tour of the tree.  This module
provides the classic sparse table: ``O(n log n)`` preprocessing and
``O(1)`` per query.  (The paper's bound only needs linear preprocessing;
the ``n log n`` table is the standard practical choice and is what the
benchmarks measure.  A strictly linear variant would use the ±1 block
decomposition; the API would be identical.)
"""

from __future__ import annotations

from typing import Sequence


class SparseTableRMQ:
    """Idempotent sparse table answering argmin queries on a fixed array.

    Queries return the *index* of the minimum value in ``values[lo:hi]``
    (half-open interval); ties are broken towards the leftmost index.
    """

    __slots__ = ("values", "_table", "_log")

    def __init__(self, values: Sequence[int]):
        if len(values) == 0:
            raise ValueError("RMQ requires a non-empty array")
        self.values = list(values)
        n = len(self.values)
        # _log[i] = floor(log2(i)) for 1 <= i <= n
        log = [0] * (n + 1)
        for i in range(2, n + 1):
            log[i] = log[i >> 1] + 1
        self._log = log
        levels = log[n] + 1
        table: list[list[int]] = [list(range(n))]
        for level in range(1, levels):
            span = 1 << level
            half = span >> 1
            previous = table[level - 1]
            row = []
            for start in range(n - span + 1):
                left = previous[start]
                right = previous[start + half]
                row.append(left if self.values[left] <= self.values[right] else right)
            table.append(row)
        self._table = table

    def argmin(self, lo: int, hi: int) -> int:
        """Index of the minimum of ``values[lo:hi]`` (requires ``lo < hi``)."""
        if not 0 <= lo < hi <= len(self.values):
            raise IndexError(f"invalid RMQ range [{lo}, {hi})")
        span = hi - lo
        level = self._log[span]
        left = self._table[level][lo]
        right = self._table[level][hi - (1 << level)]
        return left if self.values[left] <= self.values[right] else right

    def min(self, lo: int, hi: int) -> int:
        """Minimum value of ``values[lo:hi]``."""
        return self.values[self.argmin(lo, hi)]

    def __len__(self) -> int:
        return len(self.values)
