"""Lowest colored ancestor queries.

Section 4.1 of the paper reduces transition simulation to the following
query: *given a node ``v`` and a color ``a``, return the lowest ancestor
of ``v`` carrying color ``a``* (nodes may carry several colors).  The
paper cites Muthukrishnan & Müller's structure with ``O(log log n)`` query
time after linear expected preprocessing.

This module implements the query through two substrates built here:

* a heavy-path decomposition of the tree
  (:class:`~repro.structures.heavy_path.HeavyPathDecomposition`), and
* one van Emde Boas predecessor structure per (heavy path, color) pair
  (:class:`~repro.structures.veb.VanEmdeBoasTree`) storing the in-path
  depths of the nodes of that color.

A query walks the heavy paths met on the way from ``v`` to the root (at
most ``O(log n)`` of them) and performs one predecessor query per path,
for a worst-case cost of ``O(log |e| · log log |e|)`` — slightly weaker
than the cited bound but with the same "effectively constant" behaviour
that experiment E5 measures; the substitution is recorded in DESIGN.md.

Nodes must expose ``children()``, ``parent`` and a dense integer
``index`` (as parse-tree nodes do).
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterable, Mapping, Sequence, TypeVar

from .heavy_path import HeavyPathDecomposition
from .veb import VanEmdeBoasTree

N = TypeVar("N")
Color = Hashable


class ColoredAncestorIndex(Generic[N]):
    """Static index answering lowest colored ancestor queries."""

    __slots__ = ("_decomposition", "_tables", "_colors_of", "_total_assignments")

    def __init__(
        self,
        root: N,
        nodes: Sequence[N],
        colors: Mapping[int, Iterable[Color]] | None = None,
    ):
        """Build the index for the tree rooted at *root*.

        *colors* maps ``node.index`` to the colors assigned to that node;
        it may be ``None``/empty and extended later with
        :meth:`assign_color` followed by :meth:`rebuild` — the determinism
        pipeline knows all colors up front, so the common path builds the
        index once.
        """
        self._decomposition = HeavyPathDecomposition(root, nodes)
        self._colors_of: dict[int, set[Color]] = {}
        self._tables: dict[tuple[int, Color], VanEmdeBoasTree] = {}
        self._total_assignments = 0
        if colors:
            for index, node_colors in colors.items():
                for color in node_colors:
                    self.assign_color(nodes[index], color)

    # -- construction -----------------------------------------------------------
    def assign_color(self, node: N, color: Color) -> None:
        """Assign *color* to *node* (idempotent)."""
        node_colors = self._colors_of.setdefault(node.index, set())
        if color in node_colors:
            return
        node_colors.add(color)
        self._total_assignments += 1
        decomposition = self._decomposition
        path_id = decomposition.path_id(node)
        key = (path_id, color)
        table = self._tables.get(key)
        if table is None:
            table = VanEmdeBoasTree(len(decomposition.paths[path_id]) + 1)
            self._tables[key] = table
        table.insert(decomposition.depth_in_path[node.index])

    def colors_of(self, node: N) -> frozenset[Color]:
        """The colors currently assigned to *node*."""
        return frozenset(self._colors_of.get(node.index, ()))

    @property
    def total_assignments(self) -> int:
        """Total number of (node, color) assignments (the paper's ``C``)."""
        return self._total_assignments

    # -- queries -----------------------------------------------------------------
    def lowest_colored_ancestor(self, node: N, color: Color) -> N | None:
        """Lowest (reflexive) ancestor of *node* carrying *color*, or ``None``."""
        decomposition = self._decomposition
        current: N | None = node
        while current is not None:
            path_id = decomposition.path_id(current)
            table = self._tables.get((path_id, color))
            if table is not None:
                depth_limit = decomposition.depth_in_path[current.index]
                hit = table.predecessor(depth_limit)
                if hit is not None:
                    return decomposition.paths[path_id][hit]
            head = decomposition.path_heads[path_id]
            current = getattr(head, "parent", None)
        return None

    def lowest_colored_ancestor_naive(self, node: N, color: Color) -> N | None:
        """Reference implementation walking parent pointers (for tests)."""
        current: N | None = node
        while current is not None:
            if color in self._colors_of.get(current.index, ()):  # type: ignore[arg-type]
                return current
            current = getattr(current, "parent", None)
        return None
