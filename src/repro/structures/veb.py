"""van Emde Boas trees: predecessor/successor queries in O(log log U).

The lowest colored ancestor structure cited by the paper (Muthukrishnan &
Müller, SODA'96) achieves its ``O(log log n)`` query time through van Emde
Boas style predecessor search.  This module implements a standard
recursive vEB tree over a universe ``{0..U-1}``:

* ``insert`` / ``delete`` / ``contains`` in ``O(log log U)``,
* ``predecessor(x)`` — greatest element ``<= x`` (``None`` if none),
* ``successor(x)`` — smallest element ``>= x`` (``None`` if none),
* ``min`` / ``max`` in ``O(1)``.

Clusters are materialised lazily in a dictionary so the memory footprint
is proportional to the number of stored keys rather than to the universe,
which matters when one structure is built per (heavy path, color) pair.
"""

from __future__ import annotations

from typing import Iterator


class VanEmdeBoasTree:
    """Integer set over ``{0..universe-1}`` with O(log log U) operations."""

    __slots__ = ("universe", "_shift", "_low_mask", "_min", "_max", "_summary", "_clusters")

    _BASE_UNIVERSE = 2

    def __init__(self, universe: int):
        if universe < 2:
            universe = 2
        self.universe = universe
        half_bits = (max(universe - 1, 1).bit_length() + 1) // 2
        self._shift = half_bits
        self._low_mask = (1 << half_bits) - 1
        self._min: int | None = None
        self._max: int | None = None
        self._summary: VanEmdeBoasTree | None = None
        self._clusters: dict[int, VanEmdeBoasTree] = {}

    # -- helpers ---------------------------------------------------------------
    def _high(self, x: int) -> int:
        return x >> self._shift

    def _low(self, x: int) -> int:
        return x & self._low_mask

    def _compose(self, high: int, low: int) -> int:
        return (high << self._shift) | low

    def _is_leaf(self) -> bool:
        return self.universe <= self._BASE_UNIVERSE

    def _cluster_universe(self) -> int:
        return self._low_mask + 1

    def _summary_universe(self) -> int:
        return (self.universe >> self._shift) + 1

    def _check(self, x: int) -> None:
        if not 0 <= x < self.universe:
            raise IndexError(f"key {x} outside universe [0, {self.universe})")

    # -- queries -----------------------------------------------------------------
    @property
    def min(self) -> int | None:
        """Smallest stored key, or ``None`` when empty."""
        return self._min

    @property
    def max(self) -> int | None:
        """Largest stored key, or ``None`` when empty."""
        return self._max

    def __bool__(self) -> bool:
        return self._min is not None

    def contains(self, x: int) -> bool:
        """Membership test."""
        self._check(x)
        if x == self._min or x == self._max:
            return True
        if self._is_leaf() or self._min is None:
            return False
        cluster = self._clusters.get(self._high(x))
        return cluster is not None and cluster.contains(self._low(x))

    __contains__ = contains

    # -- updates -----------------------------------------------------------------
    def insert(self, x: int) -> None:
        """Insert *x* (idempotent)."""
        self._check(x)
        if self._min is None:
            self._min = self._max = x
            return
        if x == self._min or x == self._max:
            return
        if x < self._min:
            x, self._min = self._min, x
        if x > self._max:
            self._max = x
        if self._is_leaf():
            return
        high, low = self._high(x), self._low(x)
        cluster = self._clusters.get(high)
        if cluster is None:
            cluster = VanEmdeBoasTree(self._cluster_universe())
            self._clusters[high] = cluster
        if cluster._min is None:
            if self._summary is None:
                self._summary = VanEmdeBoasTree(self._summary_universe())
            self._summary.insert(high)
            cluster._min = cluster._max = low
        else:
            cluster.insert(low)

    def delete(self, x: int) -> None:
        """Remove *x* if present."""
        self._check(x)
        if self._min is None:
            return
        if self._min == self._max:
            if x == self._min:
                self._min = self._max = None
            return
        if self._is_leaf():
            if x == self._min:
                self._min = self._max if self._max != x else None
                if self._min is None:
                    self._max = None
            elif x == self._max:
                self._max = self._min
            return
        if x == self._min:
            first_cluster = self._summary.min if self._summary is not None else None
            if first_cluster is None:
                self._min = self._max
                return
            low = self._clusters[first_cluster]._min
            x = self._compose(first_cluster, low)
            self._min = x
        high, low = self._high(x), self._low(x)
        cluster = self._clusters.get(high)
        if cluster is None:
            return
        cluster.delete(low)
        if cluster._min is None:
            del self._clusters[high]
            if self._summary is not None:
                self._summary.delete(high)
        if x == self._max:
            if self._summary is None or self._summary.min is None:
                self._max = self._min
            else:
                top = self._summary.max
                self._max = self._compose(top, self._clusters[top]._max)

    # -- predecessor / successor ----------------------------------------------------
    def successor(self, x: int) -> int | None:
        """Smallest stored key ``>= x`` (or ``None``)."""
        if self._min is not None and x <= self._min:
            return self._min
        return self._strict_successor(x - 1) if x > 0 else self._min

    def predecessor(self, x: int) -> int | None:
        """Largest stored key ``<= x`` (or ``None``)."""
        if self._max is not None and x >= self._max:
            return self._max
        return self._strict_predecessor(x + 1)

    def _strict_successor(self, x: int) -> int | None:
        """Smallest stored key strictly greater than *x*."""
        if self._min is None:
            return None
        if x < self._min:
            return self._min
        if self._is_leaf():
            if x < (self._max or -1) and self._max is not None and self._max > x:
                return self._max
            return None
        high, low = self._high(x), self._low(x)
        cluster = self._clusters.get(high)
        if cluster is not None and cluster._max is not None and low < cluster._max:
            return self._compose(high, cluster._strict_successor(low))
        next_cluster = self._summary._strict_successor(high) if self._summary is not None else None
        if next_cluster is None:
            return None
        return self._compose(next_cluster, self._clusters[next_cluster]._min)

    def _strict_predecessor(self, x: int) -> int | None:
        """Largest stored key strictly less than *x*."""
        if self._max is None:
            return None
        if x > self._max:
            return self._max
        if self._is_leaf():
            if self._min is not None and self._min < x:
                return self._min
            return None
        high, low = self._high(x), self._low(x)
        cluster = self._clusters.get(high)
        if cluster is not None and cluster._min is not None and low > cluster._min:
            return self._compose(high, cluster._strict_predecessor(low))
        previous_cluster = (
            self._summary._strict_predecessor(high) if self._summary is not None else None
        )
        if previous_cluster is None:
            if self._min is not None and self._min < x:
                return self._min
            return None
        return self._compose(previous_cluster, self._clusters[previous_cluster]._max)

    # -- iteration -------------------------------------------------------------------
    def __iter__(self) -> Iterator[int]:
        """Iterate over stored keys in increasing order."""
        current = self._min
        while current is not None:
            yield current
            current = self._strict_successor(current)
