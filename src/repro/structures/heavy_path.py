"""Heavy-path decomposition of a rooted tree.

A heavy-path decomposition partitions the nodes of a tree into vertical
paths such that every root-to-node path intersects O(log n) of them: each
internal node picks the child with the largest subtree as its *heavy*
child; maximal chains of heavy edges form the paths.

The decomposition is used by the lowest colored ancestor structure
(:mod:`repro.structures.colored_ancestor`): a query walks the O(log n)
heavy paths above a node and performs one predecessor query per path.
The paper mentions that Hagenah & Muscholl's earlier construction is also
based on a heavy-path decomposition of the parse tree, so the structure
doubles as a faithful piece of the related-work machinery.

Like :class:`~repro.structures.lca.LCAIndex`, the implementation is
generic over nodes exposing ``children()`` and a dense integer ``index``.
"""

from __future__ import annotations

from typing import Generic, Sequence, TypeVar

N = TypeVar("N")


class HeavyPathDecomposition(Generic[N]):
    """Heavy-path decomposition with O(1) path lookup per node.

    Attributes
    ----------
    path_of:
        ``path_of[node.index]`` is the id of the heavy path containing the
        node.
    depth_in_path:
        Depth of the node within its path (0 for the path head).
    path_heads:
        For each path id, the topmost (shallowest) node of the path.
    paths:
        For each path id, the list of its nodes from head to foot.
    """

    __slots__ = ("root", "_nodes", "path_of", "depth_in_path", "path_heads", "paths", "depth")

    def __init__(self, root: N, nodes: Sequence[N]):
        self.root = root
        self._nodes = nodes
        size = [1] * len(nodes)
        order = self._preorder(root)
        # Subtree sizes bottom-up.
        for node in reversed(order):
            for child in node.children():
                size[node.index] += size[child.index]

        self.path_of = [-1] * len(nodes)
        self.depth_in_path = [0] * len(nodes)
        self.depth = [0] * len(nodes)
        self.path_heads: list[N] = []
        self.paths: list[list[N]] = []

        # Walk top-down: the heavy child continues the parent's path, every
        # other child starts a new path.
        stack: list[tuple[N, int, int]] = [(root, self._new_path(root), 0)]
        while stack:
            node, path_id, node_depth = stack.pop()
            self.path_of[node.index] = path_id
            self.depth[node.index] = node_depth
            self.depth_in_path[node.index] = len(self.paths[path_id])
            self.paths[path_id].append(node)
            children = list(node.children())
            if not children:
                continue
            heavy = max(children, key=lambda child: size[child.index])
            for child in children:
                if child is heavy:
                    stack.append((child, path_id, node_depth + 1))
                else:
                    stack.append((child, self._new_path(child), node_depth + 1))

    def _new_path(self, head: N) -> int:
        path_id = len(self.paths)
        self.paths.append([])
        self.path_heads.append(head)
        return path_id

    @staticmethod
    def _preorder(root: N) -> list[N]:
        order: list[N] = []
        stack: list[N] = [root]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(reversed(node.children()))
        return order

    # -- queries --------------------------------------------------------------
    def path_id(self, node: N) -> int:
        """Id of the heavy path containing *node*."""
        return self.path_of[node.index]

    def head(self, node: N) -> N:
        """Topmost node of the heavy path containing *node*."""
        return self.path_heads[self.path_of[node.index]]

    def path_count(self) -> int:
        """Number of heavy paths in the decomposition."""
        return len(self.paths)

    def paths_to_root(self, node: N) -> list[int]:
        """Ids of the heavy paths met while walking from *node* to the root.

        The length of this list is O(log n); the lowest colored ancestor
        query performs one predecessor lookup per returned path.
        """
        ids: list[int] = []
        current: N | None = node
        while current is not None:
            path_id = self.path_of[current.index]
            ids.append(path_id)
            current = getattr(self.path_heads[path_id], "parent", None)
        return ids
