"""Algorithmic substrates: LCA, RMQ, lazy arrays, vEB trees, colored ancestors.

These data structures are the building blocks the paper's linear-time
algorithms rely on; they are implemented from scratch (no external
dependencies) and tested independently of the regular-expression layers.
"""

from .colored_ancestor import ColoredAncestorIndex
from .heavy_path import HeavyPathDecomposition
from .lazy_array import LazyArray
from .lca import LCAIndex
from .rmq import SparseTableRMQ
from .veb import VanEmdeBoasTree

__all__ = [
    "ColoredAncestorIndex",
    "HeavyPathDecomposition",
    "LCAIndex",
    "LazyArray",
    "SparseTableRMQ",
    "VanEmdeBoasTree",
]
