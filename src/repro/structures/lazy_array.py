"""Lazy arrays: associative arrays with constant-time initialisation and reset.

Section 4.3 of the paper stores the ``h`` pointers of the path
decomposition algorithm in *lazy arrays*: arrays over a key space
``{0..N-1}`` supporting assignment, lookup **and whole-array reset** in
constant time.  The trick (folklore, credited in the paper to programming
references [17, 22]) keeps three arrays:

* ``A[k]`` — the stored values,
* ``F[c]`` — the c-th key that became active,
* ``B[k]`` — the index in ``F`` where key ``k`` was activated,

plus a counter ``C`` of active keys.  Key ``k`` is *active* iff
``1 <= B[k] <= C`` and ``F[B[k]] == k``; inactive keys read as ``Null``
even though ``A``/``B`` may contain stale garbage from before a reset.

Python cannot allocate genuinely uninitialised memory, so ``__init__`` is
O(N); everything else — including :meth:`reset` — is O(1), which is the
property the algorithms rely on (the paper itself remarks that hash maps
are the practical alternative and that only the constant-time *reset* is
unmatched).  The structure is also used by the star-free multi-word
matcher to clear per-symbol scratch state between words.
"""

from __future__ import annotations

from typing import Generic, Iterator, TypeVar

V = TypeVar("V")


class LazyArray(Generic[V]):
    """Associative array over integer keys ``0..size-1`` with O(1) reset."""

    __slots__ = ("_size", "_values", "_activation_order", "_activation_index", "_active_count")

    def __init__(self, size: int):
        if size < 0:
            raise ValueError("size must be non-negative")
        self._size = size
        self._values: list[V | None] = [None] * size
        self._activation_order: list[int] = [0] * size  # the F array
        self._activation_index: list[int] = [0] * size  # the B array
        self._active_count = 0  # the C counter

    # -- core operations ------------------------------------------------------
    def assign(self, key: int, value: V) -> None:
        """Set ``A[key] = value``, activating the key if necessary (O(1))."""
        self._check(key)
        if not self._is_active(key):
            self._activation_order[self._active_count] = key
            self._activation_index[key] = self._active_count
            self._active_count += 1
        self._values[key] = value

    def lookup(self, key: int) -> V | None:
        """Return the value stored for *key*, or ``None`` when inactive (O(1))."""
        self._check(key)
        if self._is_active(key):
            return self._values[key]
        return None

    def reset(self) -> None:
        """Deactivate every key in O(1) by clearing the counter."""
        self._active_count = 0

    def delete(self, key: int) -> None:
        """Deactivate a single key (O(1)); other keys are unaffected."""
        self._check(key)
        if not self._is_active(key):
            return
        slot = self._activation_index[key]
        last = self._active_count - 1
        moved = self._activation_order[last]
        self._activation_order[slot] = moved
        self._activation_index[moved] = slot
        self._active_count = last

    # -- conveniences ----------------------------------------------------------
    def __setitem__(self, key: int, value: V) -> None:
        self.assign(key, value)

    def __getitem__(self, key: int) -> V | None:
        return self.lookup(key)

    def __contains__(self, key: int) -> bool:
        return 0 <= key < self._size and self._is_active(key)

    def __len__(self) -> int:
        """Number of active keys."""
        return self._active_count

    @property
    def size(self) -> int:
        """The size of the key space (fixed at construction)."""
        return self._size

    def active_keys(self) -> Iterator[int]:
        """Iterate over the active keys in activation order."""
        for slot in range(self._active_count):
            yield self._activation_order[slot]

    def items(self) -> Iterator[tuple[int, V]]:
        """Iterate over ``(key, value)`` pairs of active keys."""
        for key in self.active_keys():
            yield key, self._values[key]  # type: ignore[misc]

    # -- internals --------------------------------------------------------------
    def _is_active(self, key: int) -> bool:
        slot = self._activation_index[key]
        return slot < self._active_count and self._activation_order[slot] == key

    def _check(self, key: int) -> None:
        if not 0 <= key < self._size:
            raise IndexError(f"key {key} outside the key space [0, {self._size})")
