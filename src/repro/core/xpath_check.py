"""The alternative determinism characterisation behind Theorem 3.6.

Section 3.4 shows determinism is expressible by a fixed Regular-XPath
formula with data-value comparisons, evaluated over the parse tree with
position labels stored as data values:

    ``ϕ_det = ¬( ϕ_P1 ∨ ϕ·· ∨ ϕ·∗ ∨ ϕ∗· ∨ ϕ∗∗ )``

where ``ϕ_P1`` detects violations of property (P1) and each ``ϕ_ℓℓ'``
detects two distinct, equally-labelled positions ``p1, p2`` such that some
position ``p`` reaches ``p1`` through a Follow edge of kind ``ℓ``
(concatenation or star) and ``p2`` through a Follow edge of kind ``ℓ'``.

This module implements that characterisation *directly* as a reference
check: every disjunct is evaluated with the constant-time Follow
primitives of :class:`~repro.core.follow.FollowIndex` by explicit
enumeration, so its cost is quadratic-to-cubic in the number of positions.
It deliberately does **not** implement Bojańczyk & Parys' linear-time
Regular-XPath evaluator — the point of keeping it in the library is to
have a third, structurally different determinism decision procedure for
cross-validation (oracle vs. linear test vs. this characterisation), and
to document precisely which disjunct fires for a non-deterministic
expression.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..regex.ast import Regex
from ..regex.parse_tree import ParseTree, TreeNode, build_parse_tree
from .follow import FollowIndex


@dataclass(frozen=True, slots=True)
class XPathCheckResult:
    """Which disjunct of ``ϕ_det``'s negation (if any) is satisfied."""

    deterministic: bool
    #: one of None, "P1", "concat-concat", "concat-star", "star-concat", "star-star"
    violated_disjunct: str | None = None
    witnesses: tuple[TreeNode, ...] = ()

    def __bool__(self) -> bool:
        return self.deterministic


def xpath_determinism_check(expr: Regex | ParseTree | str) -> XPathCheckResult:
    """Evaluate the Theorem 3.6 characterisation on *expr* (reference check)."""
    tree = expr if isinstance(expr, ParseTree) else build_parse_tree(expr)
    follow = FollowIndex(tree)

    p1 = _phi_p1(tree)
    if p1 is not None:
        return XPathCheckResult(False, "P1", p1)

    positions = tree.positions
    # Group positions by label so only same-labelled pairs are enumerated.
    by_label: dict[str, list[TreeNode]] = {}
    for position in positions:
        by_label.setdefault(position.symbol, []).append(position)

    checks = (
        ("concat-concat", follow.follows_via_concat, follow.follows_via_concat),
        ("concat-star", follow.follows_via_concat, follow.follows_via_star),
        ("star-concat", follow.follows_via_star, follow.follows_via_concat),
        ("star-star", follow.follows_via_star, follow.follows_via_star),
    )
    for label, group in by_label.items():
        if len(group) < 2:
            continue
        for i, first in enumerate(group):
            for second in group[i + 1:]:
                for name, via_first, via_second in checks:
                    witness = _common_source(positions, first, second, via_first, via_second)
                    if witness is not None:
                        return XPathCheckResult(False, name, (witness, first, second))
        del label
    return XPathCheckResult(True)


def _phi_p1(tree: ParseTree) -> tuple[TreeNode, TreeNode] | None:
    """The ``ϕ_P1`` disjunct: two same-labelled positions sharing their pSupFirst node."""
    seen: dict[tuple[int, str], TreeNode] = {}
    for position in tree.positions:
        sup_first = position.p_sup_first
        if sup_first is None:
            continue
        key = (sup_first.index, position.symbol)
        other = seen.get(key)
        if other is not None:
            return (other, position)
        seen[key] = position
    return None


def _common_source(positions, first, second, via_first, via_second) -> TreeNode | None:
    """A position reaching *first* via one Follow kind and *second* via the other."""
    for source in positions:
        if via_first(source, first) and via_second(source, second):
            return source
        if via_first(source, second) and via_second(source, first):
            return source
    return None
