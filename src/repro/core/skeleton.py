"""Colors, witnesses and per-symbol skeleta (Section 3.1, Algorithm 1).

The linear-time determinism test and the lowest-colored-ancestor matcher
share a decomposition of the parse tree built here:

* **Colors / witnesses** — for every position ``p`` (labelled ``a``), the
  node ``parent(pSupFirst(p))`` receives color ``a`` with witness ``p``
  (Lemma 2.5 guarantees that the a-labelled followers of any position are
  witnesses at its ancestors).  Property (P1) — positions sharing their
  ``pSupFirst`` node have distinct labels — makes witnesses unique per
  (node, color); its violation is itself a proof of non-determinism.

* **a-skeleta** — for each symbol ``a``, the tree induced by the class-a
  nodes (a-positions, a-colored nodes and their iterated LCAs) plus their
  ``pSupLast``/``pStar`` nodes.  The total size of all skeleta is O(|e|)
  (Lemma 3.1).

* **FirstPos / Next** — each skeleton node ``n`` carries the unique
  a-position in ``First(n)`` (if any) and the set ``Next(n, a)`` of
  a-positions in ``FollowAfter(n)``, computed by ``BuildNext``
  (Algorithm 1).  ``BuildNext`` aborts with an overflow when it can prove
  non-determinism on the fly, and property (P2) — every ``Next`` set has
  at most one element — is checked as the sets are produced.

Everything is computed in one pass over all skeleta, i.e. in O(|e|).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..regex.alphabet import START_SENTINEL
from ..regex.parse_tree import NodeKind, ParseTree, TreeNode
from .follow import FollowIndex


class SkeletonNode:
    """A node of one a-skeleton: a parse-tree node plus skeleton links and data."""

    __slots__ = ("enode", "parent", "left", "right", "witness", "first_pos", "next_positions")

    def __init__(self, enode: TreeNode):
        self.enode = enode
        self.parent: SkeletonNode | None = None
        self.left: SkeletonNode | None = None
        self.right: SkeletonNode | None = None
        #: witness for the color at this node (a position), if the node is colored
        self.witness: TreeNode | None = None
        #: the unique a-labelled position in First(enode), if any
        self.first_pos: TreeNode | None = None
        #: the a-labelled positions in FollowAfter(enode) — at most one if (P2) holds
        self.next_positions: tuple[TreeNode, ...] = ()

    @property
    def next_position(self) -> TreeNode | None:
        """The single element of ``Next(n, a)`` (``None`` when empty or ambiguous)."""
        if len(self.next_positions) == 1:
            return self.next_positions[0]
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<skeleton {self.enode!r}>"


class SymbolSkeleton:
    """The a-skeleton of one symbol with lookup by parse-tree node."""

    __slots__ = ("symbol", "root", "nodes", "by_enode")

    def __init__(self, symbol: str, root: SkeletonNode, nodes: list[SkeletonNode]):
        self.symbol = symbol
        self.root = root
        self.nodes = nodes
        self.by_enode: dict[int, SkeletonNode] = {node.enode.index: node for node in nodes}

    def __len__(self) -> int:
        return len(self.nodes)

    def node_for(self, enode: TreeNode) -> SkeletonNode | None:
        """The skeleton node wrapping *enode*, or ``None`` if absent."""
        return self.by_enode.get(enode.index)

    def positions(self) -> list[TreeNode]:
        """The positions labelled with this skeleton's symbol."""
        return [node.enode for node in self.nodes if node.enode.is_position]


@dataclass(frozen=True, slots=True)
class P1Violation:
    """Two equally-labelled positions sharing their ``pSupFirst`` node."""

    symbol: str
    first: TreeNode
    second: TreeNode
    sup_first: TreeNode


@dataclass(frozen=True, slots=True)
class NextOverflow:
    """``BuildNext`` accumulated more than two candidate follow positions."""

    symbol: str
    node: TreeNode
    candidates: tuple[TreeNode, ...]


@dataclass(frozen=True, slots=True)
class P2Violation:
    """A ``Next(n, a)`` set with two or more positions."""

    symbol: str
    node: TreeNode
    candidates: tuple[TreeNode, ...]


@dataclass(slots=True)
class SkeletonDiagnostics:
    """Violations discovered while building the skeleta.

    Any non-empty field proves the expression non-deterministic; the
    determinism checker turns these into user-facing reports.
    """

    p1_violations: list[P1Violation] = field(default_factory=list)
    next_overflows: list[NextOverflow] = field(default_factory=list)
    p2_violations: list[P2Violation] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no violation was recorded."""
        return not (self.p1_violations or self.next_overflows or self.p2_violations)


class SkeletonIndex:
    """Colors, witnesses, a-skeleta and the Next structure for a parse tree."""

    def __init__(self, tree: ParseTree, follow: FollowIndex | None = None):
        self.tree = tree
        self.follow = follow if follow is not None else FollowIndex(tree)
        self.diagnostics = SkeletonDiagnostics()
        #: colors per node: ``colors[node.index][symbol] -> witness position``
        self.colors: dict[int, dict[str, TreeNode]] = {}
        #: skeleton per symbol (only symbols that actually occur)
        self.skeletons: dict[str, SymbolSkeleton] = {}
        self._assign_colors()
        self._build_skeletons()

    # ------------------------------------------------------------------------------
    # Colors, witnesses and property (P1)
    # ------------------------------------------------------------------------------
    def _assign_colors(self) -> None:
        witness_by_sup_first: dict[tuple[int, str], TreeNode] = {}
        for position in self.tree.positions:
            sup_first = position.p_sup_first
            if sup_first is None:
                # Only the # sentinel: it never follows anything.
                continue
            key = (sup_first.index, position.symbol)
            earlier = witness_by_sup_first.get(key)
            if earlier is not None:
                self.diagnostics.p1_violations.append(
                    P1Violation(position.symbol, earlier, position, sup_first)
                )
                continue
            witness_by_sup_first[key] = position
            colored = sup_first.parent
            if colored is None:  # pragma: no cover - SupFirst nodes have parents
                continue
            self.colors.setdefault(colored.index, {})[position.symbol] = position

    def colored_nodes(self, symbol: str) -> list[TreeNode]:
        """The nodes carrying color *symbol*, in pre-order."""
        nodes = [
            self.tree.nodes[index]
            for index, by_symbol in self.colors.items()
            if symbol in by_symbol
        ]
        nodes.sort(key=lambda node: node.pre)
        return nodes

    def witness(self, node: TreeNode, symbol: str) -> TreeNode | None:
        """``Witness(node, symbol)`` — the witness position, if the node has the color."""
        return self.colors.get(node.index, {}).get(symbol)

    def color_assignments(self) -> Iterable[tuple[TreeNode, str]]:
        """Iterate over all (node, color) assignments (used by the matchers)."""
        for index, by_symbol in self.colors.items():
            node = self.tree.nodes[index]
            for symbol in by_symbol:
                yield node, symbol

    # ------------------------------------------------------------------------------
    # Skeleton construction (Lemma 3.1)
    # ------------------------------------------------------------------------------
    def _build_skeletons(self) -> None:
        symbols = list(self.tree.alphabet)
        # The $ sentinel participates like an ordinary symbol: its skeleton is
        # what lets matchers decide acceptance with the same machinery.
        symbols.append(self.tree.end.symbol)
        for symbol in symbols:
            skeleton = self._build_one_skeleton(symbol)
            if skeleton is not None:
                self.skeletons[symbol] = skeleton
                self._compute_first_pos(skeleton)
                self._attach_witnesses(skeleton)
                self._build_next(skeleton)

    def _build_one_skeleton(self, symbol: str) -> SymbolSkeleton | None:
        positions = [p for p in self.tree.positions if p.symbol == symbol]
        if symbol == START_SENTINEL:
            return None
        colored = self.colored_nodes(symbol)
        base = sorted({node.index: node for node in positions + colored}.values(),
                      key=lambda node: node.pre)
        if not base:
            return None

        # Close under LCA: with the nodes sorted in pre-order it suffices to
        # add the LCA of every consecutive pair (Proposition 4.4 of [7]).
        members: dict[int, TreeNode] = {node.index: node for node in base}
        for left, right in zip(base, base[1:]):
            ancestor = self.follow.lca(left, right)
            members[ancestor.index] = ancestor
        # Add the pSupLast and pStar nodes of every class-a node; the set
        # stays closed under LCA because only ancestors are added.
        for node in list(members.values()):
            for extra in (node.p_sup_last, node.p_star):
                if extra is not None:
                    members[extra.index] = extra

        ordered = sorted(members.values(), key=lambda node: node.pre)
        skeleton_nodes = [SkeletonNode(node) for node in ordered]
        self._link_skeleton(skeleton_nodes)
        return SymbolSkeleton(symbol, skeleton_nodes[0], skeleton_nodes)

    @staticmethod
    def _link_skeleton(nodes: list[SkeletonNode]) -> None:
        """Attach parent/left/right pointers among pre-order sorted skeleton nodes."""
        stack: list[SkeletonNode] = []
        for node in nodes:
            while stack and not stack[-1].enode.is_ancestor_of(node.enode):
                stack.pop()
            if stack:
                parent = stack[-1]
                node.parent = parent
                # Left or right child according to which parse-tree subtree of
                # the parent contains the node.
                if parent.enode.left is not None and parent.enode.left.is_ancestor_of(node.enode):
                    parent.left = node
                else:
                    parent.right = node
            stack.append(node)

    # ------------------------------------------------------------------------------
    # FirstPos and witnesses
    # ------------------------------------------------------------------------------
    def _compute_first_pos(self, skeleton: SymbolSkeleton) -> None:
        """Bottom-up computation of ``FirstPos(n, a)`` on one skeleton."""
        in_first = self.follow.in_first
        symbol = skeleton.symbol
        for node in reversed(skeleton.nodes):  # children before parents (pre-order list)
            candidates: list[TreeNode] = []
            if node.enode.is_position and node.enode.symbol == symbol:
                candidates.append(node.enode)
            for child in (node.left, node.right):
                if child is not None and child.first_pos is not None:
                    candidates.append(child.first_pos)
            for candidate in candidates:
                if in_first(node.enode, candidate):
                    node.first_pos = candidate
                    break

    def _attach_witnesses(self, skeleton: SymbolSkeleton) -> None:
        for node in skeleton.nodes:
            node.witness = self.witness(node.enode, skeleton.symbol)

    # ------------------------------------------------------------------------------
    # BuildNext (Algorithm 1) and property (P2)
    # ------------------------------------------------------------------------------
    def _build_next(self, skeleton: SymbolSkeleton) -> None:
        """Iterative version of Algorithm 1 (the recursion is a plain DFS)."""
        symbol = skeleton.symbol
        stack: list[tuple[SkeletonNode, tuple[TreeNode, ...]]] = [(skeleton.root, ())]
        while stack:
            node, inherited = stack.pop()
            enode = node.enode
            candidates = () if enode.sup_last else inherited

            parent = node.parent
            if (
                parent is not None
                and parent.enode.kind is NodeKind.CONCAT
                and parent.left is node
                and parent.right is not None
                and (not enode.sup_last or parent.enode is enode.parent)
            ):
                sibling_first = parent.right.first_pos
                if sibling_first is not None:
                    candidates = _add(candidates, sibling_first)

            node.next_positions = tuple(
                p for p in candidates if not enode.is_ancestor_of(p)
            )
            if len(node.next_positions) > 1:
                self.diagnostics.p2_violations.append(
                    P2Violation(symbol, enode, node.next_positions)
                )

            if enode.is_iteration and node.first_pos is not None:
                candidates = _add(candidates, node.first_pos)

            if len(candidates) > 2:
                self.diagnostics.next_overflows.append(
                    NextOverflow(symbol, enode, candidates)
                )
                # The expression is already known to be non-deterministic;
                # keep only two candidates so the traversal stays linear.
                candidates = candidates[:2]

            if node.left is not None:
                stack.append((node.left, candidates))
            if node.right is not None:
                stack.append((node.right, candidates))

    # ------------------------------------------------------------------------------
    # Lookups used by the determinism checker and the matchers
    # ------------------------------------------------------------------------------
    def skeleton_for(self, symbol: str) -> SymbolSkeleton | None:
        """The a-skeleton for *symbol*, or ``None`` when the symbol does not occur."""
        return self.skeletons.get(symbol)

    def first_pos(self, node: TreeNode, symbol: str) -> TreeNode | None:
        """``FirstPos(node, symbol)`` if *node* belongs to the symbol's skeleton."""
        skeleton = self.skeletons.get(symbol)
        if skeleton is None:
            return None
        skeleton_node = skeleton.node_for(node)
        return skeleton_node.first_pos if skeleton_node is not None else None

    def next_position(self, node: TreeNode, symbol: str) -> TreeNode | None:
        """``Next(node, symbol)`` (None when empty, absent or ambiguous)."""
        skeleton = self.skeletons.get(symbol)
        if skeleton is None:
            return None
        skeleton_node = skeleton.node_for(node)
        return skeleton_node.next_position if skeleton_node is not None else None

    def total_skeleton_size(self) -> int:
        """Total number of skeleton nodes over all symbols (O(|e|), Lemma 3.1)."""
        return sum(len(skeleton) for skeleton in self.skeletons.values())


def _add(candidates: tuple[TreeNode, ...], position: TreeNode) -> tuple[TreeNode, ...]:
    """Add *position* to the small candidate tuple, keeping it duplicate-free."""
    if position in candidates:
        return candidates
    return candidates + (position,)
