"""The paper's core contribution: linear-time determinism machinery.

* :mod:`repro.core.follow` — constant-time follow queries (Theorem 2.4),
* :mod:`repro.core.skeleton` — colors, witnesses and a-skeleta (Section 3.1),
* :mod:`repro.core.determinism` — the linear-time determinism test (Theorem 3.5),
* :mod:`repro.core.numeric` — determinism with numeric occurrence indicators (Section 3.3),
* :mod:`repro.core.xpath_check` — the Regular-XPath alternative test (Theorem 3.6).
"""

from .determinism import (
    DeterminismChecker,
    DeterminismConflict,
    DeterminismReport,
    check_deterministic,
    is_deterministic,
)
from .follow import FollowIndex
from .skeleton import SkeletonIndex, SkeletonNode, SymbolSkeleton

__all__ = [
    "DeterminismChecker",
    "DeterminismConflict",
    "DeterminismReport",
    "FollowIndex",
    "SkeletonIndex",
    "SkeletonNode",
    "SymbolSkeleton",
    "check_deterministic",
    "is_deterministic",
]
