"""Constant-time follow queries (Theorem 2.4).

After O(|e|) preprocessing — the LCA index plus the ``pSupFirst``,
``pSupLast`` and ``pStar`` pointers already carried by the parse tree —
the question *"does position q follow position p?"* is answered in O(1)
by combining Lemma 2.2 (a position follows another either through the
concatenation at their LCA or through the lowest star above it) with
Lemma 2.3 (membership in First/Last sets reduces to ancestor tests on the
``pSupFirst``/``pSupLast`` pointers).

The index also exposes the two Lemma 2.3 membership tests directly
(:meth:`FollowIndex.in_first`, :meth:`FollowIndex.in_last`) because the
matchers of Section 4 use them on internal nodes, and the two "ways of
following" separately (:meth:`follows_via_concat`,
:meth:`follows_via_star`) because the star-free matcher only needs the
concatenation case.
"""

from __future__ import annotations

from ..regex.parse_tree import NodeKind, ParseTree, TreeNode
from ..structures.lca import LCAIndex


class FollowIndex:
    """O(1) ``checkIfFollow`` and First/Last membership for one parse tree."""

    __slots__ = ("tree", "_lca")

    def __init__(self, tree: ParseTree):
        self.tree = tree
        self._lca = LCAIndex(tree.root, tree.nodes)

    # -- basic tree queries -------------------------------------------------------
    def lca(self, a: TreeNode, b: TreeNode) -> TreeNode:
        """Lowest common ancestor of two nodes, O(1)."""
        return self._lca.lca(a, b)

    # -- Lemma 2.3 -----------------------------------------------------------------
    def in_first(self, node: TreeNode, position: TreeNode) -> bool:
        """``position ∈ First(node)`` — Lemma 2.3(1).

        ``pSupFirst(p) ≼ n ≼ p``; a position with no SupFirst ancestor (only
        the ``#`` sentinel) belongs to the First set of all its ancestors.
        """
        if not node.is_ancestor_of(position):
            return False
        boundary = position.p_sup_first
        return boundary is None or boundary.is_ancestor_of(node)

    def in_last(self, node: TreeNode, position: TreeNode) -> bool:
        """``position ∈ Last(node)`` — Lemma 2.3(2)."""
        if not node.is_ancestor_of(position):
            return False
        boundary = position.p_sup_last
        return boundary is None or boundary.is_ancestor_of(node)

    # -- Lemma 2.2 / Theorem 2.4 -----------------------------------------------------
    def follows_via_concat(self, p: TreeNode, q: TreeNode) -> bool:
        """Case (1) of Lemma 2.2: q follows p through the concatenation at their LCA."""
        meeting = self._lca.lca(p, q)
        if meeting.kind is not NodeKind.CONCAT:
            return False
        return self.in_last(meeting.left, p) and self.in_first(meeting.right, q)

    def follows_via_star(self, p: TreeNode, q: TreeNode) -> bool:
        """Case (2) of Lemma 2.2: q follows p through the lowest iteration above their LCA."""
        meeting = self._lca.lca(p, q)
        loop = meeting.p_star
        if loop is None:
            return False
        return self.in_last(loop, p) and self.in_first(loop, q)

    def follows(self, p: TreeNode, q: TreeNode) -> bool:
        """``checkIfFollow(p, q)`` of Theorem 2.4, in O(1).

        ``p`` and ``q`` must be positions of the tree; ``q`` may be the
        ``$`` sentinel (this is how matchers test acceptance) and ``p`` may
        be the ``#`` sentinel (this is how matching starts).
        """
        meeting = self._lca.lca(p, q)
        if (
            meeting.kind is NodeKind.CONCAT
            and self.in_last(meeting.left, p)
            and self.in_first(meeting.right, q)
        ):
            return True
        loop = meeting.p_star
        if loop is None:
            return False
        return self.in_last(loop, p) and self.in_first(loop, q)

    def follows_maybe(self, p: TreeNode, q: TreeNode | None) -> bool:
        """Like :meth:`follows` but tolerating ``q is None`` (returns False).

        The matchers probe candidate positions that may be absent
        (``h(x, a)`` of Algorithm 3, ``Next(n, a)`` of the skeletons); this
        wrapper keeps their code close to the paper's pseudocode.
        """
        return q is not None and self.follows(p, q)

    # -- expected-next sets (diagnostics) -----------------------------------------------
    def next_positions(self, position: TreeNode) -> list[TreeNode]:
        """The non-sentinel positions that may follow *position*, left to right.

        A linear scan of the position list with the O(1) ``follows`` test;
        this is the diagnostic counterpart of the matchers' constant-time
        probes and is only used off the hot path (error reporting).
        """
        tree = self.tree
        start, end = tree.start, tree.end
        return [
            q
            for q in tree.positions
            if q is not start and q is not end and self.follows(position, q)
        ]

    def next_symbols(self, position: TreeNode) -> tuple[str, ...]:
        """Sorted symbols that may follow *position* — the expected-next set.

        Every Glushkov position is both accessible and co-accessible (the
        normalised trees contain no empty-language construct), so this is
        exactly the set of symbols extending some viable continuation at
        *position*.
        """
        return tuple(sorted({q.symbol for q in self.next_positions(position)}))

    # -- acceptance helper --------------------------------------------------------------
    def accepts_at(self, position: TreeNode) -> bool:
        """True when the expression may end right after *position*.

        This is ``$ ∈ Follow(position)``; with ``position`` being the ``#``
        sentinel it answers whether the empty word is accepted.
        """
        return self.follows(position, self.tree.end)
