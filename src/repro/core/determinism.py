"""The linear-time determinism test (Section 3.2, Theorem 3.5).

An expression ``e`` is deterministic iff no position has two distinct,
equally-labelled followers.  After (P1) and (P2) have been established by
the skeleton construction, Lemma 3.4 reduces the remaining conflicts to a
constant number of candidate pairs per colored node: for every node ``n``
of color ``a`` only ``Witness(n,a)``, ``FirstPos(n,a)`` and ``Next(n,a)``
can clash, and Theorem 3.5 characterises exactly when they do:

(i)  ``Witness`` / ``Next`` clash  ⇔  the right child of ``n`` is nullable
     and ``Next(n,a)`` exists;
(ii) ``Witness`` / ``FirstPos`` clash  ⇔  the right child of ``n`` is
     nullable, ``FirstPos(n,a)`` and ``pStar(n)`` exist,
     ``FirstPos(pStar(n), a) = FirstPos(n,a)`` and
     ``pSupLast(n) ≼ pStar(n)``.

(The ``FirstPos`` / ``Next`` combination reduces to the previous two and
does not need to be tested — Section 3.2.)

The public entry points return a :class:`DeterminismReport` carrying a
machine-checkable witness of non-determinism: a position ``p`` and two
equally-labelled positions that both follow ``p``.  Witness positions are
double-checked against :class:`~repro.core.follow.FollowIndex` so the
report is trustworthy even if a diagnostic were produced by the wrong
branch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..regex.ast import Regex
from ..regex.parse_tree import ParseTree, TreeNode, build_parse_tree
from .follow import FollowIndex
from .skeleton import SkeletonIndex


@dataclass(frozen=True, slots=True)
class DeterminismConflict:
    """Proof of non-determinism: two equally-labelled followers of one position.

    ``source`` is ``None`` for conflicts reported without an explicit
    common predecessor (this does not happen for the linear test, which
    always reconstructs one, but keeps the type usable by other checkers).
    """

    symbol: str
    first: TreeNode
    second: TreeNode
    source: TreeNode | None = None

    def describe(self) -> str:
        """Human-readable one-line description of the conflict."""
        location = (
            f"both follow position {self.source.position_index}"
            if self.source is not None
            else "can be reached by the same word"
        )
        return (
            f"positions {self.first.position_index} and {self.second.position_index} "
            f"are both labelled {self.symbol!r} and {location}"
        )


@dataclass(frozen=True, slots=True)
class DeterminismReport:
    """Outcome of a determinism check."""

    deterministic: bool
    #: which rule fired: "P1", "P2", "overflow", "witness-next", "witness-first"
    reason: str | None = None
    conflict: DeterminismConflict | None = None

    def __bool__(self) -> bool:
        return self.deterministic

    def describe(self) -> str:
        """Human-readable summary (used by the schema-linting example)."""
        if self.deterministic:
            return "deterministic"
        assert self.conflict is not None
        return f"non-deterministic ({self.reason}): {self.conflict.describe()}"


class DeterminismChecker:
    """Linear-time determinism test bound to one parse tree.

    The checker exposes the intermediate structures (follow index and
    skeleton index) because the matchers reuse them; constructing this
    object once is the whole O(|e|) preprocessing of Theorems 3.5 and 4.2.
    """

    def __init__(self, tree: ParseTree, follow: FollowIndex | None = None):
        self.tree = tree
        self.follow = follow if follow is not None else FollowIndex(tree)
        self.skeletons = SkeletonIndex(tree, self.follow)
        self._report: DeterminismReport | None = None

    # -- public API ------------------------------------------------------------------
    def report(self) -> DeterminismReport:
        """Run (or return the cached) determinism check."""
        if self._report is None:
            self._report = self._check()
        return self._report

    def is_deterministic(self) -> bool:
        """True when the expression is deterministic."""
        return self.report().deterministic

    # -- the test ---------------------------------------------------------------------
    def _check(self) -> DeterminismReport:
        diagnostics = self.skeletons.diagnostics

        if diagnostics.p1_violations:
            violation = diagnostics.p1_violations[0]
            source = self._common_predecessor(violation.first, violation.second)
            conflict = DeterminismConflict(
                violation.symbol, violation.first, violation.second, source
            )
            return DeterminismReport(False, "P1", conflict)

        if diagnostics.p2_violations:
            violation = diagnostics.p2_violations[0]
            first, second = violation.candidates[0], violation.candidates[1]
            source = self._common_predecessor(first, second)
            conflict = DeterminismConflict(violation.symbol, first, second, source)
            return DeterminismReport(False, "P2", conflict)

        if diagnostics.next_overflows:
            violation = diagnostics.next_overflows[0]
            first, second = self._pick_conflicting_pair(violation.candidates)
            source = self._common_predecessor(first, second)
            conflict = DeterminismConflict(violation.symbol, first, second, source)
            return DeterminismReport(False, "overflow", conflict)

        # CheckNode (Algorithm 2) on every colored node.
        for node, symbol in self.skeletons.color_assignments():
            outcome = self._check_node(node, symbol)
            if outcome is not None:
                return outcome
        return DeterminismReport(True)

    def _check_node(self, node: TreeNode, symbol: str) -> DeterminismReport | None:
        """Theorem 3.5 statements (i)/(ii) for one colored node."""
        right = node.right
        if right is None or not right.nullable:
            return None

        witness = self.skeletons.witness(node, symbol)
        if witness is None:  # pragma: no cover - colored nodes always have witnesses
            return None

        # (i) Witness and Next both follow any position in Last(Lchild(n)).
        next_position = self.skeletons.next_position(node, symbol)
        if next_position is not None and next_position is not witness:
            source = self._last_position_of(node.left)
            conflict = DeterminismConflict(symbol, witness, next_position, source)
            return DeterminismReport(False, "witness-next", conflict)

        # (ii) Witness and FirstPos both follow such a position when the loop
        # through pStar(n) can come back to FirstPos without leaving the star.
        first_pos = self.skeletons.first_pos(node, symbol)
        loop = node.p_star
        if (
            first_pos is not None
            and first_pos is not witness
            and loop is not None
            and self.skeletons.first_pos(loop, symbol) is first_pos
            and (node.p_sup_last is None or node.p_sup_last.is_ancestor_of(loop))
        ):
            source = self._last_position_of(node.left)
            conflict = DeterminismConflict(symbol, witness, first_pos, source)
            return DeterminismReport(False, "witness-first", conflict)
        return None

    # -- conflict reconstruction helpers -------------------------------------------------
    def _last_position_of(self, node: TreeNode | None) -> TreeNode | None:
        """Some position in ``Last(node)`` (used as the conflict's common predecessor).

        The rightmost position of a subtree always belongs to its Last set
        (for a concatenation Last always contains Last of the right child,
        for a union both children contribute, and unary nodes inherit the
        child's Last set), so a simple rightmost descent suffices.
        """
        if node is None:
            return None
        current = node
        while not current.is_position:
            current = current.right if current.right is not None else current.left
        return current

    def _pick_conflicting_pair(self, candidates: Sequence[TreeNode]) -> tuple[TreeNode, TreeNode]:
        """Pick two candidates that genuinely share a predecessor, if possible."""
        for i in range(len(candidates)):
            for j in range(i + 1, len(candidates)):
                if self._common_predecessor(candidates[i], candidates[j]) is not None:
                    return candidates[i], candidates[j]
        return candidates[0], candidates[1]

    def _common_predecessor(self, first: TreeNode, second: TreeNode) -> TreeNode | None:
        """Find a position followed by both *first* and *second* (brute force).

        Only used to decorate error reports, so the linear-time bound of the
        yes/no answer is unaffected.
        """
        for position in self.tree.positions:
            if self.follow.follows(position, first) and self.follow.follows(position, second):
                return position
        return None


# ---------------------------------------------------------------------------
# Convenience functions
# ---------------------------------------------------------------------------

def check_deterministic(expr: Regex | ParseTree | str) -> DeterminismReport:
    """Run the linear-time determinism test on *expr* and return the report."""
    tree = expr if isinstance(expr, ParseTree) else build_parse_tree(expr)
    return DeterminismChecker(tree).report()


def is_deterministic(expr: Regex | ParseTree | str) -> bool:
    """True when *expr* is a deterministic (one-unambiguous) expression."""
    return check_deterministic(expr).deterministic
