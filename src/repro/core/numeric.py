"""Determinism of expressions with numeric occurrence indicators (Section 3.3).

XML Schema particles carry ``minOccurs``/``maxOccurs`` counters, written
``e{i..j}`` in the paper.  Determinism must then account for the counter
semantics: ``(ab){2,2} a (b+d)`` is deterministic (after ``ab`` the counter
forces a loop, after ``abab`` it forces an exit, so the two ``a`` positions
never compete), while ``(ab){1,2} a`` is not, and nested counters can
interact — the paper quotes ``((a{2..3}+b){2}){2} b`` as non-deterministic
because the number of inner iterations consumed by ``a⁸`` is ambiguous.

The paper reduces this to Kilpeläinen & Tuhkanen's notion of *flexible*
iterators and states that the same skeleton machinery then yields an
O(|e|) test, but it defers the exact characterisation to [19] (not part of
the text).  This module reconstructs the analysis:

* an iterator ``f{i..j}`` is **flexible** when looping and exiting can be
  simultaneously possible — we use ``j > i``, ``f`` nullable, or the
  number of iterations of ``f`` not being determined by the word.  The
  last point is approximated soundly by a *constant-multiplicity* check:
  if some symbol occurs the same number of times (≥ 1) in every word of
  ``L(f)``, the iteration count is determined (count-rigid);
* the follow relation is computed syntax-directed with the counter-aware
  rule: a flexible iterator contributes its loop followers to the ordinary
  follow sets (like a star), a rigid one (``i = j ≥ 2``) only requires its
  loop followers to be label-disjoint from the followers *inside* the
  iterator body — loop and exit are mutually exclusive for rigid counters
  and are therefore never compared.

The test is exact on every example discussed in the paper and in [19]'s
abstract; because the count-rigidity test is sufficient but not necessary,
it may flag as non-deterministic some exotic rigid nestings that a full
implementation of [19, Theorem 5.5] would accept.  The direction of the
approximation (never accepting a truly ambiguous expression) and the
O(σ|e|) cost of the constant-multiplicity maps are recorded in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InvalidExpressionError
from ..regex.ast import (
    Concat,
    Epsilon,
    Optional as OptionalNode,
    Plus,
    Regex,
    Repeat,
    Star,
    Sym,
    Union,
    UNBOUNDED,
)
from ..regex.parser import parse

#: Marker for "unbounded" in occurrence-count intervals.
_INF = float("inf")


@dataclass(frozen=True, slots=True)
class NumericPosition:
    """A position (leaf) of a numeric expression."""

    index: int
    symbol: str


@dataclass(frozen=True, slots=True)
class NumericConflict:
    """Two equally-labelled positions reachable after the same prefix."""

    symbol: str
    first: NumericPosition
    second: NumericPosition
    via: str  # "follow", "loop", or "first"

    def describe(self) -> str:
        return (
            f"positions {self.first.index} and {self.second.index} "
            f"({self.symbol!r}) compete ({self.via})"
        )


@dataclass(frozen=True, slots=True)
class NumericDeterminismReport:
    """Outcome of the counter-aware determinism check."""

    deterministic: bool
    conflict: NumericConflict | None = None

    def __bool__(self) -> bool:
        return self.deterministic

    def describe(self) -> str:
        if self.deterministic:
            return "deterministic (with numeric occurrence indicators)"
        assert self.conflict is not None
        return f"non-deterministic: {self.conflict.describe()}"


class _Node:
    """Internal mutable node used by the analysis (the AST itself is immutable)."""

    __slots__ = (
        "kind", "symbol", "low", "high", "children",
        "nullable", "first", "last", "counts", "flexible", "position",
    )

    def __init__(self, kind: str, symbol: str | None = None,
                 low: int = 0, high: int | None = None):
        self.kind = kind
        self.symbol = symbol
        self.low = low
        self.high = high
        self.children: list[_Node] = []
        self.nullable = False
        self.first: list[int] = []
        self.last: list[int] = []
        #: per-symbol (min, max) multiplicities over L(subexpression)
        self.counts: dict[str, tuple[float, float]] = {}
        self.flexible = False
        self.position: int | None = None


class NumericDeterminismChecker:
    """Counter-aware determinism analysis of one expression."""

    def __init__(self, expr: Regex | str):
        if isinstance(expr, str):
            expr = parse(expr)
        # The analysis works directly on the user's AST: epsilon, ``+`` and
        # ``{i,j}`` nodes are all handled natively (normalising here would
        # rewrite ``E+`` into ``E E*`` and judge the wrong semantics).
        self.expr = expr
        self.positions: list[NumericPosition] = []
        self._nodes: list[_Node] = []
        self._root = self._convert(self.expr)
        self._analyse()

    # -- construction ---------------------------------------------------------------
    def _convert(self, expr: Regex) -> _Node:
        """Iteratively convert the AST into analysis nodes (fresh node per leaf)."""
        # (ast node, parent analysis node) work list; children are appended in
        # order because the stack processes a node's children immediately.
        root_holder = _Node("root")
        stack: list[tuple[Regex, _Node]] = [(expr, root_holder)]
        while stack:
            ast_node, parent = stack.pop()
            node = self._make_node(ast_node)
            parent.children.append(node)
            # Push the right child first so the left child is popped (and
            # therefore appended to its parent) before it; children of one
            # parent always end up in document order.
            for child in reversed(ast_node.children()):
                stack.append((child, node))
        if len(root_holder.children) != 1:  # pragma: no cover - defensive
            raise InvalidExpressionError("internal conversion error")
        return root_holder.children[0]

    def _make_node(self, ast_node: Regex) -> _Node:
        if isinstance(ast_node, Sym):
            node = _Node("symbol", symbol=ast_node.symbol)
            node.position = len(self.positions)
            self.positions.append(NumericPosition(node.position, ast_node.symbol))
        elif isinstance(ast_node, Epsilon):
            node = _Node("epsilon")
        elif isinstance(ast_node, Concat):
            node = _Node("concat")
        elif isinstance(ast_node, Union):
            node = _Node("union")
        elif isinstance(ast_node, Star):
            node = _Node("repeat", low=0, high=None)
        elif isinstance(ast_node, Plus):
            node = _Node("repeat", low=1, high=None)
        elif isinstance(ast_node, OptionalNode):
            node = _Node("repeat", low=0, high=1)
        elif isinstance(ast_node, Repeat):
            node = _Node("repeat", low=ast_node.low, high=ast_node.high)
        else:  # pragma: no cover - exhaustive
            raise InvalidExpressionError(f"unknown AST node {ast_node!r}")
        self._nodes.append(node)
        return node

    # -- the analysis -----------------------------------------------------------------
    def _analyse(self) -> None:
        order = self._postorder(self._root)
        for node in order:
            self._compute_sets(node)
        self._follow: list[set[int]] = [set() for _ in self.positions]
        #: which contribution installed each follow edge: ``None`` for
        #: ordinary (concat) follow, else ``(loop-node id, counting?)``.
        #: A *duplicate* contribution of one edge from a different source
        #: is invisible to the label checks (same position, same label)
        #: but is a real ambiguity whenever a counter is involved: the
        #: two routes perform different counter updates, so the counter
        #: automaton has two distinct transitions on one symbol.
        self._edge_source: dict[tuple[int, int], tuple[int, bool] | None] = {}
        self._conflict: NumericConflict | None = None
        for node in order:  # children strictly before parents
            if self._conflict is not None:
                break
            self._add_follow_contributions(node)
        if self._conflict is None:
            self._check_follow_sets()
        if self._conflict is None:
            self._check_label_distinct(self._root.first, "first")

    @staticmethod
    def _postorder(root: _Node) -> list[_Node]:
        order: list[_Node] = []
        stack: list[tuple[_Node, bool]] = [(root, True)]
        while stack:
            node, entering = stack.pop()
            if entering:
                stack.append((node, False))
                for child in reversed(node.children):
                    stack.append((child, True))
            else:
                order.append(node)
        return order

    def _compute_sets(self, node: _Node) -> None:
        """Nullability, First/Last sets and per-symbol multiplicity intervals."""
        kind = node.kind
        if kind == "symbol":
            node.nullable = False
            node.first = [node.position]
            node.last = [node.position]
            node.counts = {node.symbol: (1, 1)}
            return
        if kind == "epsilon":
            node.nullable = True
            return
        if kind == "concat":
            left, right = node.children
            node.nullable = left.nullable and right.nullable
            node.first = list(left.first) + (list(right.first) if left.nullable else [])
            node.last = list(right.last) + (list(left.last) if right.nullable else [])
            node.counts = _sum_counts(left.counts, right.counts)
            return
        if kind == "union":
            left, right = node.children
            node.nullable = left.nullable or right.nullable
            node.first = list(left.first) + list(right.first)
            node.last = list(left.last) + list(right.last)
            node.counts = _union_counts(left.counts, right.counts)
            return
        if kind == "repeat":
            (child,) = node.children
            low, high = node.low, node.high
            node.nullable = low == 0 or child.nullable
            node.first = list(child.first)
            node.last = list(child.last)
            node.counts = _scale_counts(child.counts, low, high)
            node.flexible = self._is_flexible(child, low, high)
            return
        raise InvalidExpressionError(f"unexpected node kind {kind}")  # pragma: no cover

    @staticmethod
    def _is_flexible(child: _Node, low: int, high: int | None) -> bool:
        """Flexibility of ``child{low, high}`` (see the module docstring)."""
        if high is UNBOUNDED:
            return True
        if high <= 1:
            # At most one iteration: there is no loop transition at all.
            return False
        if high > low:
            return True
        if child.nullable:
            return True
        return not _count_rigid(child.counts)

    # -- follow contributions ---------------------------------------------------------------
    def _add_follow_contributions(self, node: _Node) -> None:
        if node.kind == "concat":
            left, right = node.children
            for p in left.last:
                self._extend_follow(p, right.first, "follow")
        elif node.kind == "repeat":
            low, high = node.low, node.high
            loops = high is UNBOUNDED or high >= 2
            if not loops:
                return
            (child,) = node.children
            if node.flexible:
                # A loop whose iteration count is *constrained* carries a
                # real counter: looping and exiting perform different
                # counter updates, so even re-contributing an existing
                # edge (same positions, same label) is an ambiguity.
                # Plain Kleene loops (low <= 1, unbounded high) need no
                # counter — duplicated edges from nested stars collapse
                # into one transition, exactly like the plain Glushkov
                # construction.
                counting = low >= 2 or (high is not UNBOUNDED and high >= 2)
                for p in node.last:
                    self._extend_follow(p, child.first, "loop", owner=(id(node), counting))
            else:
                # Rigid counter: looping and exiting are mutually exclusive, so
                # the loop followers only have to be label-disjoint from the
                # followers already reachable *inside* the body.
                for p in node.last:
                    self._check_disjoint(p, child.first)

    def _extend_follow(
        self,
        position: int,
        targets: list[int],
        via: str,
        owner: tuple[int, bool] | None = None,
    ) -> None:
        if self._conflict is not None:
            return
        follow = self._follow[position]
        labels = {self.positions[q].symbol: q for q in follow}
        counting = owner is not None and owner[1]
        for q in targets:
            if q in follow:
                # The edge exists already.  From the same source that is a
                # no-op; from a *different* source it means two distinct
                # transitions share (position, symbol, target) — harmless
                # between counterless loops, ambiguous once a counter is
                # involved (the updates differ, e.g. ``(a{2,3})+`` where
                # the inner loop and the outer restart compete on ``a``).
                previous = self._edge_source.get((position, q))
                if previous != owner and (counting or (previous is not None and previous[1])):
                    self._conflict = NumericConflict(
                        self.positions[q].symbol, self.positions[q], self.positions[q], via
                    )
                    return
                continue
            label = self.positions[q].symbol
            other = labels.get(label)
            if other is not None and other != q:
                self._conflict = NumericConflict(
                    label, self.positions[other], self.positions[q], via
                )
                return
            labels[label] = q
            follow.add(q)
            self._edge_source[(position, q)] = owner

    def _check_disjoint(self, position: int, loop_targets: list[int]) -> None:
        if self._conflict is not None:
            return
        labels = {self.positions[q].symbol: q for q in self._follow[position]}
        for q in loop_targets:
            other = labels.get(self.positions[q].symbol)
            if other is not None and other != q:
                self._conflict = NumericConflict(
                    self.positions[q].symbol, self.positions[other], self.positions[q], "loop"
                )
                return

    def _check_follow_sets(self) -> None:
        for position_index, follow in enumerate(self._follow):
            seen: dict[str, int] = {}
            for q in sorted(follow):
                label = self.positions[q].symbol
                other = seen.get(label)
                if other is not None:
                    self._conflict = NumericConflict(
                        label, self.positions[other], self.positions[q], "follow"
                    )
                    return
                seen[label] = q
            del position_index

    def _check_label_distinct(self, positions: list[int], via: str) -> None:
        seen: dict[str, int] = {}
        for q in sorted(set(positions)):
            label = self.positions[q].symbol
            other = seen.get(label)
            if other is not None:
                self._conflict = NumericConflict(
                    label, self.positions[other], self.positions[q], via
                )
                return
            seen[label] = q

    # -- public API -------------------------------------------------------------------------
    def report(self) -> NumericDeterminismReport:
        """The outcome of the analysis."""
        return NumericDeterminismReport(self._conflict is None, self._conflict)

    def flexibility(self) -> list[tuple[int, int | None, bool]]:
        """(low, high, flexible) for every iterator node, in document order."""
        return [
            (node.low, node.high, node.flexible)
            for node in self._nodes
            if node.kind == "repeat"
        ]


# ---------------------------------------------------------------------------
# Occurrence-count interval arithmetic
# ---------------------------------------------------------------------------

def _sum_counts(left: dict, right: dict) -> dict:
    result = dict(left)
    for symbol, (lo, hi) in right.items():
        old_lo, old_hi = result.get(symbol, (0, 0))
        result[symbol] = (old_lo + lo, old_hi + hi)
    return result


def _union_counts(left: dict, right: dict) -> dict:
    result: dict[str, tuple[float, float]] = {}
    for symbol in set(left) | set(right):
        left_lo, left_hi = left.get(symbol, (0, 0))
        right_lo, right_hi = right.get(symbol, (0, 0))
        result[symbol] = (min(left_lo, right_lo), max(left_hi, right_hi))
    return result


def _scale_counts(counts: dict, low: int, high: int | None) -> dict:
    result: dict[str, tuple[float, float]] = {}
    factor_hi = _INF if high is UNBOUNDED else high
    for symbol, (lo, hi) in counts.items():
        result[symbol] = (low * lo, factor_hi * hi if hi else 0)
    return result


def _count_rigid(counts: dict) -> bool:
    """True when some symbol occurs a fixed number (>= 1) of times in every word."""
    return any(lo == hi and lo >= 1 for lo, hi in counts.values())


# ---------------------------------------------------------------------------
# Convenience functions
# ---------------------------------------------------------------------------

def check_deterministic_numeric(expr: Regex | str) -> NumericDeterminismReport:
    """Counter-aware determinism check (Section 3.3)."""
    return NumericDeterminismChecker(expr).report()


def is_deterministic_numeric(expr: Regex | str) -> bool:
    """True when *expr* is deterministic under the numeric-occurrence semantics."""
    return check_deterministic_numeric(expr).deterministic
