"""Generating words for tests, examples and benchmarks.

Three kinds of words are produced:

* members — sampled from ``L(e)`` by a randomised walk over the AST
  (:func:`sample_member`), or enumerated exhaustively up to a length bound
  by breadth-first search over the position automaton
  (:func:`enumerate_members`);
* near-misses — members perturbed by a single edit
  (:func:`mutate_word`), useful for exercising rejection paths;
* streams — long pseudo-random member words used by the matching
  benchmarks (:func:`member_stream`).

All sampling takes an explicit :class:`random.Random` instance so tests
and benchmarks are reproducible.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Sequence

from .ast import (
    Concat,
    Epsilon,
    Optional,
    Plus,
    Regex,
    Repeat,
    Star,
    Sym,
    Union,
    UNBOUNDED,
)
from .language import LanguageOracle
from .parse_tree import ParseTree, build_parse_tree

Word = list[str]


# ---------------------------------------------------------------------------
# Sampling members from the AST
# ---------------------------------------------------------------------------

def sample_member(
    expr: Regex,
    rng: random.Random,
    star_continue: float = 0.6,
    max_star_repeats: int = 8,
) -> Word:
    """Sample one word of ``L(expr)`` by a randomised recursive walk.

    *star_continue* is the probability of performing one more iteration of
    a star/plus body (capped at *max_star_repeats* iterations).
    """
    from .ast import ensure_recursion_capacity

    ensure_recursion_capacity(expr)
    out: Word = []
    _sample_into(expr, rng, out, star_continue, max_star_repeats)
    return out


def _sample_into(
    expr: Regex,
    rng: random.Random,
    out: Word,
    star_continue: float,
    max_star_repeats: int,
) -> None:
    if isinstance(expr, Epsilon):
        return
    if isinstance(expr, Sym):
        out.append(expr.symbol)
        return
    if isinstance(expr, Concat):
        _sample_into(expr.left, rng, out, star_continue, max_star_repeats)
        _sample_into(expr.right, rng, out, star_continue, max_star_repeats)
        return
    if isinstance(expr, Union):
        chosen = expr.left if rng.random() < 0.5 else expr.right
        _sample_into(chosen, rng, out, star_continue, max_star_repeats)
        return
    if isinstance(expr, Optional):
        if rng.random() < 0.5:
            _sample_into(expr.child, rng, out, star_continue, max_star_repeats)
        return
    if isinstance(expr, (Star, Plus)):
        repeats = 1 if isinstance(expr, Plus) else 0
        while repeats < max_star_repeats and rng.random() < star_continue:
            repeats += 1
        for _ in range(repeats):
            _sample_into(expr.child, rng, out, star_continue, max_star_repeats)
        return
    if isinstance(expr, Repeat):
        if expr.high is UNBOUNDED:
            extra = 0
            while extra < max_star_repeats and rng.random() < star_continue:
                extra += 1
            count = expr.low + extra
        else:
            count = rng.randint(expr.low, expr.high)
        for _ in range(count):
            _sample_into(expr.child, rng, out, star_continue, max_star_repeats)
        return
    raise TypeError(f"unknown AST node: {expr!r}")


def sample_members(expr: Regex, count: int, rng: random.Random, **kwargs) -> list[Word]:
    """Sample *count* (not necessarily distinct) member words."""
    return [sample_member(expr, rng, **kwargs) for _ in range(count)]


def member_stream(
    expr: Regex,
    target_length: int,
    rng: random.Random,
    verify: bool = True,
) -> Word:
    """Build one long member word of roughly *target_length* symbols.

    The word is produced by a random walk over the position automaton:
    transitions are taken uniformly at random until the target length is
    reached, after which the walk stops as soon as it visits an accepting
    state (with a generous cut-off in case acceptance is hard to reach, in
    which case the walk restarts).  For star-free expressions the language
    is finite and the longest sampled member is returned instead.

    With *verify* on the result is checked against the oracle, making
    benchmark setup self-validating.
    """
    tree = build_parse_tree(expr)
    oracle = LanguageOracle(tree)
    if expr.is_star_free():
        best: Word = []
        for _ in range(32):
            candidate = sample_member(expr, rng, star_continue=0.9)
            if len(candidate) > len(best):
                best = candidate
        word = best
    else:
        word = _random_walk_member(oracle, tree, target_length, rng)
    if verify and not oracle.accepts(word):  # pragma: no cover - sanity net
        raise AssertionError("member_stream produced a non-member word")
    return word


def _random_walk_member(
    oracle: LanguageOracle,
    tree: ParseTree,
    target_length: int,
    rng: random.Random,
) -> Word:
    """Random walk over the position automaton producing a long member."""
    limit = target_length * 2 + tree.size + 16
    for _ in range(64):  # restart budget
        state = oracle.initial_state()
        word: Word = []
        while len(word) < limit:
            accepting = oracle.is_accepting(state)
            if accepting and len(word) >= target_length:
                return word
            end_index = tree.end.position_index
            choices: list[str] = []
            for p in state:
                for q in oracle.follow(p):
                    if q != end_index:
                        choices.append(tree.positions[q].symbol)
            if not choices:
                if accepting:
                    return word
                break
            symbol = rng.choice(choices)
            state = oracle.step(state, symbol)
            word.append(symbol)
        if oracle.is_accepting(state):
            return word
    # Fall back to plain sampling if the walk keeps failing.
    return sample_member(tree.source, rng, star_continue=0.9, max_star_repeats=64)


# ---------------------------------------------------------------------------
# Exhaustive enumeration via the position automaton
# ---------------------------------------------------------------------------

def enumerate_members(
    expr: Regex | ParseTree,
    max_length: int,
    max_words: int | None = None,
) -> list[Word]:
    """Enumerate all member words of length at most *max_length*.

    Breadth-first search over the subset states of the position automaton;
    intended for small expressions in tests (the state space is exponential
    in principle, but tiny for the expression sizes used there).
    """
    tree = expr if isinstance(expr, ParseTree) else build_parse_tree(expr)
    oracle = LanguageOracle(tree)
    alphabet = tree.alphabet.as_list()
    results: list[Word] = []
    queue: deque[tuple[frozenset[int], Word]] = deque([(oracle.initial_state(), [])])
    while queue:
        state, word = queue.popleft()
        if oracle.is_accepting(state):
            results.append(word)
            if max_words is not None and len(results) >= max_words:
                return results
        if len(word) >= max_length:
            continue
        for symbol in alphabet:
            next_state = oracle.step(state, symbol)
            if next_state:
                queue.append((next_state, word + [symbol]))
    return results


# ---------------------------------------------------------------------------
# Near-miss generation
# ---------------------------------------------------------------------------

def mutate_word(word: Sequence[str], alphabet: Sequence[str], rng: random.Random) -> Word:
    """Apply one random edit (substitution, deletion, insertion, swap).

    The result is *not* guaranteed to be outside the language; callers that
    need guaranteed non-members should filter with the oracle.
    """
    word = list(word)
    if not alphabet:
        return word
    operations = ["insert"] if not word else ["substitute", "delete", "insert", "swap"]
    operation = rng.choice(operations)
    if operation == "substitute":
        index = rng.randrange(len(word))
        word[index] = rng.choice(list(alphabet))
    elif operation == "delete":
        index = rng.randrange(len(word))
        del word[index]
    elif operation == "insert":
        index = rng.randrange(len(word) + 1)
        word.insert(index, rng.choice(list(alphabet)))
    elif operation == "swap" and len(word) >= 2:
        index = rng.randrange(len(word) - 1)
        word[index], word[index + 1] = word[index + 1], word[index]
    return word


def non_members(
    expr: Regex,
    count: int,
    rng: random.Random,
    max_attempts: int = 2000,
) -> list[Word]:
    """Generate up to *count* words guaranteed to be outside ``L(expr)``."""
    tree = build_parse_tree(expr)
    oracle = LanguageOracle(tree)
    alphabet = tree.alphabet.as_list()
    found: list[Word] = []
    attempts = 0
    while len(found) < count and attempts < max_attempts:
        attempts += 1
        base = sample_member(expr, rng)
        candidate = mutate_word(base, alphabet, rng)
        if not oracle.accepts(candidate):
            found.append(candidate)
    return found
