"""Expression families used as workloads by tests and benchmarks.

Two kinds of generators are provided:

* deterministic-by-construction families with a tunable size parameter —
  these are the benchmark workloads (each matches one of the structural
  classes the paper's theorems are parameterised by);
* random expression generators (arbitrary and rejection-sampled
  deterministic ones) — these drive the differential and property-based
  tests.

Symbols are generated as ``a0, a1, ...`` (or user-supplied prefixes) so
that alphabets of arbitrary size can be produced; the paper's point that
the Glushkov construction is quadratic *because* alphabets are large makes
this essential for experiment E1.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from .ast import (
    Concat,
    Optional,
    Plus,
    Regex,
    Repeat,
    Star,
    Sym,
    Union,
    concat,
    optional,
    star,
    sym,
    union,
)
from .language import LanguageOracle
from .parse_tree import build_parse_tree


def _names(count: int, prefix: str = "a") -> list[str]:
    return [f"{prefix}{i}" for i in range(count)]


# ---------------------------------------------------------------------------
# Deterministic-by-construction families (benchmark workloads)
# ---------------------------------------------------------------------------

def mixed_content(symbol_count: int, prefix: str = "a") -> Regex:
    """The paper's motivating family ``E = (a1 + a2 + ... + am)*``.

    This is the shape of XML "mixed content"; the Glushkov automaton of
    ``E`` has ``Θ(m^2)`` transitions while determinism is obvious, which is
    exactly the gap experiment E1 measures.
    """
    if symbol_count < 1:
        raise ValueError("mixed_content requires at least one symbol")
    return star(union(*[sym(name) for name in _names(symbol_count, prefix)]))


def chare(
    factor_count: int, symbols_per_factor: int = 3, rng: random.Random | None = None
) -> Regex:
    """A chain regular expression with *factor_count* factors.

    Each factor is ``(a + b + c)`` over fresh symbols, decorated with one of
    nothing, ``?``, ``*`` or ``+`` (chosen round-robin or randomly).  CHAREs
    cover ~90% of real-world content models (related-work section).
    """
    decorations: list[Callable[[Regex], Regex]] = [
        lambda e: e,
        optional,
        star,
        lambda e: Plus(e),
    ]
    factors: list[Regex] = []
    counter = 0
    for index in range(factor_count):
        names = [f"f{index}x{j}" for j in range(symbols_per_factor)]
        body = union(*[sym(name) for name in names])
        if rng is None:
            decorate = decorations[counter % len(decorations)]
            counter += 1
        else:
            decorate = rng.choice(decorations)
        factors.append(decorate(body))
    return concat(*factors)


def deep_alternation(depth: int) -> Regex:
    """Deterministic expressions whose +/· alternation depth grows with *depth*.

    ``g_0 = x0`` and ``g_{i+1} = (a_i (g_i)?) + b_i``.  All symbols are
    distinct so the result is a 1-ORE (hence deterministic), while each
    level adds one union-over-concatenation alternation — the family that
    stresses Theorem 4.10's dependence on ``c_e``.
    """
    expr: Regex = sym("x0")
    for level in range(depth):
        expr = union(Concat(sym(f"a{level}"), optional(expr)), sym(f"b{level}"))
    return expr


def bounded_occurrence(k: int, blocks: int) -> Regex:
    """Deterministic k-occurrence expressions (Theorem 4.3 workload).

    Each block reuses its block symbol ``s_j`` exactly *k* times, separated
    by fresh delimiter symbols so that no position ever has two
    equally-labelled followers.  The whole expression is a concatenation of
    *blocks* such blocks wrapped in a star, giving arbitrarily long member
    words.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    parts: list[Regex] = []
    for j in range(blocks):
        shared = f"s{j}"
        pieces: list[Regex] = []
        for copy in range(k):
            delimiter = f"d{j}x{copy}"
            pieces.append(Concat(sym(shared), sym(delimiter)))
        parts.append(concat(*pieces))
    return star(concat(*parts))


def star_free_chain(factor_count: int) -> Regex:
    """Star-free deterministic expressions (Theorem 4.12 workload).

    A concatenation of factors ``(a_i + b_i) c_i?`` over fresh symbols:
    star-free, deterministic (1-ORE) and with member words of length
    Θ(*factor_count*).
    """
    factors: list[Regex] = []
    for index in range(factor_count):
        choice = union(sym(f"a{index}"), sym(f"b{index}"))
        factors.append(Concat(choice, optional(sym(f"c{index}"))))
    return concat(*factors)


def paper_example_e0() -> Regex:
    """Figure 1's expression ``e0 = (c?((ab*)(a?c)))*(ba)``."""
    from .parser import parse

    return parse("(c?((ab*)(a?c)))*(ba)")


def paper_example_e1() -> Regex:
    """Example 2.1's deterministic expression ``e1 = (ab + b(b?)a)*``."""
    from .parser import parse

    return parse("(ab+b(b?)a)*")


def paper_example_e2() -> Regex:
    """Example 2.1's non-deterministic expression ``e2 = (a*ba + bb)*``."""
    from .parser import parse

    return parse("(a*ba+bb)*")


def numeric_particles(block_count: int, low: int = 2, high: int = 4) -> Regex:
    """XSD-style particles with numeric occurrence indicators (Section 3.3).

    Concatenation of blocks ``(a_j b_j){low,high}`` over fresh symbols —
    deterministic with counters, used by experiment E7.
    """
    parts = [
        Repeat(Concat(sym(f"a{j}"), sym(f"b{j}")), low, high) for j in range(block_count)
    ]
    return concat(*parts)


# ---------------------------------------------------------------------------
# DTD-like content models (substitute for the Grijzenhout corpus)
# ---------------------------------------------------------------------------

def dtd_like(rng: random.Random, element_names: Sequence[str] | None = None) -> Regex:
    """One random content model with the shape reported for real DTDs.

    Roughly 90% of generated models are CHAREs, most of the remainder are
    "simple" expressions, and a small tail has deeper nesting (but
    alternation depth at most 4, matching the paper's observation about
    Grijzenhout's corpus).
    """
    names = list(element_names) if element_names else _names(rng.randint(3, 12), "el")
    rng.shuffle(names)
    roll = rng.random()
    if roll < 0.9:
        return _dtd_chare(rng, names)
    if roll < 0.97:
        return _dtd_simple(rng, names)
    return _dtd_nested(rng, names)


def dtd_corpus(rng: random.Random, count: int) -> list[Regex]:
    """A list of *count* random DTD-like content models."""
    return [dtd_like(rng) for _ in range(count)]


def _decorate(rng: random.Random, expr: Regex) -> Regex:
    roll = rng.random()
    if roll < 0.35:
        return expr
    if roll < 0.6:
        return optional(expr)
    if roll < 0.85:
        return star(expr)
    return Plus(expr)


def _dtd_chare(rng: random.Random, names: list[str]) -> Regex:
    factors: list[Regex] = []
    index = 0
    while index < len(names):
        width = min(rng.randint(1, 3), len(names) - index)
        body = union(*[sym(name) for name in names[index:index + width]])
        factors.append(_decorate(rng, body))
        index += width
    return concat(*factors)


def _dtd_simple(rng: random.Random, names: list[str]) -> Regex:
    factors: list[Regex] = []
    index = 0
    while index < len(names):
        width = min(rng.randint(1, 3), len(names) - index)
        branch = [
            _decorate(rng, sym(name)) if rng.random() < 0.4 else sym(name)
            for name in names[index:index + width]
        ]
        factors.append(_decorate(rng, union(*branch)))
        index += width
    return concat(*factors)


def _dtd_nested(rng: random.Random, names: list[str]) -> Regex:
    if len(names) == 1:
        return _decorate(rng, sym(names[0]))
    middle = max(1, len(names) // 2)
    left = _dtd_chare(rng, names[:middle])
    right = _dtd_chare(rng, names[middle:])
    combiner = Union if rng.random() < 0.5 else Concat
    return _decorate(rng, combiner(left, right))


# ---------------------------------------------------------------------------
# Random expressions (test workloads)
# ---------------------------------------------------------------------------

def random_expression(
    rng: random.Random,
    leaf_count: int,
    alphabet: Sequence[str] = ("a", "b", "c", "d"),
    star_probability: float = 0.25,
    optional_probability: float = 0.2,
    union_probability: float = 0.45,
) -> Regex:
    """A random expression with *leaf_count* positions over *alphabet*.

    No determinism guarantee — used to exercise the parser, the oracle and
    the determinism checks on both classes of inputs.
    """
    if leaf_count < 1:
        raise ValueError("leaf_count must be >= 1")
    leaves: list[Regex] = [sym(rng.choice(list(alphabet))) for _ in range(leaf_count)]
    while len(leaves) > 1:
        index = rng.randrange(len(leaves) - 1)
        left = leaves.pop(index)
        right = leaves.pop(index)
        if rng.random() < union_probability:
            node: Regex = Union(left, right)
        else:
            node = Concat(left, right)
        leaves.insert(index, _random_decorate(rng, node, star_probability, optional_probability))
    return _random_decorate(rng, leaves[0], star_probability, optional_probability)


def _random_decorate(
    rng: random.Random, expr: Regex, star_probability: float, optional_probability: float
) -> Regex:
    roll = rng.random()
    if roll < star_probability:
        return Star(expr) if rng.random() < 0.7 else Plus(expr)
    if roll < star_probability + optional_probability and not expr.nullable():
        return Optional(expr)
    return expr


def random_deterministic_expression(
    rng: random.Random,
    leaf_count: int,
    alphabet: Sequence[str] = ("a", "b", "c", "d"),
    max_attempts: int = 500,
) -> Regex:
    """Rejection-sample a deterministic expression with ~*leaf_count* positions.

    Falls back to distinct symbols (guaranteed 1-ORE) when rejection
    sampling fails, so the function always returns a deterministic
    expression.
    """
    for _ in range(max_attempts):
        candidate = random_expression(rng, leaf_count, alphabet)
        oracle = LanguageOracle(build_parse_tree(candidate))
        if oracle.is_deterministic():
            return candidate
    return random_one_ore(rng, leaf_count)


def random_one_ore(rng: random.Random, leaf_count: int, prefix: str = "u") -> Regex:
    """A random single-occurrence expression (always deterministic)."""
    names = _names(leaf_count, prefix)
    rng.shuffle(names)
    leaves: list[Regex] = [sym(name) for name in names]
    while len(leaves) > 1:
        index = rng.randrange(len(leaves) - 1)
        left = leaves.pop(index)
        right = leaves.pop(index)
        node: Regex = Union(left, right) if rng.random() < 0.4 else Concat(left, right)
        leaves.insert(index, _random_decorate(rng, node, 0.2, 0.2))
    return leaves[0]
