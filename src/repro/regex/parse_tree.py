"""The pointer-based parse tree on which all paper algorithms operate.

Section 2 of the paper identifies an expression with its parse tree and
requires three restrictions:

(R1) ``e = (# e') $`` where the sentinels ``#`` and ``$`` do not occur in
     ``e'``;
(R2) no directly nested unbounded iterations;
(R3) ``(f)?`` only for non-nullable ``f``.

:func:`build_parse_tree` takes an AST, normalises it
(:mod:`repro.regex.normalize`), wraps it per (R1) and produces a
:class:`ParseTree` of :class:`TreeNode` objects carrying every derived
annotation the paper's algorithms need:

* ``nullable`` per node (syntax-directed, Section 2),
* ``sup_first`` / ``sup_last`` flags and the ``p_sup_first`` /
  ``p_sup_last`` pointers (lowest reflexive ancestor with the flag),
* ``p_star`` — the lowest reflexive ancestor labelled with an unbounded
  iteration (star or plus),
* pre/post order numbers giving O(1) (reflexive) ancestor tests,
* ``depth`` and a left-to-right numbering of the positions (leaves).

All annotations are computed in O(|e|).  The marked expression of the
paper (positions subscripted left to right) corresponds to
``ParseTree.positions``: position ``i`` is ``positions[i]``.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterator, Sequence

from ..errors import InvalidExpressionError
from .alphabet import Alphabet, END_SENTINEL, START_SENTINEL, SENTINELS
from .ast import (
    Concat,
    ensure_recursion_capacity,
    Epsilon,
    Optional as OptionalNode,
    Plus,
    Regex,
    Repeat,
    Star,
    Sym,
    Union,
)
from .normalize import normalize
from .parser import parse


class NodeKind(str, Enum):
    """Label of a parse-tree node (the ``lab`` function of the paper)."""

    SYMBOL = "symbol"
    CONCAT = "concat"
    UNION = "union"
    STAR = "star"
    PLUS = "plus"
    OPTIONAL = "optional"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Kinds that denote an unbounded iteration; the paper only has ``*`` but a
#: ``+`` node follows the same Lemma 2.2 case (2) semantics.
ITERATION_KINDS = (NodeKind.STAR, NodeKind.PLUS)


class TreeNode:
    """A single node of the parse tree with all derived annotations.

    Instances are created by :func:`build_parse_tree`; user code treats
    them as read-only.  ``symbol`` is only meaningful for ``SYMBOL``
    leaves, ``position_index`` is the left-to-right index of a leaf and
    ``-1`` for internal nodes.
    """

    __slots__ = (
        "kind",
        "symbol",
        "parent",
        "left",
        "right",
        "index",
        "position_index",
        "depth",
        "pre",
        "post",
        "nullable",
        "sup_first",
        "sup_last",
        "p_sup_first",
        "p_sup_last",
        "p_star",
    )

    def __init__(self, kind: NodeKind, symbol: str | None = None):
        self.kind = kind
        self.symbol = symbol
        self.parent: TreeNode | None = None
        self.left: TreeNode | None = None
        self.right: TreeNode | None = None
        self.index = -1
        self.position_index = -1
        self.depth = 0
        self.pre = -1
        self.post = -1
        self.nullable = False
        self.sup_first = False
        self.sup_last = False
        self.p_sup_first: TreeNode | None = None
        self.p_sup_last: TreeNode | None = None
        self.p_star: TreeNode | None = None

    # -- structure ----------------------------------------------------------
    @property
    def is_position(self) -> bool:
        """True for leaves (positions of the expression, sentinels included)."""
        return self.kind is NodeKind.SYMBOL

    @property
    def is_iteration(self) -> bool:
        """True for star/plus nodes (the ``*``-labelled nodes of the paper)."""
        return self.kind in ITERATION_KINDS

    def children(self) -> tuple["TreeNode", ...]:
        if self.left is None:
            return ()
        if self.right is None:
            return (self.left,)
        return (self.left, self.right)

    def is_ancestor_of(self, other: "TreeNode") -> bool:
        """Reflexive ancestor test (the paper's ``n ≼ m``), O(1)."""
        return self.pre <= other.pre and other.post <= self.post

    def is_strict_ancestor_of(self, other: "TreeNode") -> bool:
        """Strict ancestor test, O(1)."""
        return self is not other and self.is_ancestor_of(other)

    def subtree(self) -> Iterator["TreeNode"]:
        """Yield the nodes of this subtree in pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            if node.right is not None:
                stack.append(node.right)
            if node.left is not None:
                stack.append(node.left)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_position:
            return f"<pos {self.position_index} {self.symbol!r}>"
        return f"<{self.kind.value} #{self.index}>"


class ParseTree:
    """A fully annotated, R1-wrapped parse tree.

    Attributes
    ----------
    root:
        The outermost concatenation node ``((# e') $)``.
    inner_root:
        The root of the user expression ``e'`` (``None`` when the user
        expression denotes only the empty word).
    nodes:
        All nodes in pre-order; ``nodes[i].index == i``.
    positions:
        All leaves in left-to-right order (sentinels included);
        ``positions[i].position_index == i``.
    start / end:
        The ``#`` and ``$`` sentinel positions.
    alphabet:
        The user symbols (sentinels excluded) with dense integer codes.
    source:
        The normalised AST the tree was built from (without sentinels).
    """

    __slots__ = (
        "root",
        "inner_root",
        "nodes",
        "positions",
        "start",
        "end",
        "alphabet",
        "source",
        "_positions_by_symbol",
    )

    def __init__(
        self,
        root: TreeNode,
        inner_root: TreeNode | None,
        nodes: list[TreeNode],
        positions: list[TreeNode],
        alphabet: Alphabet,
        source: Regex,
    ):
        self.root = root
        self.inner_root = inner_root
        self.nodes = nodes
        self.positions = positions
        self.start = positions[0]
        self.end = positions[-1]
        self.alphabet = alphabet
        self.source = source
        self._positions_by_symbol: dict[str, list[TreeNode]] | None = None

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[TreeNode]:
        return iter(self.nodes)

    @property
    def size(self) -> int:
        """Number of nodes, the ``|e|`` of the complexity statements."""
        return len(self.nodes)

    @property
    def num_positions(self) -> int:
        """Number of positions including the two sentinels."""
        return len(self.positions)

    def positions_by_symbol(self, symbol: str) -> list[TreeNode]:
        """Return the positions labelled *symbol*, in left-to-right order."""
        if self._positions_by_symbol is None:
            table: dict[str, list[TreeNode]] = {}
            for position in self.positions:
                table.setdefault(position.symbol, []).append(position)
            self._positions_by_symbol = table
        return self._positions_by_symbol.get(symbol, [])

    def occurrence_count(self) -> int:
        """Maximum occurrences of any user symbol (the ``k`` of k-ORE)."""
        best = 0
        for symbol in self.alphabet:
            best = max(best, len(self.positions_by_symbol(symbol)))
        return best

    def subexpression_positions(self, node: TreeNode) -> list[TreeNode]:
        """Return the positions below *node* in left-to-right order."""
        return [n for n in node.subtree() if n.is_position]

    def depth(self) -> int:
        """Length of the longest root-to-node path."""
        return max(node.depth for node in self.nodes)

    def lca_naive(self, a: TreeNode, b: TreeNode) -> TreeNode:
        """Lowest common ancestor by pointer chasing (O(depth)); used by
        tests and by code paths that only need a handful of queries.  The
        constant-time version lives in :mod:`repro.structures.lca`."""
        if a.is_ancestor_of(b):
            return a
        node = a
        while node is not None and not node.is_ancestor_of(b):
            node = node.parent
        if node is None:  # pragma: no cover - both nodes share the root
            raise InvalidExpressionError("nodes do not belong to the same tree")
        return node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParseTree(size={self.size}, positions={self.num_positions})"


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------

def build_parse_tree(expr: Regex | str, dialect: str = "paper") -> ParseTree:
    """Normalise *expr*, wrap it per (R1) and return the annotated tree.

    *expr* may be an AST or a textual expression (parsed with *dialect*).
    Numeric repetitions are expanded (see :mod:`repro.regex.normalize`);
    use :mod:`repro.core.numeric` for counter-aware determinism checking.
    """
    if isinstance(expr, str):
        expr = parse(expr, dialect=dialect)
    _reject_sentinel_symbols(expr)
    ensure_recursion_capacity(expr, multiplier=3)
    normalised = normalize(expr, expand_numeric=True)

    start_leaf = TreeNode(NodeKind.SYMBOL, START_SENTINEL)
    end_leaf = TreeNode(NodeKind.SYMBOL, END_SENTINEL)

    if isinstance(normalised, Epsilon):
        inner: TreeNode | None = None
        left_part: TreeNode = start_leaf
    else:
        inner = _convert(normalised)
        left_part = _make_internal(NodeKind.CONCAT, start_leaf, inner)
    root = _make_internal(NodeKind.CONCAT, left_part, end_leaf)

    nodes, positions = _number(root)
    alphabet = Alphabet(
        position.symbol for position in positions if position.symbol not in SENTINELS
    ).freeze()
    _annotate_nullable(nodes)
    _annotate_pointers(root, nodes)
    return ParseTree(root, inner, nodes, positions, alphabet, normalised)


def tree_from_text(text: str, dialect: str = "paper") -> ParseTree:
    """Convenience wrapper: parse *text* and build its parse tree."""
    return build_parse_tree(parse(text, dialect=dialect))


def _reject_sentinel_symbols(expr: Regex) -> None:
    used = expr.symbols() & set(SENTINELS)
    if used:
        raise InvalidExpressionError(
            f"symbols {sorted(used)!r} are reserved for the R1 sentinels"
        )


def _convert(expr: Regex) -> TreeNode:
    """Recursively convert a normalised AST into fresh tree nodes."""
    if isinstance(expr, Sym):
        return TreeNode(NodeKind.SYMBOL, expr.symbol)
    if isinstance(expr, Concat):
        return _make_internal(NodeKind.CONCAT, _convert(expr.left), _convert(expr.right))
    if isinstance(expr, Union):
        return _make_internal(NodeKind.UNION, _convert(expr.left), _convert(expr.right))
    if isinstance(expr, Star):
        return _make_internal(NodeKind.STAR, _convert(expr.child), None)
    if isinstance(expr, Plus):
        return _make_internal(NodeKind.PLUS, _convert(expr.child), None)
    if isinstance(expr, OptionalNode):
        return _make_internal(NodeKind.OPTIONAL, _convert(expr.child), None)
    if isinstance(expr, (Repeat, Epsilon)):
        raise InvalidExpressionError(
            f"{type(expr).__name__} nodes must be removed by normalisation before "
            "building the parse tree"
        )
    raise TypeError(f"unknown AST node: {expr!r}")


def _make_internal(kind: NodeKind, left: TreeNode, right: TreeNode | None) -> TreeNode:
    node = TreeNode(kind)
    node.left = left
    node.right = right
    left.parent = node
    if right is not None:
        right.parent = node
    return node


def _number(root: TreeNode) -> tuple[list[TreeNode], list[TreeNode]]:
    """Assign pre/post numbers, depths and position indices in one traversal."""
    nodes: list[TreeNode] = []
    positions: list[TreeNode] = []
    counter = 0
    # Iterative pre/post traversal: (node, entering) pairs.
    stack: list[tuple[TreeNode, bool]] = [(root, True)]
    while stack:
        node, entering = stack.pop()
        if entering:
            node.index = len(nodes)
            node.pre = counter
            counter += 1
            node.depth = 0 if node.parent is None else node.parent.depth + 1
            nodes.append(node)
            if node.is_position:
                node.position_index = len(positions)
                positions.append(node)
            stack.append((node, False))
            if node.right is not None:
                stack.append((node.right, True))
            if node.left is not None:
                stack.append((node.left, True))
        else:
            node.post = counter
            counter += 1
    return nodes, positions


def _annotate_nullable(nodes: Sequence[TreeNode]) -> None:
    """Syntax-directed nullability, computed bottom-up (reverse pre-order)."""
    for node in reversed(nodes):
        if node.kind is NodeKind.SYMBOL:
            node.nullable = False
        elif node.kind is NodeKind.CONCAT:
            node.nullable = node.left.nullable and node.right.nullable
        elif node.kind is NodeKind.UNION:
            node.nullable = node.left.nullable or node.right.nullable
        elif node.kind is NodeKind.STAR or node.kind is NodeKind.OPTIONAL:
            node.nullable = True
        elif node.kind is NodeKind.PLUS:
            node.nullable = node.left.nullable
        else:  # pragma: no cover - enum is exhaustive
            raise InvalidExpressionError(f"unexpected node kind {node.kind}")


def _annotate_pointers(root: TreeNode, nodes: Sequence[TreeNode]) -> None:
    """Compute SupFirst/SupLast flags and the pSupFirst/pSupLast/pStar pointers.

    Nodes are visited in pre-order so every node's parent is already fully
    annotated, making each pointer a constant-time combination of the
    parent's pointer and the node's own flag (lowest *reflexive* ancestor
    with the property, ``None`` when there is none).
    """
    for node in nodes:
        parent = node.parent
        if parent is not None and parent.kind is NodeKind.CONCAT:
            if node is parent.right:
                node.sup_first = not parent.left.nullable
            if node is parent.left:
                node.sup_last = not parent.right.nullable

        inherited_first = parent.p_sup_first if parent is not None else None
        inherited_last = parent.p_sup_last if parent is not None else None
        inherited_star = parent.p_star if parent is not None else None
        node.p_sup_first = node if node.sup_first else inherited_first
        node.p_sup_last = node if node.sup_last else inherited_last
        node.p_star = node if node.is_iteration else inherited_star
