"""Symbols, sentinels and alphabets.

The paper works over a finite alphabet Sigma and requires (restriction R1)
that every expression is implicitly wrapped as ``(# e) $`` where ``#`` and
``$`` are fresh sentinel symbols that do not occur in ``e``.  This module
centralises the representation of symbols and of the two sentinels so the
rest of the library never has to guess whether a string is a user symbol
or a sentinel.

Symbols are plain strings (XML element names, attribute names, or single
characters); the sentinels are module-level constants chosen outside the
printable range so they cannot collide with user symbols parsed from text.
"""

from __future__ import annotations

from typing import Iterable, Sequence

#: Sentinel marking the virtual start position (the ``#`` of the paper).
START_SENTINEL = "#"

#: Sentinel marking the virtual end position (the ``$`` of the paper).
END_SENTINEL = "$"

#: Both sentinels, in the order (start, end).
SENTINELS = (START_SENTINEL, END_SENTINEL)

#: Code returned by :meth:`Alphabet.encode` for symbols outside the alphabet.
#: Negative on purpose: valid codes are dense non-negative integers, so the
#: compiled runtime can reject unknown symbols with a single ``< 0`` test.
UNKNOWN_CODE = -1


def is_sentinel(symbol: str) -> bool:
    """Return True when *symbol* is one of the two R1 sentinels."""
    return symbol == START_SENTINEL or symbol == END_SENTINEL


def pretty_symbol(symbol: str) -> str:
    """Human readable rendering of a symbol (sentinels become # / $)."""
    if symbol == START_SENTINEL:
        return "#"
    if symbol == END_SENTINEL:
        return "$"
    return symbol


class Alphabet:
    """An ordered set of symbols with dense integer codes.

    Several algorithms (the Glushkov baseline, the lowest colored ancestor
    structure, lazy arrays) want symbols as small integers.  ``Alphabet``
    assigns codes in first-seen order and supports lookups in both
    directions.

    The class is intentionally tiny; it behaves like a frozen mapping once
    built but also supports incremental construction via :meth:`add` until
    :meth:`freeze` is called.  Freezing pins the *width* of the alphabet:
    the compiled runtime's dense transition rows are arrays of exactly
    ``len(alphabet)`` entries indexed by code, so a code minted after a
    row was densified would silently read past it.  The parse tree
    freezes its alphabet as soon as construction finishes.
    """

    __slots__ = ("_codes", "_symbols", "_frozen")

    def __init__(self, symbols: Iterable[str] = ()):  # noqa: D401 - simple init
        self._codes: dict[str, int] = {}
        self._symbols: list[str] = []
        self._frozen = False
        for symbol in symbols:
            self.add(symbol)

    def add(self, symbol: str) -> int:
        """Insert *symbol* (idempotent) and return its code.

        Raises ``TypeError`` (mirroring frozen built-ins) when the alphabet
        has been frozen and *symbol* is new; re-adding a known symbol stays
        legal because it cannot change the width.
        """
        code = self._codes.get(symbol)
        if code is None:
            if self._frozen:
                raise TypeError(
                    f"cannot add {symbol!r}: alphabet is frozen "
                    "(dense transition rows rely on a stable width)"
                )
            code = len(self._symbols)
            self._codes[symbol] = code
            self._symbols.append(symbol)
        return code

    def freeze(self) -> "Alphabet":
        """Forbid further growth (idempotent); returns self for chaining."""
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        """True once :meth:`freeze` has pinned the alphabet's width."""
        return self._frozen

    def code(self, symbol: str) -> int:
        """Return the code of *symbol*, raising ``KeyError`` if absent."""
        return self._codes[symbol]

    def get(self, symbol: str, default: int | None = None) -> int | None:
        """Return the code of *symbol* or *default* when absent."""
        return self._codes.get(symbol, default)

    def symbol(self, code: int) -> str:
        """Return the symbol with integer *code*."""
        return self._symbols[code]

    def __contains__(self, symbol: object) -> bool:
        return symbol in self._codes

    def __len__(self) -> int:
        return len(self._symbols)

    def __iter__(self):
        return iter(self._symbols)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Alphabet({self._symbols!r})"

    def as_list(self) -> list[str]:
        """Return the symbols as a list, in code order."""
        return list(self._symbols)

    @property
    def codes(self) -> dict[str, int]:
        """The symbol → code mapping itself (treat as read-only).

        Exposed so hot loops (the compiled runtime's encoder) can hoist one
        bound ``dict.get`` instead of paying a method call per symbol.
        """
        return self._codes

    def encode(self, word: Iterable[str]) -> list[int]:
        """Intern *word* into a list of dense integer codes, one pass.

        Symbols outside the alphabet map to :data:`UNKNOWN_CODE`; since no
        position is labelled with them, any matcher rejects the word at that
        symbol, and the compiled runtime does so with a single sign test.

        Thread safety: once the alphabet is frozen the mapping never
        mutates again, so encoding is lock-free from any number of threads
        (``repro.service`` pre-encodes whole corpora on worker threads).
        Incremental construction via :meth:`add` is *not* synchronized —
        build and :meth:`freeze` on one thread before sharing, which is
        exactly what the parse-tree builder does.
        """
        get = self._codes.get
        return [get(symbol, UNKNOWN_CODE) for symbol in word]

    def encode_many(self, words: Iterable[Iterable[str]]) -> list[list[int]]:
        """Encode a whole corpus in one pass (the batch APIs' front door).

        One bound ``dict.get`` is hoisted across every word, so batch
        callers (``Pattern.match_all``, the star-free multi-matcher, the
        validation service) pay the method-dispatch cost once per corpus
        instead of once per word.
        """
        get = self._codes.get
        return [[get(symbol, UNKNOWN_CODE) for symbol in word] for word in words]

    def decode(self, codes: Sequence[int]) -> list[str]:
        """Inverse of :meth:`encode` for in-alphabet codes (tests, debugging).

        Raises ``LookupError`` on :data:`UNKNOWN_CODE` (or any other
        negative code) rather than letting Python's negative indexing
        silently alias it to the last alphabet symbol.
        """
        symbols = self._symbols
        decoded: list[str] = []
        for code in codes:
            if code < 0:
                raise LookupError(
                    f"code {code} does not denote an alphabet symbol "
                    "(out-of-alphabet symbols encode to UNKNOWN_CODE)"
                )
            decoded.append(symbols[code])
        return decoded
