"""Symbols, sentinels and alphabets.

The paper works over a finite alphabet Sigma and requires (restriction R1)
that every expression is implicitly wrapped as ``(# e) $`` where ``#`` and
``$`` are fresh sentinel symbols that do not occur in ``e``.  This module
centralises the representation of symbols and of the two sentinels so the
rest of the library never has to guess whether a string is a user symbol
or a sentinel.

Symbols are plain strings (XML element names, attribute names, or single
characters); the sentinels are module-level constants chosen outside the
printable range so they cannot collide with user symbols parsed from text.
"""

from __future__ import annotations

from typing import Iterable

#: Sentinel marking the virtual start position (the ``#`` of the paper).
START_SENTINEL = "#"

#: Sentinel marking the virtual end position (the ``$`` of the paper).
END_SENTINEL = "$"

#: Both sentinels, in the order (start, end).
SENTINELS = (START_SENTINEL, END_SENTINEL)


def is_sentinel(symbol: str) -> bool:
    """Return True when *symbol* is one of the two R1 sentinels."""
    return symbol == START_SENTINEL or symbol == END_SENTINEL


def pretty_symbol(symbol: str) -> str:
    """Human readable rendering of a symbol (sentinels become # / $)."""
    if symbol == START_SENTINEL:
        return "#"
    if symbol == END_SENTINEL:
        return "$"
    return symbol


class Alphabet:
    """An ordered set of symbols with dense integer codes.

    Several algorithms (the Glushkov baseline, the lowest colored ancestor
    structure, lazy arrays) want symbols as small integers.  ``Alphabet``
    assigns codes in first-seen order and supports lookups in both
    directions.

    The class is intentionally tiny; it behaves like a frozen mapping once
    built but also supports incremental construction via :meth:`add`.
    """

    __slots__ = ("_codes", "_symbols")

    def __init__(self, symbols: Iterable[str] = ()):  # noqa: D401 - simple init
        self._codes: dict[str, int] = {}
        self._symbols: list[str] = []
        for symbol in symbols:
            self.add(symbol)

    def add(self, symbol: str) -> int:
        """Insert *symbol* (idempotent) and return its code."""
        code = self._codes.get(symbol)
        if code is None:
            code = len(self._symbols)
            self._codes[symbol] = code
            self._symbols.append(symbol)
        return code

    def code(self, symbol: str) -> int:
        """Return the code of *symbol*, raising ``KeyError`` if absent."""
        return self._codes[symbol]

    def get(self, symbol: str, default: int | None = None) -> int | None:
        """Return the code of *symbol* or *default* when absent."""
        return self._codes.get(symbol, default)

    def symbol(self, code: int) -> str:
        """Return the symbol with integer *code*."""
        return self._symbols[code]

    def __contains__(self, symbol: object) -> bool:
        return symbol in self._codes

    def __len__(self) -> int:
        return len(self._symbols)

    def __iter__(self):
        return iter(self._symbols)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Alphabet({self._symbols!r})"

    def as_list(self) -> list[str]:
        """Return the symbols as a list, in code order."""
        return list(self._symbols)
