"""Abstract syntax trees for regular expressions.

This is the user-facing representation: an immutable tree of operator
nodes over an alphabet of string symbols.  It supports the operators of
the paper (concatenation, union ``+``, optional ``?``, Kleene star ``*``)
plus two extensions needed by the XML application domain:

* ``Plus`` — one-or-more repetition, as used in DTD content models.  For
  the paper's algorithms an iterated node behaves exactly like a star
  node (Lemma 2.2 case (2) only needs "lowest iterated ancestor"); only
  nullability differs.
* ``Repeat`` — numeric occurrence indicators ``e{i..j}`` of XML Schema
  (Section 3.3 of the paper).

The AST deliberately carries no derived annotations; the algorithms of the
paper run on the pointer-based :class:`repro.regex.parse_tree.ParseTree`
obtained via :func:`repro.regex.parse_tree.build_parse_tree`.

Smart constructors (:func:`concat`, :func:`union`, ...) perform only the
cheap simplifications that keep trees well-formed (flattening of empty
sequences); the semantic rewritings required by restrictions (R2)/(R3)
live in the parse-tree normaliser so that the AST remains a faithful
record of what the user wrote.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional as Opt

from ..errors import InvalidExpressionError

#: Value used for an unbounded upper repetition bound (``e{2,}``).
UNBOUNDED = None


class Regex:
    """Base class of all AST nodes.

    Nodes are immutable, hashable and comparable by structure.  They
    support the Python operators ``|`` (union), ``*`` is not overloaded
    (star is a method) and ``+`` builds concatenation to mirror the
    paper's notation where ``+`` denotes union -- to avoid confusion the
    operator overloads are limited to ``|`` for union and ``>>`` for
    concatenation.
    """

    __slots__ = ()

    # -- structural helpers -------------------------------------------------
    def children(self) -> tuple["Regex", ...]:
        """Return the direct sub-expressions of this node."""
        return ()

    def iter_nodes(self) -> Iterator["Regex"]:
        """Yield this node and all descendants in pre-order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    def symbols(self) -> set[str]:
        """Return the set of alphabet symbols occurring in the expression."""
        return {node.symbol for node in self.iter_nodes() if isinstance(node, Sym)}

    def positions(self) -> list[str]:
        """Return the symbols of all leaf positions, in left-to-right order."""
        out: list[str] = []

        def walk(node: "Regex") -> None:
            if isinstance(node, Sym):
                out.append(node.symbol)
                return
            for child in node.children():
                walk(child)

        walk(self)
        return out

    def size(self) -> int:
        """Number of AST nodes (operators and symbols)."""
        return sum(1 for _ in self.iter_nodes())

    def occurrence_count(self) -> int:
        """Maximum number of occurrences of any single symbol (the ``k`` of k-ORE)."""
        counts: dict[str, int] = {}
        for node in self.iter_nodes():
            if isinstance(node, Sym):
                counts[node.symbol] = counts.get(node.symbol, 0) + 1
        return max(counts.values(), default=0)

    def nullable(self) -> bool:
        """True when the empty word belongs to the language of the expression."""
        raise NotImplementedError

    def is_star_free(self) -> bool:
        """True when no unbounded iteration (star/plus/{i,}) occurs."""
        for node in self.iter_nodes():
            if isinstance(node, (Star, Plus)):
                return False
            if isinstance(node, Repeat) and node.high is UNBOUNDED:
                return False
        return True

    def has_numeric_occurrences(self) -> bool:
        """True when a numeric ``Repeat`` node occurs anywhere in the tree."""
        return any(isinstance(node, Repeat) for node in self.iter_nodes())

    # -- operator sugar ------------------------------------------------------
    def __or__(self, other: "Regex") -> "Regex":
        return union(self, other)

    def __rshift__(self, other: "Regex") -> "Regex":
        return concat(self, other)

    def star(self) -> "Regex":
        """Return ``self*``."""
        return Star(self)

    def plus(self) -> "Regex":
        """Return ``self+`` (one or more)."""
        return Plus(self)

    def optional(self) -> "Regex":
        """Return ``self?``."""
        return Optional(self)

    def repeat(self, low: int, high: Opt[int] = UNBOUNDED) -> "Regex":
        """Return ``self{low,high}`` (``high=None`` means unbounded)."""
        return Repeat(self, low, high)

    def __str__(self) -> str:
        from .printer import to_text

        return to_text(self)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({str(self)!r})"


@dataclass(frozen=True, slots=True, repr=False)
class Epsilon(Regex):
    """The empty word.  Mostly used for DTD ``EMPTY`` content models."""

    def nullable(self) -> bool:
        return True


@dataclass(frozen=True, slots=True, repr=False)
class Sym(Regex):
    """A single alphabet symbol (one *position* once the tree is marked)."""

    symbol: str

    def __post_init__(self) -> None:
        if not self.symbol:
            raise InvalidExpressionError("symbols must be non-empty strings")

    def nullable(self) -> bool:
        return False


@dataclass(frozen=True, slots=True, repr=False)
class Concat(Regex):
    """Concatenation of two expressions (the paper's ``.`` operator)."""

    left: Regex
    right: Regex

    def children(self) -> tuple[Regex, ...]:
        return (self.left, self.right)

    def nullable(self) -> bool:
        return self.left.nullable() and self.right.nullable()


@dataclass(frozen=True, slots=True, repr=False)
class Union(Regex):
    """Union of two expressions (the paper's ``+`` operator, DTD's ``|``)."""

    left: Regex
    right: Regex

    def children(self) -> tuple[Regex, ...]:
        return (self.left, self.right)

    def nullable(self) -> bool:
        return self.left.nullable() or self.right.nullable()


@dataclass(frozen=True, slots=True, repr=False)
class Star(Regex):
    """Kleene star: zero or more repetitions."""

    child: Regex

    def children(self) -> tuple[Regex, ...]:
        return (self.child,)

    def nullable(self) -> bool:
        return True


@dataclass(frozen=True, slots=True, repr=False)
class Plus(Regex):
    """One or more repetitions (DTD ``+``)."""

    child: Regex

    def children(self) -> tuple[Regex, ...]:
        return (self.child,)

    def nullable(self) -> bool:
        return self.child.nullable()


@dataclass(frozen=True, slots=True, repr=False)
class Optional(Regex):
    """Zero or one occurrence (``e?``)."""

    child: Regex

    def children(self) -> tuple[Regex, ...]:
        return (self.child,)

    def nullable(self) -> bool:
        return True


@dataclass(frozen=True, slots=True, repr=False)
class Repeat(Regex):
    """Numeric occurrence indicator ``e{low,high}`` (XML Schema min/maxOccurs).

    ``high is None`` encodes an unbounded upper limit.  ``e{0,0}`` denotes
    the empty word, ``e{1,1}`` is equivalent to ``e``.
    """

    child: Regex
    low: int
    high: Opt[int]

    def __post_init__(self) -> None:
        if self.low < 0:
            raise InvalidExpressionError("repetition lower bound must be >= 0")
        if self.high is not UNBOUNDED:
            if self.high < 0:
                raise InvalidExpressionError("repetition upper bound must be >= 0")
            if self.low > self.high:
                raise InvalidExpressionError(
                    f"repetition bounds out of order: {{{self.low},{self.high}}}"
                )

    def children(self) -> tuple[Regex, ...]:
        return (self.child,)

    def nullable(self) -> bool:
        return self.low == 0 or self.child.nullable()


# ---------------------------------------------------------------------------
# Smart constructors
# ---------------------------------------------------------------------------

def sym(symbol: str) -> Sym:
    """Build a symbol node."""
    return Sym(symbol)


def syms(*symbols: str) -> list[Sym]:
    """Build several symbol nodes at once (convenience for tests/examples)."""
    return [Sym(s) for s in symbols]


def concat(*parts: Regex) -> Regex:
    """Left-to-right concatenation of *parts* (right-nested binary tree).

    With no argument this returns :class:`Epsilon`; with a single argument
    it returns the argument unchanged.
    """
    items = [p for p in parts if not isinstance(p, Epsilon)]
    if not items:
        return Epsilon()
    result = items[-1]
    for part in reversed(items[:-1]):
        result = Concat(part, result)
    return result


def union(*parts: Regex) -> Regex:
    """Union of *parts* (right-nested binary tree).

    At least one argument is required: the library has no node for the
    empty language because deterministic content models never need it.
    """
    if not parts:
        raise InvalidExpressionError("union() requires at least one operand")
    result = parts[-1]
    for part in reversed(parts[:-1]):
        result = Union(part, result)
    return result


def literal(word: str) -> Regex:
    """Concatenation of the characters of *word* (each character a symbol)."""
    if not word:
        return Epsilon()
    return concat(*[Sym(ch) for ch in word])


def star(expr: Regex) -> Star:
    """Return ``expr*``."""
    return Star(expr)


def plus(expr: Regex) -> Plus:
    """Return ``expr+``."""
    return Plus(expr)


def optional(expr: Regex) -> Optional:
    """Return ``expr?``."""
    return Optional(expr)


def repeat(expr: Regex, low: int, high: Opt[int] = UNBOUNDED) -> Repeat:
    """Return ``expr{low,high}``."""
    return Repeat(expr, low, high)


def ensure_recursion_capacity(expr: "Regex", multiplier: int = 2, slack: int = 200) -> None:
    """Raise the interpreter recursion limit to accommodate *expr*.

    Several front-end passes (normalisation, parse-tree conversion, word
    sampling, Thompson construction) recurse over the AST, whose depth is
    bounded by its size; content models with hundreds of factors otherwise
    hit CPython's default limit.  The limit is only ever increased.
    """
    import sys

    needed = expr.size() * multiplier + slack
    if sys.getrecursionlimit() < needed:
        sys.setrecursionlimit(needed)
