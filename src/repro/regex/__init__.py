"""Regular-expression substrate: ASTs, parsing, parse trees and workloads.

The subpackage is self-contained: it knows nothing about the paper's
linear-time algorithms (those live in :mod:`repro.core` and
:mod:`repro.matching`), it only provides the expression representations
and the classical set-based machinery used as baselines and oracles.
"""

from .alphabet import Alphabet, END_SENTINEL, START_SENTINEL, SENTINELS
from .ast import (
    Concat,
    Epsilon,
    Optional,
    Plus,
    Regex,
    Repeat,
    Star,
    Sym,
    Union,
    UNBOUNDED,
    concat,
    literal,
    optional,
    plus,
    repeat,
    star,
    sym,
    syms,
    union,
)
from .language import LanguageOracle
from .normalize import normalize
from .parse_tree import NodeKind, ParseTree, TreeNode, build_parse_tree, tree_from_text
from .parser import parse, parse_word
from .printer import to_text
from .properties import (
    alternation_depth,
    classify,
    is_chare,
    is_k_occurrence,
    is_one_ore,
    is_simple,
    is_star_free,
    occurrence_bound,
    plus_depth_refined,
)

__all__ = [
    "Alphabet",
    "Concat",
    "Epsilon",
    "END_SENTINEL",
    "LanguageOracle",
    "NodeKind",
    "Optional",
    "ParseTree",
    "Plus",
    "Regex",
    "Repeat",
    "SENTINELS",
    "START_SENTINEL",
    "Star",
    "Sym",
    "TreeNode",
    "UNBOUNDED",
    "Union",
    "alternation_depth",
    "build_parse_tree",
    "classify",
    "concat",
    "is_chare",
    "is_k_occurrence",
    "is_one_ore",
    "is_simple",
    "is_star_free",
    "literal",
    "normalize",
    "occurrence_bound",
    "optional",
    "parse",
    "parse_word",
    "plus",
    "plus_depth_refined",
    "repeat",
    "star",
    "sym",
    "syms",
    "to_text",
    "tree_from_text",
    "union",
]
