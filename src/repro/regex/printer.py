"""Rendering ASTs back to text.

Two styles are supported, mirroring the two parser dialects:

* ``"paper"`` — the notation used throughout the PODS paper: single
  character symbols juxtaposed for concatenation and ``+`` for union,
  e.g. ``(ab+b(b?)a)*``.  Only available when every symbol is a single
  character and no one-or-more (``Plus``) node occurs, because the paper
  has no postfix ``+`` operator.
* ``"named"`` — symbols are identifiers, concatenation is a space, union
  is ``|`` and one-or-more is the postfix ``+``; numeric repetitions are
  rendered ``{i,j}``.  Every AST can be rendered in this style and parsed
  back to a structurally identical tree.

``dialect="auto"`` (the default used by ``str(regex)``) picks the paper
style when it is applicable and the named style otherwise.
"""

from __future__ import annotations

from .ast import (
    Concat,
    Epsilon,
    Optional,
    Plus,
    Regex,
    Repeat,
    Star,
    Sym,
    Union,
    UNBOUNDED,
)

# Precedence levels used to decide where parentheses are needed.
_LEVEL_UNION = 0
_LEVEL_CONCAT = 1
_LEVEL_POSTFIX = 2
_LEVEL_ATOM = 3

#: Rendering of the empty word; both parsers accept it.
EPSILON_TEXT = "()"


def paper_style_applicable(expr: Regex) -> bool:
    """True when *expr* can be rendered in the compact paper notation."""
    for node in expr.iter_nodes():
        if isinstance(node, Plus):
            return False
        if isinstance(node, Sym) and len(node.symbol) != 1:
            return False
    return True


def to_text(expr: Regex, dialect: str = "auto") -> str:
    """Render *expr* as text in the requested *dialect*.

    ``dialect`` is one of ``"auto"``, ``"paper"`` or ``"named"``.
    """
    if dialect == "auto":
        dialect = "paper" if paper_style_applicable(expr) else "named"
    if dialect == "paper":
        return _render(expr, _LEVEL_UNION, paper=True)
    if dialect == "named":
        return _render(expr, _LEVEL_UNION, paper=False)
    raise ValueError(f"unknown printer dialect: {dialect!r}")


def _postfix_suffix(node: Regex) -> str:
    """Return the postfix operator string for a unary repetition node."""
    if isinstance(node, Star):
        return "*"
    if isinstance(node, Plus):
        return "+"
    if isinstance(node, Optional):
        return "?"
    if isinstance(node, Repeat):
        if node.high is UNBOUNDED:
            return f"{{{node.low},}}"
        if node.low == node.high:
            return f"{{{node.low}}}"
        return f"{{{node.low},{node.high}}}"
    raise TypeError(f"not a postfix node: {node!r}")


def _render(node: Regex, level: int, paper: bool) -> str:
    """Render *node*, parenthesising when its precedence is below *level*."""
    if isinstance(node, Epsilon):
        return EPSILON_TEXT
    if isinstance(node, Sym):
        return node.symbol

    if isinstance(node, Union):
        operator = "+" if paper else "|"
        # The right operand may be another Union without parentheses (the
        # parser folds unions to the right); a Union on the left must be
        # parenthesised to round-trip the exact tree shape.
        left = _render(node.left, _LEVEL_UNION + 1, paper)
        right = (
            _render(node.right, _LEVEL_UNION, paper)
            if isinstance(node.right, Union)
            else _render(node.right, _LEVEL_UNION + 1, paper)
        )
        text = f"{left}{operator}{right}" if paper else f"{left} {operator} {right}"
        return _wrap(text, _LEVEL_UNION, level)

    if isinstance(node, Concat):
        left = _render(node.left, _LEVEL_CONCAT + 1, paper)
        right = (
            _render(node.right, _LEVEL_CONCAT, paper)
            if isinstance(node.right, Concat)
            else _render(node.right, _LEVEL_CONCAT + 1, paper)
        )
        text = f"{left}{right}" if paper else f"{left} {right}"
        return _wrap(text, _LEVEL_CONCAT, level)

    if isinstance(node, (Star, Plus, Optional, Repeat)):
        child = node.children()[0]
        body = _render(child, _LEVEL_POSTFIX, paper)
        # Chained postfix operators such as (e*)? need parentheses so the
        # operators re-attach to the intended sub-expression.
        if isinstance(child, (Star, Plus, Optional, Repeat)):
            body = f"({body})"
        return _wrap(body + _postfix_suffix(node), _LEVEL_POSTFIX, level)

    raise TypeError(f"unknown AST node: {node!r}")


def _wrap(text: str, node_level: int, context_level: int) -> str:
    """Parenthesise *text* when its precedence is too low for the context."""
    if node_level < context_level:
        return f"({text})"
    return text
