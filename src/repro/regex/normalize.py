"""Normalisation of ASTs to the form required by the paper.

Section 2 of the paper imposes three restrictions on expressions before
any algorithm runs:

(R1) the expression is wrapped as ``(# e') $`` with fresh sentinels;
(R2) no directly nested unbounded iterations ``((e)*)*``;
(R3) ``(e)?`` only appears when ``e`` is not nullable.

(R1) is applied when the pointer-based parse tree is built
(:mod:`repro.regex.parse_tree`); this module implements the language
preserving rewriting needed for (R2)/(R3), removes ``Epsilon`` nodes and
expands numeric occurrence indicators.  Together these guarantee that the
size of the resulting tree is linear in its number of positions, which is
what the linear-time claims of the paper are measured against.

The rewriting is purely structural and language-preserving.  Note that
expansion of numeric repetitions preserves the *language* but not the
Section 3.3 notion of determinism with counters: ``(ab){2,2}a(b+d)`` is
counter-deterministic yet its expansion has duplicated positions.  The
dedicated analysis in :mod:`repro.core.numeric` works on the unexpanded
AST for exactly this reason.
"""

from __future__ import annotations

from .ast import (
    Concat,
    ensure_recursion_capacity,
    Epsilon,
    Optional,
    Plus,
    Regex,
    Repeat,
    Star,
    Sym,
    Union,
    UNBOUNDED,
    concat,
)


def normalize(expr: Regex, expand_numeric: bool = True) -> Regex:
    """Return an equivalent AST satisfying (R2) and (R3) with no Epsilon nodes.

    The result may be :class:`Epsilon` itself when ``L(expr) == {ε}``.
    When *expand_numeric* is true, numeric ``Repeat`` nodes are rewritten
    into concatenations of copies (language-preserving); otherwise they are
    normalised recursively but kept in place.
    """
    ensure_recursion_capacity(expr)
    return _normalize(expr, expand_numeric)


def _normalize(expr: Regex, expand_numeric: bool) -> Regex:
    if isinstance(expr, (Sym, Epsilon)):
        return expr

    if isinstance(expr, Concat):
        left = _normalize(expr.left, expand_numeric)
        right = _normalize(expr.right, expand_numeric)
        if isinstance(left, Epsilon):
            return right
        if isinstance(right, Epsilon):
            return left
        return Concat(left, right)

    if isinstance(expr, Union):
        left = _normalize(expr.left, expand_numeric)
        right = _normalize(expr.right, expand_numeric)
        if isinstance(left, Epsilon) and isinstance(right, Epsilon):
            return Epsilon()
        if isinstance(left, Epsilon):
            return _make_optional(right)
        if isinstance(right, Epsilon):
            return _make_optional(left)
        return Union(left, right)

    if isinstance(expr, (Star, Plus, Optional)):
        # Peel directly nested iteration/option wrappers *before* normalising
        # the body, so that e.g. (x+)* becomes x* rather than (x x*)*: the
        # one-or-more rewriting below would otherwise duplicate positions that
        # an outer star/option makes redundant.
        kind = type(expr)
        child = expr.children()[0]
        while isinstance(child, (Star, Plus, Optional)):
            if isinstance(child, (Star, Optional)) and kind is Plus:
                kind = Star  # (x*)+ and (x?)+ denote x*
            if isinstance(child, (Star, Plus)) and kind is Optional:
                kind = Star  # (x*)? and (x+)? denote x*
            child = child.children()[0]
        body = _normalize(child, expand_numeric)
        if kind is Star:
            return _make_star(body)
        if kind is Plus:
            return _make_plus(body)
        return _make_optional(body)

    if isinstance(expr, Repeat):
        child = _normalize(expr.child, expand_numeric)
        if not expand_numeric:
            if isinstance(child, Epsilon):
                return Epsilon()
            return Repeat(child, expr.low, expr.high)
        return _expand_repeat(child, expr.low, expr.high, expand_numeric)

    raise TypeError(f"unknown AST node: {expr!r}")


def _make_star(child: Regex) -> Regex:
    """Build ``child*`` respecting (R2): collapse nested iterations."""
    if isinstance(child, Epsilon):
        return Epsilon()
    if isinstance(child, (Star, Plus, Optional)):
        # (x*)* = (x+)* = (x?)* = x*
        return _make_star(child.children()[0])
    return Star(child)


def _make_plus(child: Regex) -> Regex:
    """Build ``child+`` respecting (R2), desugared to ``child child*``.

    The paper's grammar has no one-or-more operator, and its Section 3
    case analysis silently relies on every iteration node being nullable
    (a star).  A non-nullable iteration node below a colored node would
    let ``FirstPos`` and ``Witness`` clash through a loop the ``pStar``
    pointer of Theorem 3.5(ii) cannot see.  Rewriting ``E+`` as ``E E*``
    therefore keeps the algorithms exactly as published.  For the
    non-nullable bodies that survive normalisation the rewriting also
    preserves determinism: a conflict in ``E E*`` involving the two copies
    of one position would need some ``q ∈ First(E)`` to follow some
    ``p ∈ Last(E)`` *inside* ``E``, which forces ``E`` to be nullable —
    see tests/unit/test_normalize.py for the executable version of this
    argument.
    """
    if isinstance(child, Epsilon):
        return Epsilon()
    if isinstance(child, (Star, Optional)):
        # (x*)+ = (x?)+ = x*
        return _make_star(child.children()[0])
    if isinstance(child, Plus):
        # (x+)+ = x+
        return _make_plus(child.child)
    if child.nullable():
        # E nullable makes E+ and E* the same language.
        return _make_star(child)
    return Concat(child, Star(child))


def _make_optional(child: Regex) -> Regex:
    """Build ``child?`` respecting (R3): drop the ``?`` on nullable bodies."""
    if isinstance(child, Epsilon):
        return Epsilon()
    if isinstance(child, Plus):
        # (x+)? = x*
        return _make_star(child.child)
    if child.nullable():
        return child
    return Optional(child)


def _expand_repeat(child: Regex, low: int, high: int | None, expand_numeric: bool) -> Regex:
    """Expand ``child{low,high}`` into stars, options and copies.

    The expansion follows the usual identities::

        x{0,0}   = ε            x{0,None} = x*
        x{1,1}   = x            x{1,None} = x+
        x{i,None}= x^(i-1) x+   x{i,j}    = x^i (x (x (... )?)?)?   (j-i optional copies)

    Every copy of *child* is the same normalised AST object; positions are
    duplicated when the pointer tree is built, which is exactly what the
    language-level expansion requires.
    """
    if isinstance(child, Epsilon):
        return Epsilon()
    if high is UNBOUNDED:
        if low == 0:
            return _make_star(child)
        if low == 1:
            return _make_plus(child)
        prefix = concat(*([child] * (low - 1)))
        return Concat(prefix, _make_plus(child)) if low > 1 else _make_plus(child)
    if high == 0:
        return Epsilon()
    required = [child] * low
    optional_count = high - low
    tail: Regex | None = None
    for _ in range(optional_count):
        if tail is None:
            tail = _make_optional(child)
        else:
            tail = _make_optional(Concat(child, tail))
    if not required:
        return tail if tail is not None else Epsilon()
    body = concat(*required)
    if tail is None:
        return body
    return Concat(body, tail)
