"""Parsing textual regular expressions into ASTs.

Two dialects are supported:

``"paper"`` (default)
    The notation used in the PODS paper.  Every letter or digit is a
    separate single-character symbol, concatenation is juxtaposition,
    ``+`` (or ``|``) is infix union, and the postfix operators are ``*``,
    ``?`` and ``{i,j}``.  Example: ``(ab+b(b?)a)*``.

``"named"``
    Symbols are identifiers (XML element names such as ``title`` or
    ``xs:element``), concatenation is whitespace or ``.``, union is ``|``,
    and the postfix operators are ``*``, ``?``, ``+`` (one or more) and
    ``{i,j}``.  Example: ``title (author | editor)+ year?``.

Both dialects accept ``()`` for the empty word.  The characters ``#`` and
``$`` are rejected as symbols because they are reserved for the sentinel
positions introduced by restriction (R1); see
:mod:`repro.regex.parse_tree`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import RegexSyntaxError
from .alphabet import SENTINELS
from .ast import (
    Concat,
    Epsilon,
    Optional,
    Plus,
    Regex,
    Repeat,
    Star,
    Sym,
    Union,
    UNBOUNDED,
)

_PAPER = "paper"
_NAMED = "named"
_DIALECTS = (_PAPER, _NAMED)

# Characters with syntactic meaning in both dialects.
_SPECIAL = set("()*?+|{},.")

# Characters allowed inside identifiers in the named dialect.  XML names may
# contain dots, dashes and colons after the first character.
_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_0123456789")
_NAME_CONT = _NAME_START | set(":-")


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str  # "symbol", "op", "end"
    text: str
    position: int


def parse(text: str, dialect: str = _PAPER) -> Regex:
    """Parse *text* into a :class:`~repro.regex.ast.Regex`.

    Raises :class:`~repro.errors.RegexSyntaxError` on malformed input and
    when a reserved sentinel symbol (``#`` or ``$``) is used.
    """
    if dialect not in _DIALECTS:
        raise ValueError(f"unknown parser dialect: {dialect!r} (expected one of {_DIALECTS})")
    parser = _Parser(text, dialect)
    expr = parser.parse_expression()
    parser.expect_end()
    return expr


def parse_word(text: str | Sequence[str]) -> list[str]:
    """Turn *text* into a word: a list of symbols.

    Strings without whitespace or commas are split into characters (the
    paper-dialect convention); strings containing whitespace or commas are
    split on those separators; any other sequence is returned as a list of
    its elements unchanged.
    """
    if not isinstance(text, str):
        return [str(symbol) for symbol in text]
    if "," in text:
        return text.replace(",", " ").split()
    # One C-level split covers both the whitespace-separated and the
    # per-character cases without a per-character Python scan — this runs
    # once per word on every matching path, batch APIs included.
    parts = text.split()
    if not parts:
        return []
    if len(parts) > 1:
        return parts
    return list(parts[0])


class _Parser:
    """Recursive-descent parser shared by both dialects."""

    def __init__(self, text: str, dialect: str):
        self.text = text
        self.dialect = dialect
        self.tokens = list(_tokenize(text, dialect))
        self.index = 0

    # -- token helpers ------------------------------------------------------
    def peek(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        if token.kind != "end":
            self.index += 1
        return token

    def error(self, message: str, token: _Token | None = None) -> RegexSyntaxError:
        token = token or self.peek()
        return RegexSyntaxError(message, text=self.text, position=token.position)

    def expect_end(self) -> None:
        token = self.peek()
        if token.kind != "end":
            raise self.error(f"unexpected {token.text!r}")

    # -- grammar ------------------------------------------------------------
    def parse_expression(self) -> Regex:
        """expr := seq (('+' | '|') seq)*  — folded to the right."""
        left = self.parse_sequence()
        token = self.peek()
        if token.kind == "op" and self._is_union_operator(token.text):
            self.advance()
            right = self.parse_expression()
            return Union(left, right)
        return left

    def _is_union_operator(self, text: str) -> bool:
        if text == "|":
            return True
        return text == "+" and self.dialect == _PAPER

    def parse_sequence(self) -> Regex:
        """seq := item+  — folded to the right (matches the printer)."""
        items = [self.parse_item()]
        while True:
            token = self.peek()
            if token.kind == "symbol" or (token.kind == "op" and token.text == "("):
                items.append(self.parse_item())
                continue
            if token.kind == "op" and token.text == ".":
                self.advance()
                items.append(self.parse_item())
                continue
            break
        result = items[-1]
        for item in reversed(items[:-1]):
            result = Concat(item, result)
        return result

    def parse_item(self) -> Regex:
        """item := atom postfix*"""
        expr = self.parse_atom()
        while True:
            token = self.peek()
            if token.kind != "op":
                break
            if token.text == "*":
                self.advance()
                expr = Star(expr)
            elif token.text == "?":
                self.advance()
                expr = Optional(expr)
            elif token.text == "+" and self.dialect == _NAMED:
                self.advance()
                expr = Plus(expr)
            elif token.text == "{":
                expr = self.parse_repeat(expr)
            else:
                break
        return expr

    def parse_repeat(self, expr: Regex) -> Regex:
        """postfix := '{' int (',' int?)? '}'"""
        opening = self.advance()  # consume '{'
        low = self.parse_integer()
        token = self.peek()
        if token.kind == "op" and token.text == ",":
            self.advance()
            token = self.peek()
            if token.kind == "op" and token.text == "}":
                high: int | None = UNBOUNDED
            else:
                high = self.parse_integer()
        else:
            high = low
        closing = self.peek()
        if closing.kind != "op" or closing.text != "}":
            raise self.error("expected '}' to close numeric repetition", opening)
        self.advance()
        return Repeat(expr, low, high)

    def parse_integer(self) -> int:
        token = self.peek()
        if token.kind != "symbol" or not token.text.isdigit():
            raise self.error("expected an integer inside '{...}'")
        self.advance()
        digits = token.text
        # In the paper dialect every character is its own token, so a
        # multi-digit bound arrives as several consecutive digit tokens.
        while self.dialect == _PAPER:
            nxt = self.peek()
            if nxt.kind == "symbol" and nxt.text.isdigit():
                digits += nxt.text
                self.advance()
            else:
                break
        return int(digits)

    def parse_atom(self) -> Regex:
        token = self.peek()
        if token.kind == "symbol":
            self.advance()
            if token.text in SENTINELS:
                raise self.error(
                    f"symbol {token.text!r} is reserved for the R1 sentinels", token
                )
            return Sym(token.text)
        if token.kind == "op" and token.text == "(":
            self.advance()
            inner = self.peek()
            if inner.kind == "op" and inner.text == ")":
                self.advance()
                return Epsilon()
            expr = self.parse_expression()
            closing = self.peek()
            if closing.kind != "op" or closing.text != ")":
                raise self.error("expected ')'", token)
            self.advance()
            return expr
        raise self.error(f"unexpected {token.text!r}")


def _tokenize(text: str, dialect: str):
    """Yield tokens for *text*, ending with a synthetic "end" token."""
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char in _SPECIAL:
            yield _Token("op", char, index)
            index += 1
            continue
        if dialect == _PAPER:
            yield _Token("symbol", char, index)
            index += 1
            continue
        # Named dialect: scan a full identifier.
        if char not in _NAME_START:
            raise RegexSyntaxError(f"unexpected character {char!r}", text=text, position=index)
        start = index
        index += 1
        while index < length and text[index] in _NAME_CONT:
            index += 1
        yield _Token("symbol", text[start:index], start)
    yield _Token("end", "<end of input>", length)
