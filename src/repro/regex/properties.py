"""Structural classifiers of regular expressions.

The paper's matching algorithms are parameterised by structural classes of
expressions; this module computes the corresponding measures on either an
AST or a parse tree:

* :func:`is_star_free` — no unbounded iteration (Theorem 4.12's class);
* :func:`occurrence_bound` — the ``k`` of k-occurrence expressions
  (Theorem 4.3, Bex et al.'s k-ORE);
* :func:`alternation_depth` — the ``c_e`` of Theorem 4.10: the maximal
  number of alternations between union and concatenation labels on a
  root-to-leaf path of the parse tree;
* :func:`plus_depth_refined` — the tighter bound mentioned after
  Lemma 4.9: the maximal number of ancestors of a position that are
  union-labelled, non-nullable and have a concatenation-labelled parent;
* :func:`is_one_ore`, :func:`is_chare`, :func:`is_simple` — the classes
  from the DTD-inference literature discussed in the related-work section
  (1-ORE, CHARE, simple regular expressions).
"""

from __future__ import annotations

from collections import Counter

from .ast import Concat, Epsilon, Optional, Plus, Regex, Repeat, Star, Sym, Union, UNBOUNDED
from .parse_tree import NodeKind, ParseTree, TreeNode, build_parse_tree


def _as_tree(expr: Regex | ParseTree | str) -> ParseTree:
    if isinstance(expr, ParseTree):
        return expr
    return build_parse_tree(expr)


# ---------------------------------------------------------------------------
# Simple counts
# ---------------------------------------------------------------------------

def symbol_occurrences(expr: Regex | ParseTree | str) -> Counter:
    """Count, for each user symbol, how many positions carry it."""
    if isinstance(expr, Regex):
        return Counter(expr.positions())
    tree = _as_tree(expr)
    return Counter(symbol for symbol in (p.symbol for p in tree.positions)
                   if symbol not in ("#", "$"))


def occurrence_bound(expr: Regex | ParseTree | str) -> int:
    """The smallest ``k`` such that the expression is a k-ORE (0 for no symbols)."""
    counts = symbol_occurrences(expr)
    return max(counts.values(), default=0)


def is_k_occurrence(expr: Regex | ParseTree | str, k: int) -> bool:
    """True when no symbol occurs more than *k* times."""
    return occurrence_bound(expr) <= k


def is_one_ore(expr: Regex | ParseTree | str) -> bool:
    """True for single-occurrence expressions (1-ORE): no symbol repeats.

    1-OREs are always deterministic (each symbol has a unique position, so
    two distinct followers can never share a label).
    """
    return occurrence_bound(expr) <= 1


def is_star_free(expr: Regex | ParseTree | str) -> bool:
    """True when the expression contains no unbounded iteration."""
    if isinstance(expr, Regex):
        return expr.is_star_free()
    tree = _as_tree(expr)
    return not any(node.is_iteration for node in tree.nodes)


# ---------------------------------------------------------------------------
# Alternation depth (the c_e of Theorem 4.10)
# ---------------------------------------------------------------------------

def alternation_depth(expr: Regex | ParseTree | str) -> int:
    """Maximal depth of alternating union/concatenation labels.

    For every root-to-leaf path of the (unwrapped) parse tree we consider
    the sequence of labels restricted to union and concatenation nodes and
    count its maximal blocks of equal labels; ``c_e`` is the maximum over
    all paths.  Real-world DTDs have ``c_e ≤ 4`` (Grijzenhout's corpus, as
    reported in the paper).
    """
    tree = _as_tree(expr)
    if tree.inner_root is None:
        return 0
    best = 0
    # (node, last label seen in {union, concat}, number of blocks so far)
    stack: list[tuple[TreeNode, NodeKind | None, int]] = [(tree.inner_root, None, 0)]
    while stack:
        node, last, blocks = stack.pop()
        if node.kind in (NodeKind.UNION, NodeKind.CONCAT) and node.kind is not last:
            last = node.kind
            blocks += 1
        best = max(best, blocks)
        for child in node.children():
            stack.append((child, last, blocks))
    return best


def plus_depth_refined(expr: Regex | ParseTree | str) -> int:
    """The tighter constant mentioned after Lemma 4.9.

    Maximal, over positions ``p``, number of ancestors of ``p`` that are
    union-labelled, non-nullable, and whose parent is concatenation-labelled.
    This is the quantity that actually bounds the amortised cost of
    ``FindNext``.
    """
    tree = _as_tree(expr)
    best = 0
    for position in tree.positions:
        count = 0
        node = position.parent
        while node is not None:
            if (
                node.kind is NodeKind.UNION
                and not node.nullable
                and node.parent is not None
                and node.parent.kind is NodeKind.CONCAT
            ):
                count += 1
            node = node.parent
        best = max(best, count)
    return best


# ---------------------------------------------------------------------------
# Classes from the DTD-inference literature (related work section)
# ---------------------------------------------------------------------------

def is_chare(expr: Regex) -> bool:
    """True for chain regular expressions (CHARE).

    A CHARE is a concatenation of factors, each factor being a disjunction
    of *distinct symbols* ``(a1 + ... + an)`` optionally followed by ``*``
    or ``?`` (or ``+``, the DTD one-or-more), where no symbol occurs more
    than once in the whole expression.
    """
    if not is_one_ore(expr):
        return False
    for factor in _concat_factors(expr):
        if not _is_chare_factor(factor):
            return False
    return True


def is_simple(expr: Regex) -> bool:
    """True for simple regular expressions (Bex, Neven, Van den Bussche).

    Like CHAREs, but inside a factor each symbol may itself carry ``*`` or
    ``?``, and symbols may occur more than once in the expression.
    """
    for factor in _concat_factors(expr):
        if not _is_simple_factor(factor):
            return False
    return True


def _concat_factors(expr: Regex) -> list[Regex]:
    """Flatten a top-level concatenation into its factors."""
    factors: list[Regex] = []
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Concat):
            stack.append(node.right)
            stack.append(node.left)
        else:
            factors.append(node)
    return factors


def _strip_factor_decoration(factor: Regex) -> Regex:
    """Remove one outer ``*``, ``?`` or ``+`` from a factor."""
    if isinstance(factor, (Star, Optional, Plus)):
        return factor.children()[0]
    if isinstance(factor, Repeat):
        return factor.child
    return factor


def _union_branches(expr: Regex) -> list[Regex]:
    branches: list[Regex] = []
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Union):
            stack.append(node.right)
            stack.append(node.left)
        else:
            branches.append(node)
    return branches


def _is_chare_factor(factor: Regex) -> bool:
    body = _strip_factor_decoration(factor)
    branches = _union_branches(body)
    symbols = []
    for branch in branches:
        if not isinstance(branch, Sym):
            return False
        symbols.append(branch.symbol)
    return len(symbols) == len(set(symbols))


def _is_simple_factor(factor: Regex) -> bool:
    body = _strip_factor_decoration(factor)
    for branch in _union_branches(body):
        inner = _strip_factor_decoration(branch)
        if not isinstance(inner, Sym):
            return False
    return True


# ---------------------------------------------------------------------------
# Summary
# ---------------------------------------------------------------------------

def classify(expr: Regex | str) -> dict[str, object]:
    """Return a dictionary summarising every structural measure of *expr*.

    Used by the examples and by the benchmark harness to label workloads.
    """
    if isinstance(expr, str):
        from .parser import parse

        expr = parse(expr)
    tree = build_parse_tree(expr)
    return {
        "size": tree.size,
        "positions": tree.num_positions - 2,
        "alphabet_size": len(tree.alphabet),
        "occurrence_bound": occurrence_bound(tree),
        "one_ore": is_one_ore(tree),
        "chare": is_chare(expr),
        "simple": is_simple(expr),
        "star_free": is_star_free(expr),
        "alternation_depth": alternation_depth(tree),
        "plus_depth_refined": plus_depth_refined(tree),
        "has_numeric": expr.has_numeric_occurrences(),
        "depth": tree.depth(),
    }
