"""Set-based First/Last/Follow computation and language membership.

This module is the library's *oracle*: a direct, transparent
implementation of the classical syntax-directed equations for
``First(n)``, ``Last(n)`` and ``Follow(p)`` (Glushkov / Berry-Sethi
style), plus membership testing by simulating the position automaton.

Its worst-case cost is ``O(σ|e|)`` (the very bound the paper improves
upon), which makes it both the natural baseline for the benchmarks and
the ground truth against which the linear-time structures of
:mod:`repro.core` are differential-tested.

All functions operate on the R1-wrapped :class:`~repro.regex.parse_tree.ParseTree`
so that the sentinel positions behave exactly as in the paper: every
first position of the user expression follows ``#`` and the ``$``
position follows every last position.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .parse_tree import NodeKind, ParseTree, TreeNode


class LanguageOracle:
    """First/Last/Follow sets and membership for a parse tree.

    Position sets are represented as Python ``frozenset`` of position
    indices (the left-to-right numbering of :attr:`ParseTree.positions`).
    """

    def __init__(self, tree: ParseTree):
        self.tree = tree
        self._first: list[frozenset[int]] = [frozenset()] * len(tree.nodes)
        self._last: list[frozenset[int]] = [frozenset()] * len(tree.nodes)
        self._follow: list[set[int]] = [set() for _ in tree.positions]
        self._compute_first_last()
        self._compute_follow()

    # -- construction -------------------------------------------------------
    def _compute_first_last(self) -> None:
        first = self._first
        last = self._last
        for node in reversed(self.tree.nodes):  # children before parents
            kind = node.kind
            if kind is NodeKind.SYMBOL:
                singleton = frozenset((node.position_index,))
                first[node.index] = singleton
                last[node.index] = singleton
            elif kind is NodeKind.CONCAT:
                left, right = node.left, node.right
                if left.nullable:
                    first[node.index] = first[left.index] | first[right.index]
                else:
                    first[node.index] = first[left.index]
                if right.nullable:
                    last[node.index] = last[left.index] | last[right.index]
                else:
                    last[node.index] = last[right.index]
            elif kind is NodeKind.UNION:
                first[node.index] = first[node.left.index] | first[node.right.index]
                last[node.index] = last[node.left.index] | last[node.right.index]
            else:  # STAR, PLUS, OPTIONAL — unary, same First/Last as the child
                first[node.index] = first[node.left.index]
                last[node.index] = last[node.left.index]

    def _compute_follow(self) -> None:
        follow = self._follow
        for node in self.tree.nodes:
            if node.kind is NodeKind.CONCAT:
                firsts = self._first[node.right.index]
                for p in self._last[node.left.index]:
                    follow[p].update(firsts)
            elif node.is_iteration:
                firsts = self._first[node.index]
                for p in self._last[node.index]:
                    follow[p].update(firsts)
        self._follow = [frozenset(s) for s in follow]  # type: ignore[assignment]

    # -- queries ------------------------------------------------------------
    def first(self, node: TreeNode | None = None) -> frozenset[int]:
        """``First(n)`` as a set of position indices (default: the inner root)."""
        node = node if node is not None else self.tree.root
        return self._first[node.index]

    def last(self, node: TreeNode | None = None) -> frozenset[int]:
        """``Last(n)`` as a set of position indices (default: the inner root)."""
        node = node if node is not None else self.tree.root
        return self._last[node.index]

    def follow(self, position: TreeNode | int) -> frozenset[int]:
        """``Follow(p)`` as a set of position indices."""
        index = position if isinstance(position, int) else position.position_index
        return self._follow[index]

    def follows(self, p: TreeNode | int, q: TreeNode | int) -> bool:
        """True when position *q* follows position *p* (the oracle's checkIfFollow)."""
        q_index = q if isinstance(q, int) else q.position_index
        return q_index in self.follow(p)

    def follow_by_symbol(self, position: TreeNode | int) -> dict[str, list[int]]:
        """Group ``Follow(p)`` by the label of the following position."""
        grouped: dict[str, list[int]] = {}
        for q in sorted(self.follow(position)):
            grouped.setdefault(self.tree.positions[q].symbol, []).append(q)
        return grouped

    # -- determinism (baseline definition) -----------------------------------
    def is_deterministic(self) -> bool:
        """Direct application of the paper's definition of determinism.

        ``e`` is deterministic iff no position has two distinct followers
        with the same label.  With the R1 wrapping this single condition
        also covers clashes between first positions (they all follow ``#``).
        """
        return self.first_conflict() is None

    def first_conflict(self) -> tuple[int, int, int] | None:
        """Return a witness ``(p, q, q')`` of non-determinism, or ``None``.

        ``q`` and ``q'`` are distinct, equally-labelled positions that both
        follow ``p``; positions are reported as indices.
        """
        positions = self.tree.positions
        for p in range(len(positions)):
            seen: dict[str, int] = {}
            for q in sorted(self.follow(p)):
                label = positions[q].symbol
                other = seen.get(label)
                if other is not None:
                    return (p, other, q)
                seen[label] = q
        return None

    # -- membership ----------------------------------------------------------
    def initial_state(self) -> frozenset[int]:
        """The start state of the position automaton: the ``#`` sentinel."""
        return frozenset((self.tree.start.position_index,))

    def step(self, state: Iterable[int], symbol: str) -> frozenset[int]:
        """One subset-simulation step of the position automaton."""
        positions = self.tree.positions
        next_state: set[int] = set()
        for p in state:
            for q in self.follow(p):
                if positions[q].symbol == symbol:
                    next_state.add(q)
        return frozenset(next_state)

    def is_accepting(self, state: Iterable[int]) -> bool:
        """True when the end sentinel follows some position of *state*."""
        end = self.tree.end.position_index
        return any(end in self.follow(p) for p in state)

    def accepts(self, word: Sequence[str]) -> bool:
        """Membership test ``word ∈ L(e)`` by subset simulation.

        Works for deterministic and non-deterministic expressions alike;
        cost is O(|w| · k · σ-ish) and is only meant as ground truth.
        """
        state = self.initial_state()
        for symbol in word:
            state = self.step(state, symbol)
            if not state:
                return False
        return self.is_accepting(state)


def first_positions(tree: ParseTree, node: TreeNode | None = None) -> list[TreeNode]:
    """Convenience: ``First(n)`` as a list of position nodes."""
    oracle = LanguageOracle(tree)
    return [tree.positions[i] for i in sorted(oracle.first(node))]


def last_positions(tree: ParseTree, node: TreeNode | None = None) -> list[TreeNode]:
    """Convenience: ``Last(n)`` as a list of position nodes."""
    oracle = LanguageOracle(tree)
    return [tree.positions[i] for i in sorted(oracle.last(node))]


def follow_positions(tree: ParseTree, position: TreeNode) -> list[TreeNode]:
    """Convenience: ``Follow(p)`` as a list of position nodes."""
    oracle = LanguageOracle(tree)
    return [tree.positions[i] for i in sorted(oracle.follow(position))]
