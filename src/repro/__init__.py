"""repro — Deterministic Regular Expressions in Linear Time.

A complete reproduction of Groz, Maneth & Staworko, *Deterministic Regular
Expressions in Linear Time* (PODS 2012): the linear-time determinism test,
constant-time follow queries, and the four matching algorithms for
deterministic expressions, together with the XML validation application
layer, the classical Glushkov/Thompson baselines and the algorithmic
substrates (LCA, lazy arrays, van Emde Boas trees, lowest colored
ancestors) everything is built on.

Quick start::

    import repro

    pattern = repro.compile("(ab+b(b?)a)*")   # the paper's e1
    assert pattern.is_deterministic
    assert pattern.match("abba")

    report = repro.check_deterministic("(a*ba+bb)*")   # the paper's e2
    assert not report.deterministic
    print(report.describe())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduction of the paper's complexity claims.
"""

from .api import (
    COMPILE_CACHE_SIZE,
    Pattern,
    cache_stats,
    check_deterministic,
    check_deterministic_numeric,
    compile,  # noqa: A004 - mirrors re.compile
    is_deterministic,
    is_deterministic_numeric,
    iter_cached_patterns,
    load_snapshot,
    match,
    purge,  # noqa: A004 - mirrors re.purge
    resize_compile_cache,
    save_snapshot,
    snapshot_stats,
    stats,
)
from .core.determinism import DeterminismConflict, DeterminismReport
from .core.follow import FollowIndex
from .core.numeric import NumericDeterminismReport
from .diagnostics import MatchResult, Repair, ValidationResult
from .errors import (
    AlphabetError,
    DiagnosticsError,
    DTDSyntaxError,
    InvalidExpressionError,
    LexError,
    NotDeterministicError,
    RegexSyntaxError,
    ReproError,
    ValidationError,
    XMLSyntaxError,
)
from .lexer import Lexer, Token
from .matching import CompiledRuntime, build_matcher
from .regex import Regex, build_parse_tree, parse, parse_word, to_text

__version__ = "1.0.0"

__all__ = [
    "AlphabetError",
    "COMPILE_CACHE_SIZE",
    "CompiledRuntime",
    "DTDSyntaxError",
    "DeterminismConflict",
    "DeterminismReport",
    "DiagnosticsError",
    "FollowIndex",
    "InvalidExpressionError",
    "LexError",
    "Lexer",
    "MatchResult",
    "NotDeterministicError",
    "NumericDeterminismReport",
    "Pattern",
    "Regex",
    "Repair",
    "Token",
    "RegexSyntaxError",
    "ReproError",
    "ValidationError",
    "ValidationResult",
    "XMLSyntaxError",
    "__version__",
    "build_matcher",
    "build_parse_tree",
    "cache_stats",
    "check_deterministic",
    "check_deterministic_numeric",
    "compile",
    "is_deterministic",
    "is_deterministic_numeric",
    "iter_cached_patterns",
    "load_snapshot",
    "match",
    "parse",
    "parse_word",
    "purge",
    "resize_compile_cache",
    "save_snapshot",
    "snapshot_stats",
    "stats",
    "to_text",
]
