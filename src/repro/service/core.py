"""The in-process validation service: a thread pool over the shared caches.

:class:`ValidationService` is the object the HTTP layer (and any embedding
application) talks to.  It owns a ``ThreadPoolExecutor`` and exposes batch
operations whose per-item cost rides the warm paths built in earlier PRs:
words and child sequences are interned once through the pattern's
:class:`~repro.regex.alphabet.Alphabet`, then either answered in a single
encoded-corpus pass of the star-free multi-matcher (Theorem 4.12) or
replayed over the lazy-DFA rows every worker thread shares.

Metrics are first-class: each public call is wrapped in a request context
that maintains ``total`` / ``in_flight`` / ``errors`` counters and a
bounded latency ring from which :meth:`ValidationService.stats` derives
p50/p99.  The snapshot is taken under the metrics lock, so a ``GET
/stats`` issued while requests are in flight sees mutually consistent
numbers (``in_flight`` included).

>>> service = ValidationService(workers=2)
>>> service.match_batch("(ab+b(b?)a)*", ["abba", "bba", "bb"])
[True, True, False]
>>> service.stats()["requests"]["total"]
1
>>> service.close()
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from .. import api, cache
from ..matching import kernel
from ..matching.runtime import shared_row_count
from ..regex.ast import Regex
from ..xml.document import Document, Element
from ..xml.dtd import DTD, parse_dtd
from ..xml.parser import parse_document
from ..xml.validator import DTDValidator
from ..xml.xsd import XSDSchema, schema_from_dict
from .wire import DETAIL_LEVELS, shape_match

#: Default worker-thread count; the acceptance workloads run at 8.
DEFAULT_WORKERS = 8

#: Batches smaller than this run inline on the calling thread — the
#: cross-thread handoff costs more than matching a handful of words.
MIN_CHUNK = 64

#: How many distinct schemas/DTDs (keyed by payload) and patterns the
#: service keeps warm for reuse and for the stats surface.
MEMO_SIZE = 32

#: Latency ring size: enough samples for stable p99 without unbounded
#: memory on a long-lived process.
LATENCY_WINDOW = 2048


@dataclass(frozen=True, slots=True)
class DocumentVerdict:
    """Per-document validation outcome, JSON-shaped for the HTTP layer.

    ``violations`` keeps the legacy rendered-message tuple;  ``details``
    carries the structured :class:`~repro.xml.validator.Violation`
    objects behind them (element path, child index, expected tags), which
    the wire layer renders at ``detail=full``.
    """

    valid: bool
    violations: tuple[str, ...] = ()
    details: tuple = ()

    def to_dict(self) -> dict:
        return {"valid": self.valid, "violations": list(self.violations)}


class ValidationService:
    """Batch matching and document validation over a shared thread pool.

    All state the workers touch is either immutable, lock-free-readable
    (warm cache rows) or guarded by the library's writer locks, so one
    service instance serves any number of concurrent callers; the
    acceptance tests pin down verdict-equivalence between 8 workers and a
    single-threaded oracle.  Use as a context manager or call
    :meth:`close` to release the pool.
    """

    def __init__(
        self,
        workers: int = DEFAULT_WORKERS,
        min_chunk: int = MIN_CHUNK,
        latency_window: int = LATENCY_WINDOW,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.min_chunk = max(1, min_chunk)
        self._pool = ThreadPoolExecutor(max_workers=workers, thread_name_prefix="repro-service")
        self._metrics_lock = threading.Lock()
        self._requests = 0
        self._errors = 0
        self._in_flight = 0
        self._latencies: deque[float] = deque(maxlen=latency_window)
        #: memoized validators built from wire payloads, keyed by payload
        self._validators: "OrderedDict[str, DTDValidator | XSDSchema]" = OrderedDict()
        #: recently served patterns, for the stats surface
        self._patterns: "OrderedDict[str, api.Pattern]" = OrderedDict()
        self._memo_lock = threading.Lock()
        self._closed = False
        #: attached :class:`~repro.service.autosize.Autosizer`, if any;
        #: its report is merged into :meth:`stats` under ``"autosize"``
        self.autosizer = None

    # -- lifecycle ----------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down (idempotent); in-flight work completes."""
        self._closed = True
        self._pool.shutdown(wait=True)

    def _ensure_open(self) -> None:
        """Raise a clear error instead of the executor's opaque shutdown one.

        Every public entry point checks this first: submitting to a shut
        pool raises ``RuntimeError("cannot schedule new futures after
        shutdown")`` from deep inside ``concurrent.futures`` — or, for a
        corpus small enough to run inline, silently *succeeds* — neither
        of which tells the caller what actually happened.
        """
        if self._closed:
            raise RuntimeError("service is closed")

    def __enter__(self) -> "ValidationService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- request accounting -------------------------------------------------------------
    def track_request(self):
        """The request-accounting context manager, for embedding fronts.

        The asyncio front wraps one *streaming* request (which internally
        dispatches many micro-batches through :meth:`submit`) in a single
        scope, so ``requests.total`` counts client requests, not batches,
        and ``in_flight`` reflects open streams.  The scope is a plain
        sync context manager: entering/leaving only bumps counters under
        the metrics lock, so holding it across ``await`` points is safe.
        """
        return self._request()

    @contextmanager
    def _request(self):
        start = time.perf_counter()
        with self._metrics_lock:
            self._requests += 1
            self._in_flight += 1
        try:
            yield
        except BaseException:
            with self._metrics_lock:
                self._errors += 1
            raise
        finally:
            elapsed = time.perf_counter() - start
            with self._metrics_lock:
                self._in_flight -= 1
                self._latencies.append(elapsed)

    # -- fan-out plumbing ---------------------------------------------------------------
    def _map_chunked(self, work, items: list, per_item_cost: int = 1):
        """Apply *work* to every item, chunked across the pool, in order.

        ``work`` receives a list (one chunk) and returns a list of results.
        Chunk size follows the :data:`MIN_CHUNK` rule scaled down by
        *per_item_cost* (documents are heavier than words), and a corpus
        that fits one chunk runs inline — the pool handoff would dominate.
        """
        chunk = max(1, self.min_chunk // per_item_cost, -(-len(items) // self.workers))
        if len(items) <= chunk or self.workers == 1:
            return work(items)
        futures = [
            self._pool.submit(work, items[low : low + chunk])
            for low in range(0, len(items), chunk)
        ]
        results: list = []
        try:
            for future in futures:
                results.extend(future.result())
        except BaseException:
            # One poisoned chunk must not keep burning the pool: cancel
            # everything still queued (running chunks finish; their
            # results are discarded with the request).
            for pending in futures:
                pending.cancel()
            raise
        return results

    def submit(self, work: Callable, *args, **kwargs) -> Future:
        """Submit one unit of work to the pool (the async tier's leaf call).

        Returns the ``concurrent.futures.Future`` directly.  Work
        submitted here must never itself wait on the pool — the event
        loop awaiting a future whose work is *queued behind* other
        pool-waiting work is the classic thread-pool deadlock, which is
        why the async entry points below submit leaf closures only.
        """
        self._ensure_open()
        return self._pool.submit(work, *args, **kwargs)

    async def submit_async(self, work: Callable, *args, **kwargs):
        """Await one unit of pool work without blocking the event loop.

        Cancelling the returned awaitable cancels the pool future: a
        queued chunk is dropped before it ever runs (a disconnected
        client stops consuming pool capacity), a running one finishes and
        its result is discarded.
        """
        return await asyncio.wrap_future(self.submit(work, *args, **kwargs))

    async def _map_chunked_async(self, work, items: list, per_item_cost: int = 1):
        """:meth:`_map_chunked`, awaited: same chunking, no blocked thread.

        The sync path parks the calling thread in ``Future.result()``;
        here every chunk is awaited through ``asyncio.wrap_future``, so
        the event loop keeps serving other connections while the pool
        works.
        A failed chunk cancels the siblings still queued, mirroring the
        sync path's poisoned-chunk rule.
        """
        chunk = max(1, self.min_chunk // per_item_cost, -(-len(items) // self.workers))
        if len(items) <= chunk or self.workers == 1:
            return await self.submit_async(work, items)
        futures = [
            asyncio.wrap_future(self._pool.submit(work, items[low : low + chunk]))
            for low in range(0, len(items), chunk)
        ]
        try:
            chunks = await asyncio.gather(*futures)
        except BaseException:
            for pending in futures:
                pending.cancel()
            raise
        return [result for piece in chunks for result in piece]

    # -- batch matching -----------------------------------------------------------------
    def match_batch(
        self,
        expr: Regex | str,
        words: Iterable[str | Sequence[str]],
        dialect: str = "paper",
        detail: str = "verdict",
    ) -> list:
        """Match a corpus of words against one pattern, in parallel.

        The pattern comes from the module compile cache (warm across
        requests and across service instances); the corpus is split into
        chunks that each take the pattern's batch path —
        ``Pattern.match_all`` pre-encodes the chunk through the interned
        alphabet, then runs one star-free multi-matcher pass or a compiled
        replay over the shared rows.  Order is preserved.  Small corpora
        run inline: below :data:`MIN_CHUNK` words the pool handoff would
        dominate the matching itself.

        *detail* selects the verdict shape (the wire negotiation levels):
        ``"verdict"`` keeps the historical list of booleans on the
        untraced hot path; ``"summary"`` / ``"full"`` run the chunks in
        witness-recording mode and return the JSON-ready shapes of
        :func:`~repro.service.wire.shape_match` (failing index,
        expected-next set, repair hints).
        """
        self._ensure_open()
        if detail not in DETAIL_LEVELS:
            raise ValueError(f"unknown detail level {detail!r}")
        with self._request():
            pattern = api.compile(expr, dialect=dialect)
            self._remember_pattern(pattern, dialect)
            return self._map_chunked(self._match_work(pattern, detail), list(words))

    async def match_batch_async(
        self,
        expr: Regex | str,
        words: Iterable[str | Sequence[str]],
        dialect: str = "paper",
        detail: str = "verdict",
    ) -> list:
        """:meth:`match_batch` for event loops — no thread ever blocks.

        The sync path would park the calling thread (for the async front:
        the *event loop*) in ``Future.result()`` while the pool matches;
        here the compile (CPU-bound for a cold pattern: parse, determinism
        test) and every corpus chunk run on the pool while the loop only
        awaits.  Verdicts are identical to the sync path by construction —
        both call ``Pattern.match_all`` on the same chunks.
        """
        self._ensure_open()
        if detail not in DETAIL_LEVELS:
            raise ValueError(f"unknown detail level {detail!r}")
        with self._request():
            pattern = await self.submit_async(api.compile, expr, dialect=dialect)
            self._remember_pattern(pattern, dialect)
            return await self._map_chunked_async(
                self._match_work(pattern, detail), list(words)
            )

    @staticmethod
    def _match_work(pattern: api.Pattern, detail: str) -> Callable[[list], list]:
        """The per-chunk matching closure for one negotiated detail level.

        ``verdict`` is exactly the pre-PR-9 hot path (no tracing, bare
        booleans); richer levels record witnesses and shape them on the
        worker thread, so diagnosis replays never run on a serving loop.
        """
        if detail == "verdict":
            return pattern.match_all

        def work(chunk: list) -> list:
            results = pattern.match_all(chunk, detail="full")
            return [shape_match(result, detail) for result in results]

        return work

    # -- document validation ---------------------------------------------------------------
    def validate_documents(
        self,
        schema: DTDValidator | XSDSchema | DTD,
        documents: Sequence[Document | Element],
    ) -> list[DocumentVerdict]:
        """Validate many documents against one schema, one verdict each.

        *schema* may be a prepared :class:`~repro.xml.validator.DTDValidator`,
        an :class:`~repro.xml.xsd.XSDSchema`, or a raw
        :class:`~repro.xml.dtd.DTD` (wrapped in a validator on the fly).
        Documents fan out across the worker pool in chunks (sized like
        :meth:`match_batch`'s, scaled for the heavier per-item cost); they
        all replay the same warm per-model runtimes, so the marginal
        document costs pure transition replay.  DTD verdicts carry the
        violation messages, XSD verdicts the boolean outcome.
        """
        self._ensure_open()
        with self._request():
            validator = DTDValidator(schema) if isinstance(schema, DTD) else schema

            def verdicts(chunk: list) -> list[DocumentVerdict]:
                return [self._verdict(validator, document) for document in chunk]

            return self._map_chunked(verdicts, list(documents), per_item_cost=8)

    def validate_document_texts(
        self,
        schema: DTDValidator | XSDSchema | DTD,
        texts: Sequence[str],
    ) -> list[DocumentVerdict]:
        """Validate documents given as XML text — the ``POST /validate`` body.

        Parsing is usually the dominant per-document cost, so it happens
        *inside* the fan-out: each worker chunk parses and validates its
        own documents instead of the caller parsing the whole corpus
        serially before any validation starts.
        """
        self._ensure_open()
        with self._request():
            validator = DTDValidator(schema) if isinstance(schema, DTD) else schema

            def verdicts(chunk: list) -> list[DocumentVerdict]:
                return [self._verdict(validator, parse_document(text)) for text in chunk]

            return self._map_chunked(verdicts, list(texts), per_item_cost=8)

    async def validate_document_texts_async(
        self,
        schema: DTDValidator | XSDSchema | DTD,
        texts: Sequence[str],
    ) -> list[DocumentVerdict]:
        """:meth:`validate_document_texts` for event loops (see above).

        Parsing still happens inside the pool fan-out, chunk by chunk;
        the loop never parses a document or replays a transition itself.
        """
        self._ensure_open()
        with self._request():
            validator = DTDValidator(schema) if isinstance(schema, DTD) else schema

            def verdicts(chunk: list) -> list[DocumentVerdict]:
                return [self._verdict(validator, parse_document(text)) for text in chunk]

            return await self._map_chunked_async(verdicts, list(texts), per_item_cost=8)

    @staticmethod
    def _verdict(
        validator: DTDValidator | XSDSchema, document: Document | Element
    ) -> DocumentVerdict:
        if isinstance(validator, XSDSchema):
            root = document.root if isinstance(document, Document) else document
            result = validator.validate_element(root)
        else:
            result = validator.validate(document)
        return DocumentVerdict(
            result.valid,
            tuple(violation.describe() for violation in result),
            details=tuple(result),
        )

    # -- wire-payload schema memo --------------------------------------------------------
    def validator_for_dtd(self, dtd_text: str) -> DTDValidator:
        """A (memoized) validator for a DTD given as text — the HTTP path.

        Keyed by the payload itself, so repeated ``POST /validate`` calls
        carrying the same DTD reuse one validator — and therefore the warm
        content-model patterns behind it.
        """
        return self._memoized("dtd:" + dtd_text, lambda: DTDValidator(parse_dtd(dtd_text)))

    def schema_for_payload(self, payload_key: str, data: dict) -> XSDSchema:
        """A (memoized) :class:`XSDSchema` built from its JSON wire shape."""
        return self._memoized("xsd:" + payload_key, lambda: schema_from_dict(data))

    def _memo_put(self, memo: OrderedDict, key: str, value, replace: bool = False) -> object:
        """Insert into a bounded LRU memo and return the entry kept.

        The one place the lock + ``move_to_end`` + bounded ``popitem``
        dance lives, shared by the validator and pattern memos.  Without
        *replace* the first writer of a key wins (racing builders of one
        schema converge on a single validator); with it the newest value
        wins (the pattern memo must track post-purge recompiles).
        """
        with self._memo_lock:
            if replace:
                winner = memo[key] = value
            else:
                winner = memo.setdefault(key, value)
            memo.move_to_end(key)
            while len(memo) > MEMO_SIZE:
                memo.popitem(last=False)
            return winner

    def _memoized(self, key: str, build):
        memo = self._validators
        with self._memo_lock:
            hit = memo.get(key)
            if hit is not None:
                memo.move_to_end(key)
                return hit
        # Build outside the lock: parsing/compiling can be slow.  A racing
        # builder of the same key is tolerated; setdefault keeps the first.
        return self._memo_put(memo, key, build())

    def _remember_pattern(self, pattern: api.Pattern, dialect: str) -> None:
        self._memo_put(self._patterns, f"{dialect}:{pattern.expression}", pattern, replace=True)

    # -- telemetry -----------------------------------------------------------------------
    def stats(self) -> dict:
        """One consistent snapshot of every telemetry surface.

        ``requests`` (total / errors / in_flight / p50_ms / p99_ms) comes
        from this service's own counters; ``pattern_cache`` is the
        compile-cache namespace of :func:`repro.stats`; ``patterns`` maps
        recently served patterns to their
        :meth:`~repro.api.Pattern.stats`; ``validators`` maps memoized
        wire schemas to their ``stats()`` aggregates; ``shared_rows``
        counts interned dense rows process-wide; ``kernel`` is
        :func:`repro.matching.kernel.stats` (batch-kernel programs
        built, kernel-path vs fallback word counts and the scan backend
        in use); ``snapshot`` is the snapshot namespace of
        :func:`repro.stats` (dense-row persistence telemetry, including
        the ``snapshot_rejected`` degradation counter).
        """
        with self._metrics_lock:
            latencies = sorted(self._latencies)
            requests = {
                "total": self._requests,
                "errors": self._errors,
                "in_flight": self._in_flight,
                "p50_ms": _percentile_ms(latencies, 0.50),
                "p99_ms": _percentile_ms(latencies, 0.99),
            }
        with self._memo_lock:
            patterns = {
                key: pattern.stats() for key, pattern in self._patterns.items()
            }
            validators = {
                key: validator.stats() for key, validator in self._validators.items()
            }
        stats = {
            "service": {"workers": self.workers, "closed": self._closed},
            "requests": requests,
            "pattern_cache": cache.compile_cache_stats(),
            "patterns": patterns,
            "validators": validators,
            "shared_rows": shared_row_count(),
            "kernel": kernel.stats(),
            "snapshot": cache.snapshot_stats(),
        }
        autosizer = self.autosizer
        if autosizer is not None:
            stats["autosize"] = autosizer.stats()
        return stats


def _percentile_ms(sorted_latencies: list[float], quantile: float) -> float | None:
    """Nearest-rank percentile of a sorted latency list, in milliseconds."""
    if not sorted_latencies:
        return None
    rank = min(len(sorted_latencies) - 1, int(quantile * len(sorted_latencies)))
    return round(sorted_latencies[rank] * 1000.0, 3)
