"""Wire framing shared by the serving fronts (pure bytes, no sockets).

The asyncio front (:mod:`repro.service.aio`) and the threaded front
(:mod:`repro.service.http`) both speak HTTP/1.1 with three body shapes —
buffered JSON, streamed NDJSON and the snapshot byte stream — and the
framing rules must not diverge between them.  This module is the single
home for those rules, written against plain ``bytes`` so every piece is
unit-testable without a socket:

* request-head parsing (:func:`parse_request_head`) with the same limits
  both fronts enforce;
* NDJSON line framing (:func:`ndjson_line`) and the streaming grammar
  documented in ``docs/service.md``: *header object, one verdict value
  per item, trailer object*;
* chunked transfer encoding (:func:`chunk`, :data:`CHUNK_END`) for
  streamed responses whose length is unknown up front;
* the PR-3 content negotiation of violation detail levels
  (:func:`negotiate_detail`): ``verdict`` (booleans only), ``summary``
  (violation *counts*), ``full`` (structured violation objects — since
  PR 9 with element path, child index and expected tags; match results
  are shaped the same way by :func:`shape_match`);
* snapshot download integrity (:func:`snapshot_etag`,
  :func:`parse_range`): strong validators derived from the file identity
  so a ranged resume can never silently splice two snapshot generations
  together.

>>> head = parse_request_head(b"POST /match?detail=summary HTTP/1.1\\r\\nHost: x\\r\\n\\r\\n")
>>> head.method, head.path, head.query
('POST', '/match', {'detail': 'summary'})
>>> negotiate_detail(head.headers, head.query)
'summary'
>>> ndjson_line(True)
b'true\\n'
>>> chunk(b"abc")
b'3\\r\\nabc\\r\\n'
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote

#: Reject request heads (request line + headers) beyond this size.
MAX_HEAD_BYTES = 32 * 1024

#: Reject a single NDJSON line (one word / one document) beyond this
#: size; the stream itself is unbounded — that is the point.
MAX_LINE_BYTES = 8 * 1024 * 1024

#: Violation detail levels, cheapest first.  ``verdict`` streams bare
#: booleans, ``summary`` adds violation counts, ``full`` the messages.
DETAIL_LEVELS = ("verdict", "summary", "full")

#: Terminates a chunked response body.
CHUNK_END = b"0\r\n\r\n"


class WireError(Exception):
    """A protocol violation with the HTTP status it should produce."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


@dataclass(slots=True)
class RequestHead:
    """A parsed request line + headers (header names lower-cased)."""

    method: str
    target: str
    path: str
    version: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)

    def content_length(self) -> int | None:
        """The declared body length, ``None`` when absent, 400 when garbage."""
        raw = self.headers.get("content-length")
        if raw is None:
            return None
        try:
            length = int(raw)
        except ValueError:
            raise WireError(400, f"invalid Content-Length: {raw!r}") from None
        if length < 0:
            raise WireError(400, f"invalid Content-Length: {raw!r}")
        return length

    def is_chunked(self) -> bool:
        return self.headers.get("transfer-encoding", "").lower() == "chunked"

    def wants_ndjson(self) -> bool:
        """True when the request body is an NDJSON stream (by Content-Type)."""
        content_type = self.headers.get("content-type", "")
        return content_type.split(";", 1)[0].strip().lower() in (
            "application/x-ndjson",
            "application/ndjson",
        )

    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"


def parse_request_head(head: bytes) -> RequestHead:
    """Parse one request head (everything before the blank line).

    Raises :class:`WireError` (400/431/505) on malformed input; duplicate
    headers keep the last value (sufficient for the headers this service
    reads — none of them are list-valued).
    """
    if len(head) > MAX_HEAD_BYTES:
        raise WireError(431, "request head too large")
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 decodes all bytes
        raise WireError(400, "undecodable request head") from None
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise WireError(400, f"malformed request line: {lines[0]!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise WireError(505, f"unsupported HTTP version: {version!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep or not name or name != name.strip():
            raise WireError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    path, _, query_text = target.partition("?")
    query = {key: value for key, value in parse_qsl(query_text, keep_blank_values=True)}
    return RequestHead(
        method=method,
        target=target,
        path=unquote(path),
        version=version,
        query=query,
        headers=headers,
    )


# ---------------------------------------------------------------------------
# Detail-level negotiation (the PR-3 wire follow-up)
# ---------------------------------------------------------------------------

def negotiate_detail(headers: dict[str, str], query: dict[str, str], default: str = "full") -> str:
    """The violation detail level a response should carry.

    Precedence: the ``detail`` query parameter, then an explicit
    ``X-Repro-Detail`` header, then a ``detail=`` parameter on the
    ``Accept`` header (``Accept: application/x-ndjson; detail=summary``),
    then *default*.  An unknown level is a 400 — silently downgrading
    would hand a dashboard booleans where it expected messages.
    """
    candidate = query.get("detail") or headers.get("x-repro-detail")
    if candidate is None:
        accept = headers.get("accept", "")
        for part in accept.split(";")[1:]:
            name, sep, value = part.strip().partition("=")
            if sep and name.strip().lower() == "detail":
                candidate = value.strip()
                break
    if candidate is None:
        return default
    candidate = candidate.lower()
    if candidate not in DETAIL_LEVELS:
        raise WireError(
            400, f"unknown detail level {candidate!r} (expected one of {', '.join(DETAIL_LEVELS)})"
        )
    return candidate


def shape_verdict(valid: bool, violations, detail: str):
    """One document verdict in its negotiated wire shape (JSON-ready).

    *violations* may be plain strings (the legacy message shape) or
    diagnostic objects exposing ``to_dict`` — the PR-9
    :class:`~repro.xml.validator.Violation` records with element path,
    child index and expected tags.  ``verdict`` stays a bare boolean and
    ``summary`` a count either way; ``full`` renders whatever detail the
    objects carry, identically on the threaded and asyncio fronts.
    """
    if detail == "verdict":
        return valid
    if detail == "summary":
        return {"valid": valid, "violations": len(violations)}
    return {
        "valid": valid,
        "violations": [
            violation.to_dict() if hasattr(violation, "to_dict") else violation
            for violation in violations
        ],
    }


def shape_match(result, detail: str):
    """One match verdict in its negotiated wire shape (JSON-ready).

    *result* is a :class:`~repro.diagnostics.MatchResult` (or a bare
    bool, shaped as ``verdict`` regardless).  ``verdict`` keeps the
    historical bare boolean — the level both fronts default to on
    ``/match`` — ``summary`` adds the failing index, and ``full`` the
    whole diagnosis (expected-next set, repair hints) via
    :meth:`~repro.diagnostics.MatchResult.to_dict`.
    """
    if detail == "verdict" or isinstance(result, bool):
        return bool(result)
    if detail == "summary":
        payload = {"matched": result.matched}
        if not result.matched:
            payload["error_index"] = result.error_index
        return payload
    return result.to_dict()


# ---------------------------------------------------------------------------
# NDJSON + chunked transfer encoding
# ---------------------------------------------------------------------------

def ndjson_line(value) -> bytes:
    """One NDJSON line: compact JSON plus the newline terminator."""
    return json.dumps(value, separators=(",", ":")).encode("utf-8") + b"\n"


def chunk(data: bytes) -> bytes:
    """*data* as one HTTP/1.1 chunk (empty input yields no chunk at all)."""
    if not data:
        return b""
    return b"%x\r\n%s\r\n" % (len(data), data)


def parse_chunk_size(line: bytes) -> int:
    """The size from one chunk-size line (extensions after ``;`` ignored)."""
    text = line.strip().split(b";", 1)[0]
    try:
        size = int(text, 16)
    except ValueError:
        raise WireError(400, f"malformed chunk size: {line!r}") from None
    if size < 0:
        raise WireError(400, f"malformed chunk size: {line!r}")
    return size


def split_lines(buffer: bytearray) -> list[bytes]:
    """Drain complete ``\\n``-terminated lines from *buffer* (in place).

    The tail (an incomplete line) stays in the buffer; a tail beyond
    :data:`MAX_LINE_BYTES` is a 413 — one absurd line must not buffer
    unbounded memory, which is exactly what the streaming tier promises
    not to do.
    """
    lines: list[bytes] = []
    while True:
        newline = buffer.find(b"\n")
        if newline < 0:
            break
        line = bytes(buffer[:newline])
        del buffer[: newline + 1]
        if line.endswith(b"\r"):
            line = line[:-1]
        lines.append(line)
    if len(buffer) > MAX_LINE_BYTES:
        raise WireError(413, f"NDJSON line exceeds {MAX_LINE_BYTES} bytes")
    return lines


# ---------------------------------------------------------------------------
# Snapshot download integrity (ETag + single-range requests)
# ---------------------------------------------------------------------------

def snapshot_etag(stat) -> str:
    """A strong validator for the snapshot file behind an open descriptor.

    Derived from the inode identity, size and mtime: the snapshot
    lifecycle replaces the file atomically (new inode per rewrite), so
    any refresh changes the tag and a conditional resume against a stale
    tag falls back to a full download instead of splicing generations.
    """
    return f'"{stat.st_ino:x}-{stat.st_size:x}-{stat.st_mtime_ns:x}"'


def parse_range(header_value: str | None, size: int) -> tuple[int, int] | None:
    """A single ``Range: bytes=...`` header as ``(offset, length)``.

    ``None`` means "no usable range: serve the whole file" (absent
    header, other units, or multi-range requests — tolerating a range is
    the contract, honouring every exotic shape is not).  A syntactically
    valid range that lies beyond the file raises ``WireError(416)``.
    """
    if not header_value or size == 0:
        return None
    unit, sep, spec = header_value.partition("=")
    if not sep or unit.strip().lower() != "bytes" or "," in spec:
        return None
    start_text, sep, end_text = spec.strip().partition("-")
    if not sep:
        return None
    try:
        if not start_text:  # suffix range: the last N bytes
            suffix = int(end_text)
            if suffix <= 0:
                raise ValueError
            offset = max(0, size - suffix)
            return offset, size - offset
        offset = int(start_text)
        end = int(end_text) if end_text else size - 1
    except ValueError:
        return None
    if offset >= size:
        raise WireError(416, f"range {header_value!r} outside a {size}-byte snapshot")
    if end < offset:
        return None
    end = min(end, size - 1)
    return offset, end - offset + 1
