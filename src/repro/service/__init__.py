"""repro.service — a concurrent validation service over the compiled engine.

The ROADMAP's north star is a production-scale system serving heavy
traffic; this package is the serving layer that turns the library's
single-threaded building blocks into one.  It exists because the rest of
the stack was made safe to share:

* the module-level compile cache (:func:`repro.compile`) takes warm hits
  lock-free and serialises misses/purges under one mutex;
* :class:`~repro.matching.runtime.CompiledRuntime` rows are written under
  a per-runtime lock while warm replay stays lock-free, so every worker
  thread benefits from every other worker's memoized transitions — the
  Li et al. observation (a few shared content models dominate real schema
  corpora) turned into a shared warm cache;
* the linear-time guarantee of the source paper keeps per-request latency
  proportional to input size, which is what makes the p50/p99 counters
  meaningful under load.

Two entry points:

* :class:`ValidationService` — an in-process facade owning a thread pool,
  with batch operations (:meth:`~ValidationService.match_batch`,
  :meth:`~ValidationService.validate_documents`) that pre-encode corpora
  through the interned alphabet, and a :meth:`~ValidationService.stats`
  snapshot aggregating every telemetry surface the library exposes;
* :mod:`repro.service.http` — a stdlib-only HTTP front end
  (``python -m repro.service``) with ``POST /match``, ``POST /validate``,
  ``GET /stats`` and ``GET /snapshot`` (the fleet-bootstrap stream);
* :mod:`repro.service.aio` — the asyncio streaming front
  (``--front aio``): the same endpoints from one event loop per process,
  plus NDJSON request/response streaming with per-connection
  backpressure, per-request deadlines (``X-Repro-Deadline-Ms``), content-
  negotiated violation detail levels and an ``Authorization: Bearer``
  hook; framing rules shared with the threaded front live in
  :mod:`repro.service.wire`;
* :mod:`repro.service.autosize` — telemetry-driven cache sizing
  (``--autosize``): a feedback loop resizing the compile cache
  (:func:`repro.resize_compile_cache`) and the per-pattern acceptance
  memos from the same counters ``GET /stats`` reports;
* :mod:`repro.service.prefork` — the multi-process front
  (``--processes N``): the parent preloads a warm-state snapshot
  (``docs/snapshot.md`` — a file, or a running fleet's ``/snapshot``
  URL), forks N shared-nothing workers that accept on one inherited
  socket, aggregates fleet stats through a shared-memory
  :class:`~repro.service.prefork.StatsBoard` merged into ``GET /stats``,
  and keeps the on-disk snapshot fresh with a background
  :class:`~repro.service.prefork.SnapshotRefresher`
  (``--snapshot-save``).

See ``docs/service.md`` for endpoint shapes and deployment notes.
"""

from .aio import AsyncServiceServer
from .aio_run import serve as serve_aio
from .autosize import Autosizer
from .core import DocumentVerdict, ValidationService
from .http import ServiceHTTPServer, serve
from .prefork import SnapshotRefresher

__all__ = [
    "AsyncServiceServer",
    "Autosizer",
    "DocumentVerdict",
    "ServiceHTTPServer",
    "SnapshotRefresher",
    "ValidationService",
    "serve",
    "serve_aio",
]
