"""Stdlib-only HTTP front end for the validation service.

``ThreadingHTTPServer`` gives one handler thread per connection; handlers
delegate to a shared :class:`~repro.service.core.ValidationService`, whose
worker pool and warm caches do the actual matching.  No third-party web
framework is involved — the deployment story is ``python -m repro.service``
behind any reverse proxy.

Endpoints (JSON in, JSON out; shapes documented in ``docs/service.md``):

``POST /match``
    ``{"pattern": "(ab)*", "words": ["abab", ...], "dialect": "paper"}``
    → ``{"verdicts": [true, ...], "strategy": ..., "batch_path": ...}``.
    Non-deterministic patterns are a *422* with the conflict explanation —
    determinism is a property of the input, not a server fault.  The
    negotiated ``detail`` level (``?detail=``, ``X-Repro-Detail``, or the
    ``Accept`` parameter; default ``verdict``) upgrades the booleans to
    the :func:`~repro.service.wire.shape_match` diagnosis shapes —
    failing index, expected-next set, repair hints.

``POST /validate``
    ``{"dtd": "<!ELEMENT ...>", "documents": ["<a>...</a>", ...]}`` or
    ``{"xsd": {"root": ..., "elements": {...}}, "documents": [...]}``
    → ``{"verdicts": [{"valid": ..., "violations": [...]}, ...]}``.
    ``detail`` negotiates the violation shape (default ``full``:
    structured objects with element path, child index, expected tags).

``GET /stats``
    The service's consistent telemetry snapshot (request counters with
    p50/p99, compile-cache stats, per-pattern runtime stats, per-schema
    validator stats, shared dense-row count, batch-kernel telemetry,
    snapshot telemetry).

``GET /snapshot``
    Streams the server's current warm-state snapshot file (format v2,
    ``docs/snapshot.md``) as ``application/octet-stream``, so a fresh
    host can bootstrap from a running fleet:
    ``repro.load_snapshot("http://host:port/snapshot")`` or
    ``python -m repro.service --snapshot-url ...``.  404 until the
    server has a snapshot to serve (``--snapshot-save`` once the
    refresher has persisted, or the ``--snapshot`` file it booted from).

``GET /healthz``
    Liveness probe: ``{"status": "ok"}``.
"""

from __future__ import annotations

import json
import os
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qsl

from ..errors import NotDeterministicError, ReproError
from . import wire
from .core import DEFAULT_WORKERS, ValidationService

#: Default bind address of ``python -m repro.service``.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8421

#: Reject request bodies beyond this size (bytes) instead of buffering them.
MAX_BODY_BYTES = 64 * 1024 * 1024


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ValidationService`.

    Pass an existing service to share its pool and memos; otherwise one is
    created (and closed again by :meth:`server_close`).
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: ValidationService | None = None,
        snapshot_source: str | None = None,
    ):
        super().__init__(address, ServiceRequestHandler)
        self.service = service if service is not None else ValidationService()
        self._owns_service = service is None
        #: path of the snapshot file ``GET /snapshot`` streams (the live
        #: ``--snapshot-save`` file, falling back to the file the server
        #: booted from); ``None`` disables the endpoint (404).
        self.snapshot_source = snapshot_source

    def server_close(self) -> None:  # noqa: D102 - stdlib override
        super().server_close()
        if self._owns_service:
            self.service.close()

    def stats_payload(self) -> dict:
        """The ``GET /stats`` body; the prefork front overrides this to
        merge the whole fleet's shared-memory stats into the response."""
        return self.service.stats()


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes requests into the shared service and speaks JSON."""

    server_version = "repro-service/1.0"
    protocol_version = "HTTP/1.1"

    # The default handler prints one line per request to stderr; a busy
    # service would drown real diagnostics, so access logging is off.
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    @property
    def service(self) -> ValidationService:
        return self.server.service

    # -- plumbing -----------------------------------------------------------------------
    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            # Error paths that could not consume the request body set this;
            # advertise the close instead of silently dropping the socket.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_json(self) -> dict | None:
        """The request body as a JSON object, or ``None`` after a 4xx reply.

        Error replies issued *before* the body has been consumed also mark
        the connection for closing: under HTTP/1.1 keep-alive the unread
        body bytes would otherwise be parsed as the client's next request
        line, desyncing the connection.
        """
        try:
            length = int(self.headers.get("Content-Length", "") or 0)
        except ValueError:
            length = -1
        if length <= 0:
            self.close_connection = True  # unknown body length: cannot resync
            self._send_error_json(400, "a JSON body with Content-Length is required")
            return None
        if length > MAX_BODY_BYTES:
            self.close_connection = True  # refuse to drain an oversized body
            self._send_error_json(413, f"body exceeds {MAX_BODY_BYTES} bytes")
            return None
        try:
            payload = json.loads(self.rfile.read(length))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            self._send_error_json(400, f"invalid JSON body: {error}")
            return None
        if not isinstance(payload, dict):
            self._send_error_json(400, "the JSON body must be an object")
            return None
        return payload

    # -- routes -------------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib handler name
        if self.path == "/stats":
            self._send_json(200, self.server.stats_payload())
        elif self.path == "/snapshot":
            self._send_snapshot()
        elif self.path in ("/", "/healthz"):
            self._send_json(200, {"status": "ok", "service": "repro"})
        else:
            self._send_error_json(404, f"no such endpoint: {self.path}")

    def _send_snapshot(self) -> None:
        """Stream the current snapshot file (the fleet-bootstrap endpoint).

        The file is written atomically (temp + ``os.replace``), so the
        handle opened here always streams one *complete* snapshot — a
        concurrent refresh replaces the directory entry but never the
        bytes under an open descriptor.  Responses carry a strong
        ``ETag`` (:func:`~repro.service.wire.snapshot_etag`) and honour
        single-byte-range requests with ``If-Range``, so a bootstrapping
        host can resume an interrupted download — and a resume across a
        refresh (the tag changed with the inode) falls back to a full
        200 instead of splicing two snapshot generations together.
        """
        source = getattr(self.server, "snapshot_source", None)
        if not source:
            self._send_error_json(404, "this server does not serve a snapshot")
            return
        try:
            handle = open(source, "rb")
        except OSError:
            self._send_error_json(404, "no snapshot has been persisted yet")
            return
        with handle:
            stat = os.fstat(handle.fileno())
            etag = wire.snapshot_etag(stat)
            size = stat.st_size
            status, offset, length = 200, 0, size
            if_range = self.headers.get("If-Range")
            if if_range is None or if_range == etag:
                try:
                    span = wire.parse_range(self.headers.get("Range"), size)
                except wire.WireError as error:
                    self.send_response(error.status)
                    body = json.dumps({"error": str(error)}).encode("utf-8")
                    self.send_header("Content-Type", "application/json; charset=utf-8")
                    self.send_header("Content-Length", str(len(body)))
                    self.send_header("Content-Range", f"bytes */{size}")
                    self.end_headers()
                    self.wfile.write(body)
                    return
                if span is not None:
                    offset, length = span
                    status = 206
            self.send_response(status)
            self.send_header("Content-Type", "application/octet-stream")
            self.send_header("Content-Length", str(length))
            self.send_header("ETag", etag)
            self.send_header("Accept-Ranges", "bytes")
            if status == 206:
                self.send_header("Content-Range", f"bytes {offset}-{offset + length - 1}/{size}")
            self.end_headers()
            handle.seek(offset)
            remaining = length
            while remaining > 0:
                block = handle.read(min(64 * 1024, remaining))
                if not block:
                    break
                self.wfile.write(block)
                remaining -= len(block)

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler name
        path = self.path.partition("?")[0]
        handler = {"/match": self._handle_match, "/validate": self._handle_validate}.get(path)
        if handler is None:
            self.close_connection = True  # body unread: keep-alive would desync
            self._send_error_json(404, f"no such endpoint: {path}")
            return
        payload = self._read_json()
        if payload is None:
            return
        try:
            handler(payload)
        except wire.WireError as error:
            self._send_error_json(error.status, str(error))
        except NotDeterministicError as error:
            # Unprocessable input, not a server fault: the expression (or a
            # content model) fails the paper's determinism requirement.
            self._send_error_json(422, str(error))
        except ReproError as error:
            self._send_error_json(400, str(error))
        except (TypeError, ValueError, KeyError) as error:
            self._send_error_json(400, f"malformed request: {error!r}")

    def _negotiated_detail(self, default: str) -> str:
        """The wire detail level for this request (query > header > Accept).

        Shares :func:`~repro.service.wire.negotiate_detail` with the
        asyncio front so both fronts honour the same precedence and
        reject unknown levels with the same 400.
        """
        query = dict(parse_qsl(self.path.partition("?")[2], keep_blank_values=True))
        headers = {name.lower(): value for name, value in self.headers.items()}
        return wire.negotiate_detail(headers, query, default=default)

    # -- endpoint bodies -----------------------------------------------------------------
    def _handle_match(self, payload: dict) -> None:
        expr = payload.get("pattern")
        if not isinstance(expr, str):
            self._send_error_json(400, 'a string "pattern" field is required')
            return
        words = payload.get("words")
        if not isinstance(words, list):
            self._send_error_json(400, 'a list "words" field is required')
            return
        # Reject malformed entries up front with a clean 400: left to the
        # worker pool, a non-string word surfaces as a repr'd TypeError
        # after a wasted (chunked) fan-out.
        for word in words:
            if isinstance(word, str):
                continue
            if isinstance(word, list) and all(isinstance(symbol, str) for symbol in word):
                continue
            self._send_error_json(
                400, '"words" entries must be strings or lists of symbol strings'
            )
            return
        dialect = payload.get("dialect", "paper")
        detail = self._negotiated_detail(default="verdict")
        from .. import api

        pattern = api.compile(expr, dialect=dialect)
        if not pattern.is_deterministic:
            self._send_error_json(422, f"pattern is not deterministic: {pattern.explain()}")
            return
        verdicts = self.service.match_batch(expr, words, dialect=dialect, detail=detail)
        description = pattern.describe()
        self._send_json(
            200,
            {
                "pattern": expr,
                "count": len(verdicts),
                "detail": detail,
                "verdicts": verdicts,
                "strategy": description.get("strategy"),
                "batch_path": description.get("batch_path"),
            },
        )

    def _handle_validate(self, payload: dict) -> None:
        detail = self._negotiated_detail(default="full")
        documents = payload.get("documents")
        if not isinstance(documents, list):
            self._send_error_json(400, 'a list "documents" field (XML text) is required')
            return
        # The documents list must be fully validated *before* any schema
        # is built: validator_for_dtd/schema_for_payload memoize into the
        # MEMO_SIZE-bounded LRU, so a malformed request that got this far
        # could evict a warm validator another client is relying on.
        if not all(isinstance(text, str) for text in documents):
            self._send_error_json(400, '"documents" must be a list of XML strings')
            return
        dtd_text = payload.get("dtd")
        xsd_data = payload.get("xsd")
        if (dtd_text is None) == (xsd_data is None):
            self._send_error_json(400, 'exactly one of "dtd" (text) or "xsd" (object) is required')
            return
        if dtd_text is not None:
            if not isinstance(dtd_text, str):
                self._send_error_json(400, '"dtd" must be the DTD as a string')
                return
            validator = self.service.validator_for_dtd(dtd_text)
            kind = "dtd"
        else:
            if not isinstance(xsd_data, dict):
                self._send_error_json(400, '"xsd" must be a schema object')
                return
            validator = self.service.schema_for_payload(
                json.dumps(xsd_data, sort_keys=True), xsd_data
            )
            if not validator.is_valid_schema():
                self._send_error_json(
                    422, "schema violates Unique Particle Attribution (non-deterministic)"
                )
                return
            kind = "xsd"
        # Parsing happens inside the worker fan-out, chunk by chunk — for
        # large corpora it is the dominant per-document cost and must not
        # run serially on this handler thread.
        verdicts = self.service.validate_document_texts(validator, documents)
        self._send_json(
            200,
            {
                "schema": kind,
                "count": len(verdicts),
                "detail": detail,
                "verdicts": [
                    wire.shape_verdict(v.valid, v.details or v.violations, detail)
                    for v in verdicts
                ],
            },
        )


def serve(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    workers: int = DEFAULT_WORKERS,
    snapshot_source: str | None = None,
    refresher=None,
    autosizer=None,
) -> None:
    """Run the service until interrupted (the ``python -m repro.service`` body).

    *snapshot_source* enables ``GET /snapshot`` (streaming that file);
    *refresher* is an optional started/stopped object (a
    :class:`~repro.service.prefork.SnapshotRefresher`) re-persisting the
    snapshot in the background while the server runs; *autosizer* (a
    :class:`~repro.service.autosize.Autosizer`) runs the telemetry-driven
    cache-sizing loop alongside the server.
    """
    service = ValidationService(workers=workers)
    server = ServiceHTTPServer((host, port), service, snapshot_source=snapshot_source)
    bound_host, bound_port = server.server_address[:2]
    if refresher is not None:
        refresher.start()
    if autosizer is not None:
        service.autosizer = autosizer
        autosizer.start()
    # flush so a supervisor (or the CI smoke step) redirecting stdout can
    # read the ephemeral port back before the first request arrives
    print(
        f"repro.service listening on http://{bound_host}:{bound_port} "
        f"({workers} workers) — POST /match, POST /validate, GET /stats, GET /snapshot",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if refresher is not None:
            refresher.stop()
        if autosizer is not None:
            autosizer.stop()
        server.server_close()
        service.close()
