"""``python -m repro.service`` — boot the HTTP validation service.

Single-process by default; ``--processes N`` switches to the prefork
front (N shared-nothing worker processes accepting on one socket), and
``--snapshot PATH`` preloads a dense-row snapshot before any traffic —
in prefork mode the parent loads it once and every forked worker shares
the mmap'd rows copy-on-write.  See ``docs/service.md`` and
``docs/snapshot.md``.
"""

from __future__ import annotations

import argparse
import os

from .. import api
from .core import DEFAULT_WORKERS
from .http import DEFAULT_HOST, DEFAULT_PORT, serve


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="HTTP validation service for deterministic regular expressions "
        "(POST /match, POST /validate, GET /stats).",
    )
    parser.add_argument(
        "--host", default=DEFAULT_HOST, help=f"bind address (default {DEFAULT_HOST})"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help=f"bind port (default {DEFAULT_PORT}; 0 = ephemeral)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=DEFAULT_WORKERS,
        help=f"worker threads per process (default {DEFAULT_WORKERS})",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=1,
        help="worker processes; > 1 boots the prefork front (POSIX only, default 1)",
    )
    parser.add_argument(
        "--snapshot",
        default=None,
        metavar="PATH",
        help="dense-row snapshot to preload before serving (see docs/snapshot.md)",
    )
    arguments = parser.parse_args(argv)
    if arguments.processes > 1 and hasattr(os, "fork"):
        from .prefork import serve_prefork

        serve_prefork(
            host=arguments.host,
            port=arguments.port,
            processes=arguments.processes,
            workers=arguments.workers,
            snapshot_path=arguments.snapshot,
        )
        return
    if arguments.processes > 1:
        print("os.fork is unavailable on this platform; serving single-process", flush=True)
    if arguments.snapshot:
        report = api.load_snapshot(arguments.snapshot)
        print(
            f"snapshot {arguments.snapshot}: {report['patterns_loaded']} patterns / "
            f"{report['rows_loaded']} rows preloaded, {report['rejected']} rejected",
            flush=True,
        )
    serve(host=arguments.host, port=arguments.port, workers=arguments.workers)


if __name__ == "__main__":
    main()
