"""``python -m repro.service`` — boot the HTTP validation service.

Single-process by default; ``--processes N`` switches to the prefork
model (N shared-nothing worker processes accepting on one socket), and
``--front {threaded,aio}`` picks each process's serving body: the
thread-per-connection front (default) or the asyncio streaming front
(NDJSON request/response streaming with backpressure and per-request
deadlines — ``docs/service.md``).  ``--auth-token`` (or the
``REPRO_AUTH_TOKEN`` environment variable) requires ``Authorization:
Bearer`` on everything but ``/healthz``; ``--autosize`` runs the
telemetry-driven cache-sizing loop.  The snapshot lifecycle
(``docs/snapshot.md``):

* ``--snapshot PATH`` preloads a warm-state snapshot before any traffic
  (in prefork mode the parent loads it once and every forked worker
  shares the mmap'd pages copy-on-write);
* ``--snapshot-url URL`` bootstraps the same way from a *running
  fleet*'s ``GET /snapshot`` endpoint instead of a local file;
* ``--snapshot-save PATH`` turns on the live lifecycle: a background
  refresher atomically re-persists PATH as materialization grows
  (``--snapshot-refresh`` seconds between checks), and ``GET /snapshot``
  streams the current file to bootstrapping hosts.

See ``docs/service.md`` and ``docs/snapshot.md``.
"""

from __future__ import annotations

import argparse
import os

from .. import api
from .autosize import AUTOSIZE_INTERVAL, Autosizer
from .core import DEFAULT_WORKERS
from .http import DEFAULT_HOST, DEFAULT_PORT, serve
from .prefork import (
    REFRESH_INTERVAL,
    REFRESH_MIN_GROWTH,
    SnapshotRefresher,
    describe_preload,
    snapshot_source_for,
)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="HTTP validation service for deterministic regular expressions "
        "(POST /match, POST /validate, GET /stats, GET /snapshot).",
    )
    parser.add_argument(
        "--host", default=DEFAULT_HOST, help=f"bind address (default {DEFAULT_HOST})"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help=f"bind port (default {DEFAULT_PORT}; 0 = ephemeral)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=DEFAULT_WORKERS,
        help=f"worker threads per process (default {DEFAULT_WORKERS})",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=1,
        help="worker processes; > 1 boots the prefork front (POSIX only, default 1)",
    )
    parser.add_argument(
        "--front",
        choices=("threaded", "aio"),
        default="threaded",
        help="serving front per process: thread-per-connection (threaded, default) "
        "or the asyncio streaming front (aio: NDJSON streaming, backpressure, "
        "deadlines)",
    )
    parser.add_argument(
        "--auth-token",
        default=os.environ.get("REPRO_AUTH_TOKEN"),
        metavar="TOKEN",
        help="require 'Authorization: Bearer TOKEN' on every endpoint except "
        "/healthz (default: $REPRO_AUTH_TOKEN; aio front only)",
    )
    parser.add_argument(
        "--autosize",
        action="store_true",
        help="telemetry-driven cache sizing: grow/shrink the compile cache and "
        "per-pattern acceptance memos from live traffic (reported under "
        "/stats 'autosize')",
    )
    parser.add_argument(
        "--autosize-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help=f"seconds between autosizing ticks (default {AUTOSIZE_INTERVAL:g})",
    )
    parser.add_argument(
        "--snapshot",
        default=None,
        metavar="PATH",
        help="warm-state snapshot to preload before serving (see docs/snapshot.md)",
    )
    parser.add_argument(
        "--snapshot-url",
        default=None,
        metavar="URL",
        help="bootstrap from a running fleet: fetch and preload GET /snapshot "
        "from this base URL (e.g. http://host:port/snapshot)",
    )
    parser.add_argument(
        "--snapshot-save",
        default=None,
        metavar="PATH",
        help="live snapshot lifecycle: auto-refresh this file as materialization "
        "grows and stream it over GET /snapshot",
    )
    parser.add_argument(
        "--snapshot-refresh",
        type=float,
        default=REFRESH_INTERVAL,
        metavar="SECONDS",
        help=f"seconds between snapshot auto-refresh checks (default {REFRESH_INTERVAL:g})",
    )
    parser.add_argument(
        "--snapshot-refresh-growth",
        type=int,
        default=REFRESH_MIN_GROWTH,
        metavar="N",
        help="materialization growth (memoized transitions + table/memo entries) "
        f"required before the snapshot is rewritten (default {REFRESH_MIN_GROWTH})",
    )
    arguments = parser.parse_args(argv)
    preload = arguments.snapshot or arguments.snapshot_url
    if arguments.snapshot and arguments.snapshot_url:
        parser.error("--snapshot and --snapshot-url are mutually exclusive")
    if arguments.auth_token and arguments.front != "aio":
        parser.error("--auth-token requires --front aio")
    autosize_interval = arguments.autosize_interval
    if autosize_interval is not None and not arguments.autosize:
        parser.error("--autosize-interval requires --autosize")
    if arguments.processes > 1 and hasattr(os, "fork"):
        from .prefork import serve_prefork

        serve_prefork(
            host=arguments.host,
            port=arguments.port,
            processes=arguments.processes,
            workers=arguments.workers,
            snapshot_path=preload,
            snapshot_save=arguments.snapshot_save,
            refresh_interval=arguments.snapshot_refresh,
            refresh_min_growth=arguments.snapshot_refresh_growth,
            front=arguments.front,
            auth_token=arguments.auth_token,
            autosize_interval=(
                (autosize_interval or AUTOSIZE_INTERVAL) if arguments.autosize else None
            ),
        )
        return
    if arguments.processes > 1:
        print("os.fork is unavailable on this platform; serving single-process", flush=True)
    if preload:
        print(describe_preload(preload, api.load_snapshot(preload)), flush=True)
    refresher = (
        SnapshotRefresher(
            arguments.snapshot_save,
            interval=arguments.snapshot_refresh,
            min_growth=arguments.snapshot_refresh_growth,
        )
        if arguments.snapshot_save
        else None
    )
    autosizer = (
        Autosizer(interval=autosize_interval if autosize_interval else AUTOSIZE_INTERVAL)
        if arguments.autosize
        else None
    )
    snapshot_source = snapshot_source_for(arguments.snapshot_save, arguments.snapshot)
    if arguments.front == "aio":
        from .aio_run import serve as serve_aio

        serve_aio(
            host=arguments.host,
            port=arguments.port,
            workers=arguments.workers,
            snapshot_source=snapshot_source,
            refresher=refresher,
            auth_token=arguments.auth_token,
            autosizer=autosizer,
        )
        return
    serve(
        host=arguments.host,
        port=arguments.port,
        workers=arguments.workers,
        snapshot_source=snapshot_source,
        refresher=refresher,
        autosizer=autosizer,
    )


if __name__ == "__main__":
    main()
