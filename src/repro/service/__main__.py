"""``python -m repro.service`` — boot the HTTP validation service."""

from __future__ import annotations

import argparse

from .core import DEFAULT_WORKERS
from .http import DEFAULT_HOST, DEFAULT_PORT, serve


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="HTTP validation service for deterministic regular expressions "
        "(POST /match, POST /validate, GET /stats).",
    )
    parser.add_argument("--host", default=DEFAULT_HOST, help=f"bind address (default {DEFAULT_HOST})")
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT, help=f"bind port (default {DEFAULT_PORT}; 0 = ephemeral)"
    )
    parser.add_argument(
        "--workers", type=int, default=DEFAULT_WORKERS, help=f"worker threads (default {DEFAULT_WORKERS})"
    )
    arguments = parser.parse_args(argv)
    serve(host=arguments.host, port=arguments.port, workers=arguments.workers)


if __name__ == "__main__":
    main()
