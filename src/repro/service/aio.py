"""Asyncio streaming front: bounded memory, backpressure, deadlines.

The threaded front (:mod:`repro.service.http`) buffers every request
body, so validating a corpus is bounded by worker memory, and one
handler thread parks per connection.  This front serves the same
endpoints from one event loop per process:

* **Streaming NDJSON** on ``POST /match`` and ``POST /validate``
  (``Content-Type: application/x-ndjson``, request body streamed via
  ``Content-Length`` or chunked transfer encoding): *header object, one
  item per line*; the response is chunked NDJSON — *header object, one
  verdict per item in order, trailer object* (grammar in
  ``docs/service.md``).  Memory is bounded by the micro-batch size times
  the queue depth, never by the corpus.
* **Backpressure** per connection: items are micro-batched
  (:data:`STREAM_BATCH`) onto the shared worker pool through a bounded
  queue (:data:`MAX_PENDING_BATCHES`); when the pool falls behind, the
  reader stops consuming the socket and TCP pushes back on the client.
  Verdict writes go through ``drain()``, so a slow *reader* pauses the
  pipeline instead of buffering it.
* **Deadlines**: ``X-Repro-Deadline-Ms`` bounds a request wall-clock.
  Exceeded before the response starts → a clean ``504``; exceeded
  mid-stream → an ``{"error": ...}`` line (no ``"done"`` trailer) and
  the connection closes, so a client can always distinguish a complete
  stream from a truncated one.
* **CPU stays off the loop**: compiles, matching and document parsing
  all run on the service's worker pool
  (:meth:`~repro.service.core.ValidationService.submit_async`); the loop
  only frames bytes.
* **Auth hook**: pass ``auth_token`` (``Authorization: Bearer ...``) or
  override :meth:`AsyncServiceServer.authorize` for anything richer;
  ``/healthz`` stays open for probes.
* ``GET /snapshot`` streams via zero-copy ``loop.sendfile`` where the
  platform has it, with strong ``ETag``/``Range``/``If-Range`` handling
  shared with the threaded front (:mod:`repro.service.wire`).

Buffered JSON requests (``Content-Type: application/json``) are answered
with exactly the threaded front's response shapes — the two fronts are
verdict-identical by construction, which the property tests pin down.

Runs standalone (``python -m repro.service --front aio``) or as the
worker body of the prefork model (``--processes N --front aio``): each
forked worker runs one event loop accepting on the inherited socket.
"""

from __future__ import annotations

import asyncio
import hmac
import json
import os
import socket

from .. import api
from ..errors import NotDeterministicError, ReproError
from ..xml.parser import parse_document
from . import wire
from .aio_frames import (
    COPY_BLOCK as _COPY_BLOCK,
    DEADLINE_HEADER as DEADLINE_HEADER,  # noqa: PLC0414 - re-exported wire constant
    body_lines as _body_lines,
    deadline_seconds as _deadline_seconds,
    head_bytes as _head_bytes,
    parse_document_item as _parse_document_text,
    parse_word_item as _parse_word,
)
from .core import ValidationService
from .http import MAX_BODY_BYTES
from .prefork import StatsBoard, cluster_payload
from .wire import WireError

#: Items per micro-batch dispatched to the worker pool.  Small enough
#: that verdicts start flowing almost immediately, large enough that the
#: per-batch pool handoff amortizes (the batch kernel's sweet spot).
STREAM_BATCH = 256

#: Pool batches in flight per connection before the reader stops
#: consuming the socket — the backpressure bound.  Peak buffered items
#: per connection is ``STREAM_BATCH * (MAX_PENDING_BATCHES + 2)``
#: regardless of corpus size.
MAX_PENDING_BATCHES = 8

#: Seconds a keep-alive connection may sit idle between requests.
IDLE_TIMEOUT = 75.0


class _ResponseStarted(Exception):
    """Internal: an error surfaced after response bytes were written."""


class AsyncServiceServer:
    """One event loop serving the validation service's endpoints.

    Wraps a shared :class:`ValidationService`; CPU-bound work is
    dispatched to its pool, the loop itself only parses frames and moves
    bytes.  ``board``/``slot``/``processes`` attach the prefork fleet
    view to ``GET /stats`` exactly like the threaded worker front.
    """

    def __init__(
        self,
        service: ValidationService,
        snapshot_source: str | None = None,
        auth_token: str | None = None,
        board: StatsBoard | None = None,
        slot: int = 0,
        processes: int = 1,
        stream_batch: int = STREAM_BATCH,
        max_pending: int = MAX_PENDING_BATCHES,
        idle_timeout: float = IDLE_TIMEOUT,
    ):
        self.service = service
        self.snapshot_source = snapshot_source
        self.auth_token = auth_token
        self.board = board
        self.slot = slot
        self.processes = processes
        self.stream_batch = max(1, stream_batch)
        self.max_pending = max(1, max_pending)
        self.idle_timeout = idle_timeout
        #: front telemetry, merged into ``GET /stats`` under ``"aio"``
        self.connections = 0
        self.streams = 0
        self.deadline_hits = 0
        self.disconnects = 0
        self.sendfile_sends = 0
        self._server: asyncio.Server | None = None

    # -- lifecycle ----------------------------------------------------------------------
    async def start(
        self,
        host: str | None = None,
        port: int | None = None,
        sock: socket.socket | None = None,
    ) -> asyncio.Server:
        """Bind (or adopt *sock*) and start accepting; returns the server."""
        if sock is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, sock=sock, limit=wire.MAX_HEAD_BYTES
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host, port, limit=wire.MAX_HEAD_BYTES
            )
        return self._server

    def address(self) -> tuple[str, int]:
        assert self._server is not None
        return self._server.sockets[0].getsockname()[:2]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- auth hook ----------------------------------------------------------------------
    def authorize(self, head: wire.RequestHead) -> bool:
        """The per-request auth hook; override for anything beyond Bearer.

        The default accepts everything when no token is configured, and
        requires ``Authorization: Bearer <token>`` (constant-time
        comparison) otherwise.  ``/`` and ``/healthz`` bypass this so
        liveness probes never need credentials.
        """
        if self.auth_token is None:
            return True
        scheme, _, token = head.headers.get("authorization", "").partition(" ")
        return scheme.lower() == "bearer" and hmac.compare_digest(
            token.strip(), self.auth_token
        )

    # -- connection loop ----------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        try:
            while True:
                try:
                    async with asyncio.timeout(self.idle_timeout):
                        head_bytes = await reader.readuntil(b"\r\n\r\n")
                except (asyncio.IncompleteReadError, TimeoutError):
                    break  # clean EOF between requests, or idle too long
                except asyncio.LimitOverrunError:
                    await self._send_json(
                        writer, 431, {"error": "request head too large"}, close=True
                    )
                    break
                try:
                    head = wire.parse_request_head(head_bytes[:-4])
                    if not await self._dispatch(head, reader, writer):
                        break
                except WireError as error:
                    # Protocol-level failure: the body position is
                    # unknown, so answer and drop the connection.
                    await self._send_json(
                        writer, error.status, {"error": str(error)}, close=True
                    )
                    break
        except (ConnectionError, asyncio.IncompleteReadError, BrokenPipeError):
            self.disconnects += 1
        except _ResponseStarted:
            self.disconnects += 1
        except asyncio.CancelledError:
            pass  # server shutdown mid-request: drop the connection quietly
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _dispatch(
        self, head: wire.RequestHead, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Route one request; returns whether the connection survives."""
        open_paths = ("/", "/healthz")
        if head.path not in open_paths and not self.authorize(head):
            await self._send_json(
                writer,
                401,
                {"error": "missing or invalid bearer token"},
                close=True,
                extra=[("WWW-Authenticate", "Bearer")],
            )
            return False
        if head.method == "GET":
            if not await self._drain_request_body(head, reader, writer):
                return False
            if head.path == "/stats":
                await self._send_json(writer, 200, self.stats_payload())
            elif head.path == "/snapshot":
                return await self._send_snapshot(head, writer)
            elif head.path in open_paths:
                await self._send_json(writer, 200, {"status": "ok", "service": "repro"})
            else:
                await self._send_json(
                    writer, 404, {"error": f"no such endpoint: {head.path}"}
                )
            return head.keep_alive()
        if head.method == "POST":
            return await self._handle_post(head, reader, writer)
        await self._send_json(
            writer, 405, {"error": f"method {head.method} not allowed"}, close=True
        )
        return False

    def stats_payload(self) -> dict:
        stats = self.service.stats()
        stats["aio"] = {
            "connections": self.connections,
            "streams": self.streams,
            "deadline_hits": self.deadline_hits,
            "disconnects": self.disconnects,
            "sendfile_sends": self.sendfile_sends,
            "stream_batch": self.stream_batch,
            "max_pending_batches": self.max_pending,
        }
        if self.board is not None:
            stats["cluster"] = cluster_payload(self.board, self.processes)
        return stats

    async def _drain_request_body(
        self,
        head: wire.RequestHead,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        """Consume a (rare) body on a GET so keep-alive framing survives.

        Without this, the next ``readuntil`` on a reused connection would
        parse body bytes as a request head and die with a spurious 400.
        Bodies beyond :data:`MAX_BODY_BYTES` are refused with the
        connection closed — same bound as every other body path.
        """
        drained = 0
        if head.is_chunked():
            async for piece in _chunked_frames(reader):
                drained += len(piece)
                if drained > MAX_BODY_BYTES:
                    await self._send_json(
                        writer,
                        413,
                        {"error": f"body exceeds {MAX_BODY_BYTES} bytes"},
                        close=True,
                    )
                    return False
            return True
        remaining = head.content_length() or 0
        if remaining > MAX_BODY_BYTES:
            await self._send_json(
                writer,
                413,
                {"error": f"body exceeds {MAX_BODY_BYTES} bytes"},
                close=True,
            )
            return False
        while remaining > 0:
            data = await reader.read(min(_COPY_BLOCK, remaining))
            if not data:
                return False  # body ended early: the connection is dying anyway
            remaining -= len(data)
        return True

    # -- response plumbing --------------------------------------------------------------
    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        close: bool = False,
        extra: list[tuple[str, str]] | None = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        headers = [
            ("Content-Type", "application/json; charset=utf-8"),
            ("Content-Length", str(len(body))),
        ]
        if extra:
            headers.extend(extra)
        if close:
            headers.append(("Connection", "close"))
        writer.write(_head_bytes(status, headers) + body)
        await writer.drain()

    # -- POST /match, POST /validate ----------------------------------------------------
    async def _handle_post(
        self, head: wire.RequestHead, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        if head.path not in ("/match", "/validate"):
            await self._send_json(
                writer, 404, {"error": f"no such endpoint: {head.path}"}, close=True
            )
            return False
        # Match endpoints default to the historical bare booleans; validate
        # keeps full violation detail — same defaults as the threaded front.
        default = "verdict" if head.path == "/match" else "full"
        detail = wire.negotiate_detail(head.headers, head.query, default=default)
        deadline = _deadline_seconds(head)
        if head.wants_ndjson():
            return await self._handle_stream(head, reader, writer, detail, deadline)
        return await self._handle_buffered(head, reader, writer, detail, deadline)

    async def _read_buffered_body(
        self, head: wire.RequestHead, reader: asyncio.StreamReader
    ) -> dict:
        length = head.content_length()
        if head.is_chunked():
            # Buffered JSON over chunked TE: drain the frames, keep the
            # same total-size bound as the threaded front.
            body = bytearray()
            async for piece in _chunked_frames(reader):
                body.extend(piece)
                if len(body) > MAX_BODY_BYTES:
                    raise WireError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
            data = bytes(body)
        else:
            if length is None or length <= 0:
                raise WireError(400, "a JSON body with Content-Length is required")
            if length > MAX_BODY_BYTES:
                raise WireError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
            data = await reader.readexactly(length)
        try:
            payload = json.loads(data)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise WireError(400, f"invalid JSON body: {error}") from None
        if not isinstance(payload, dict):
            raise WireError(400, "the JSON body must be an object")
        return payload

    async def _handle_buffered(
        self,
        head: wire.RequestHead,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        detail: str,
        deadline: float | None,
    ) -> bool:
        """The threaded front's JSON request/response shapes, loop-hosted."""
        try:
            payload = await self._read_buffered_body(head, reader)
        except WireError as error:
            await self._send_json(writer, error.status, {"error": str(error)}, close=True)
            return False
        try:
            async with asyncio.timeout(deadline):
                if head.path == "/match":
                    status, body = await self._match_buffered(payload, detail)
                else:
                    status, body = await self._validate_buffered(payload, detail)
        except TimeoutError:
            self.deadline_hits += 1
            await self._send_json(writer, 504, {"error": "deadline exceeded"})
            return head.keep_alive()
        except NotDeterministicError as error:
            status, body = 422, {"error": str(error)}
        except ReproError as error:
            status, body = 400, {"error": str(error)}
        except (TypeError, ValueError, KeyError) as error:
            status, body = 400, {"error": f"malformed request: {error!r}"}
        await self._send_json(writer, status, body)
        return head.keep_alive()

    async def _match_buffered(self, payload: dict, detail: str) -> tuple[int, dict]:
        expr = payload.get("pattern")
        if not isinstance(expr, str):
            return 400, {"error": 'a string "pattern" field is required'}
        words = payload.get("words")
        if not isinstance(words, list):
            return 400, {"error": 'a list "words" field is required'}
        for word in words:
            if isinstance(word, str):
                continue
            if isinstance(word, list) and all(isinstance(symbol, str) for symbol in word):
                continue
            return 400, {
                "error": '"words" entries must be strings or lists of symbol strings'
            }
        dialect = payload.get("dialect", "paper")
        pattern = await self.service.submit_async(api.compile, expr, dialect=dialect)
        if not pattern.is_deterministic:
            return 422, {"error": f"pattern is not deterministic: {pattern.explain()}"}
        verdicts = await self.service.match_batch_async(
            expr, words, dialect=dialect, detail=detail
        )
        description = pattern.describe()
        return 200, {
            "pattern": expr,
            "count": len(verdicts),
            "detail": detail,
            "verdicts": verdicts,
            "strategy": description.get("strategy"),
            "batch_path": description.get("batch_path"),
        }

    async def _validate_buffered(self, payload: dict, detail: str) -> tuple[int, dict]:
        documents = payload.get("documents")
        if not isinstance(documents, list):
            return 400, {"error": 'a list "documents" field (XML text) is required'}
        if not all(isinstance(text, str) for text in documents):
            return 400, {"error": '"documents" must be a list of XML strings'}
        try:
            kind, validator = await self._build_validator(payload)
        except WireError as error:
            return error.status, {"error": str(error)}
        verdicts = await self.service.validate_document_texts_async(validator, documents)
        return 200, {
            "schema": kind,
            "count": len(verdicts),
            "detail": detail,
            "verdicts": [
                wire.shape_verdict(v.valid, v.details or v.violations, detail)
                for v in verdicts
            ],
        }

    async def _build_validator(self, header: dict):
        """The schema named by a request header/payload, built off-loop."""
        dtd_text = header.get("dtd")
        xsd_data = header.get("xsd")
        if (dtd_text is None) == (xsd_data is None):
            raise WireError(
                400, 'exactly one of "dtd" (text) or "xsd" (object) is required'
            )
        if dtd_text is not None:
            if not isinstance(dtd_text, str):
                raise WireError(400, '"dtd" must be the DTD as a string')
            validator = await self.service.submit_async(
                self.service.validator_for_dtd, dtd_text
            )
            return "dtd", validator
        if not isinstance(xsd_data, dict):
            raise WireError(400, '"xsd" must be a schema object')
        validator = await self.service.submit_async(
            self.service.schema_for_payload,
            json.dumps(xsd_data, sort_keys=True),
            xsd_data,
        )
        if not validator.is_valid_schema():
            raise WireError(
                422, "schema violates Unique Particle Attribution (non-deterministic)"
            )
        return "xsd", validator

    # -- the streaming pipeline ---------------------------------------------------------
    async def _handle_stream(
        self,
        head: wire.RequestHead,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        detail: str,
        deadline: float | None,
    ) -> bool:
        """One NDJSON stream: header line, items, verdicts, trailer.

        Memory bound: items are parsed line by line, batched into
        :attr:`stream_batch`-sized pool submissions through a queue of
        :attr:`max_pending` — when the pool lags, ``queue.put`` blocks
        the reader and TCP backpressure reaches the client.  Verdicts
        are written in order through ``drain()``.  The ``requests``
        counters see the whole stream as *one* request.
        """
        self.streams += 1
        started = [False]  # set by _run_stream the moment the 200 head goes out
        with self.service.track_request():
            try:
                async with asyncio.timeout(deadline):
                    await self._run_stream(head, reader, writer, detail, started)
            except TimeoutError:
                self.deadline_hits += 1
                if not started[0]:
                    await self._send_json(
                        writer, 504, {"error": "deadline exceeded"}, close=True
                    )
                else:
                    await self._finish_stream_error(writer, "deadline exceeded")
                return False
            except WireError as error:
                if not started[0]:
                    await self._send_json(
                        writer, error.status, {"error": str(error)}, close=True
                    )
                else:
                    await self._finish_stream_error(writer, str(error))
                return False
            except NotDeterministicError as error:
                if not started[0]:
                    await self._send_json(
                        writer, 422, {"error": str(error)}, close=True
                    )
                else:
                    await self._finish_stream_error(writer, str(error))
                return False
            except ReproError as error:
                # e.g. an XMLSyntaxError from a malformed document parsed
                # by the pool after verdicts already went out: the error
                # must surface in-stream, never as a second status line.
                if not started[0]:
                    await self._send_json(
                        writer, 400, {"error": str(error)}, close=True
                    )
                else:
                    await self._finish_stream_error(writer, str(error))
                return False
        return head.keep_alive()

    async def _run_stream(
        self,
        head: wire.RequestHead,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        detail: str,
        started: list,
    ) -> None:
        lines = _body_lines(reader, head)
        header_line = await anext(lines, None)
        if header_line is None:
            raise WireError(400, "an NDJSON stream starts with a header object line")
        try:
            header = json.loads(header_line)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise WireError(400, f"invalid stream header: {error}") from None
        if not isinstance(header, dict):
            raise WireError(400, "the stream header must be a JSON object")

        if head.path == "/match":
            work, shape, response_header = await self._prepare_match(header, detail)
            parse_item = _parse_word
        else:
            work, shape, response_header = await self._prepare_validate(header, detail)
            parse_item = _parse_document_text

        # Response head + header line go out before the first verdict:
        # from here on, errors surface *in-stream* (a missing "done"
        # trailer), never as a status code.
        started[0] = True
        writer.write(
            _head_bytes(
                200,
                [
                    ("Content-Type", "application/x-ndjson; charset=utf-8"),
                    ("Transfer-Encoding", "chunked"),
                ],
            )
        )
        writer.write(wire.chunk(wire.ndjson_line(response_header)))
        await writer.drain()

        queue: asyncio.Queue = asyncio.Queue(maxsize=self.max_pending)

        async def produce() -> None:
            # The future in hand between submit() and a successful
            # queue.put(): if the put is cancelled (disconnect, deadline),
            # the batch would otherwise run to completion unobserved.
            in_hand: asyncio.Future | None = None
            try:
                batch: list = []
                async for line in lines:
                    if not line.strip():
                        continue
                    batch.append(parse_item(line))
                    if len(batch) >= self.stream_batch:
                        in_hand = asyncio.wrap_future(self.service.submit(work, batch))
                        await queue.put(in_hand)
                        in_hand = None
                        batch = []
                if batch:
                    in_hand = asyncio.wrap_future(self.service.submit(work, batch))
                    await queue.put(in_hand)
                    in_hand = None
                await queue.put(None)
            except asyncio.CancelledError:
                if in_hand is not None:
                    in_hand.cancel()
                raise
            except BaseException as error:  # noqa: BLE001 - relayed to the writer loop
                await queue.put(error)

        producer = asyncio.create_task(produce())
        total = 0
        try:
            while True:
                entry = await queue.get()
                if entry is None:
                    break
                if isinstance(entry, BaseException):
                    raise entry
                for verdict in await entry:
                    writer.write(wire.chunk(wire.ndjson_line(shape(verdict))))
                    total += 1
                await writer.drain()
            writer.write(wire.chunk(wire.ndjson_line({"count": total, "done": True})))
            writer.write(wire.CHUNK_END)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            # Mid-stream client disconnect: stop producing, drop queued
            # pool work, keep the server healthy for other connections.
            raise _ResponseStarted() from None
        finally:
            producer.cancel()
            while not queue.empty():
                leftover = queue.get_nowait()
                if isinstance(leftover, asyncio.Future):
                    leftover.cancel()

    async def _prepare_match(self, header: dict, detail: str):
        expr = header.get("pattern")
        if not isinstance(expr, str):
            raise WireError(400, 'the stream header needs a string "pattern" field')
        dialect = header.get("dialect", "paper")
        pattern = await self.service.submit_async(api.compile, expr, dialect=dialect)
        if not pattern.is_deterministic:
            raise WireError(422, f"pattern is not deterministic: {pattern.explain()}")
        description = pattern.describe()
        response_header = {
            "pattern": expr,
            "strategy": description.get("strategy"),
            "batch_path": description.get("batch_path"),
            "detail": detail,
        }
        if detail == "verdict":
            # The untraced hot path: bare booleans straight off match_all.
            return pattern.match_all, (lambda verdict: verdict), response_header

        def work(chunk: list):
            # Witness-recording mode; shaping runs on the pool thread so
            # diagnosis replays never execute on the event loop.
            results = pattern.match_all(chunk, detail="full")
            return [wire.shape_match(result, detail) for result in results]

        return work, (lambda verdict: verdict), response_header

    async def _prepare_validate(self, header: dict, detail: str):
        kind, validator = await self._build_validator(header)
        verdict_of = self.service._verdict

        def work(chunk: list):
            return [verdict_of(validator, parse_document(text)) for text in chunk]

        def shape(verdict):
            return wire.shape_verdict(verdict.valid, verdict.details or verdict.violations, detail)

        return work, shape, {"schema": kind, "detail": detail}

    async def _finish_stream_error(self, writer: asyncio.StreamWriter, message: str) -> None:
        """Terminate a started stream: error line, end chunk, no trailer."""
        try:
            writer.write(wire.chunk(wire.ndjson_line({"error": message})))
            writer.write(wire.CHUNK_END)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass

    # -- GET /snapshot ------------------------------------------------------------------
    async def _send_snapshot(
        self, head: wire.RequestHead, writer: asyncio.StreamWriter
    ) -> bool:
        source = self.snapshot_source
        if not source:
            await self._send_json(
                writer, 404, {"error": "this server does not serve a snapshot"}
            )
            return head.keep_alive()
        # open()/fstat() touch the filesystem — off the loop, like every
        # other blocking call on this path.
        def _open_snapshot():
            handle = open(source, "rb")
            return handle, os.fstat(handle.fileno())

        loop = asyncio.get_running_loop()
        try:
            handle, stat = await loop.run_in_executor(None, _open_snapshot)
        except OSError:
            await self._send_json(
                writer, 404, {"error": "no snapshot has been persisted yet"}
            )
            return head.keep_alive()
        with handle:
            etag = wire.snapshot_etag(stat)
            size = stat.st_size
            status, offset, length = 200, 0, size
            if_range = head.headers.get("if-range")
            if if_range is None or if_range == etag:
                try:
                    span = wire.parse_range(head.headers.get("range"), size)
                except WireError as error:
                    await self._send_json(
                        writer,
                        error.status,
                        {"error": str(error)},
                        extra=[("Content-Range", f"bytes */{size}")],
                    )
                    return head.keep_alive()
                if span is not None:
                    offset, length = span
                    status = 206
            headers = [
                ("Content-Type", "application/octet-stream"),
                ("Content-Length", str(length)),
                ("ETag", etag),
                ("Accept-Ranges", "bytes"),
            ]
            if status == 206:
                headers.append(
                    ("Content-Range", f"bytes {offset}-{offset + length - 1}/{size}")
                )
            writer.write(_head_bytes(status, headers))
            await writer.drain()
            await self._send_file(writer, handle, offset, length)
        return head.keep_alive()

    async def _send_file(
        self, writer: asyncio.StreamWriter, handle, offset: int, length: int
    ) -> None:
        """Zero-copy sendfile when the platform has it; else a read loop.

        The open descriptor pins one complete snapshot generation (the
        refresher replaces the *directory entry*, never bytes under an
        open fd), so a concurrent refresh can never tear this download.
        """
        if length == 0:
            return
        loop = asyncio.get_running_loop()
        transport = writer.transport
        try:
            await loop.sendfile(transport, handle, offset, length, fallback=False)
            self.sendfile_sends += 1
            return
        except (NotImplementedError, RuntimeError, AttributeError):
            pass  # SSL transport, exotic platform, or sendfile-less loop
        # Fallback copy loop: the reads are disk I/O that would stall
        # every other connection if run on the loop (a large snapshot
        # over TLS would freeze the server), so they go to the executor.
        handle.seek(offset)
        remaining = length
        while remaining > 0:
            block = await loop.run_in_executor(
                None, handle.read, min(_COPY_BLOCK, remaining)
            )
            if not block:
                break
            writer.write(block)
            remaining -= len(block)
            await writer.drain()


# ---------------------------------------------------------------------------
# Moved-name shims
# ---------------------------------------------------------------------------

#: entry points moved to :mod:`repro.service.aio_run` when this module
#: was split; the old import paths keep working one release with a
#: :class:`DeprecationWarning`.
_MOVED_TO_RUN = ("serve", "run_prefork_worker", "_serve_async")


def __getattr__(name: str):
    if name in _MOVED_TO_RUN:
        import warnings

        warnings.warn(
            f"repro.service.aio.{name} moved to repro.service.aio_run.{name}; "
            "import it from repro.service.aio_run",
            DeprecationWarning,
            stacklevel=2,
        )
        from . import aio_run

        return getattr(aio_run, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
