"""Telemetry-driven cache sizing: /stats history feeds the cache bounds.

The compile cache (:data:`repro.COMPILE_CACHE_SIZE`) and the per-pattern
:class:`~repro.xml.memo.AcceptanceMemo` bound were fixed constants picked
for the acceptance workloads.  A serving fleet sees none of that
uniformity: one deployment churns through thousands of distinct patterns
(the 512-entry cache thrashes), another validates three schemas forever
(4096-entry memos per pattern are mostly air).  This module closes the
loop — the same counters ``GET /stats`` reports drive the bounds:

* **compile cache** — evictions climbing between ticks mean the live
  working set no longer fits: double the bound (up to
  :data:`CACHE_CEILING`).  A cache sitting far below its bound with no
  evictions for :data:`IDLE_TICKS` consecutive ticks halves back toward
  :data:`CACHE_FLOOR` — a long-lived process stops reserving room for a
  traffic spike that ended hours ago.
* **acceptance memos** — per pattern, via
  :func:`repro.iter_cached_patterns`: a memo that is full *and* still
  missing is rejecting entries its traffic would reuse (double, up to
  :data:`MEMO_CEILING`); a mostly-empty memo with no traffic at all for
  :data:`IDLE_TICKS` ticks halves toward :data:`MEMO_FLOOR`.

Every decision is recorded and reported under the ``"autosize"`` block of
``GET /stats`` (:meth:`Autosizer.stats`), so operators can see *why* a
bound moved, not just that it did.  :meth:`Autosizer.sample` is one
synchronous tick — the unit the tests drive directly; :meth:`start` runs
it on a background thread, like the snapshot refresher.

Resizes are safe by construction: :func:`repro.resize_compile_cache`
evicts under the cache's writer lock, and
:meth:`~repro.xml.memo.AcceptanceMemo.resize` swaps a trimmed dict in
atomically — verdicts never change, only the cost of recomputing them.
"""

from __future__ import annotations

import threading
from collections import deque

from .. import api, cache

#: Seconds between autosizing ticks (the background-thread default).
AUTOSIZE_INTERVAL = 10.0

#: Compile-cache bounds the policy moves between.  The floor is the boot
#: default — autosizing never makes the cache smaller than an untuned
#: process would have had.
CACHE_FLOOR = api.COMPILE_CACHE_SIZE
CACHE_CEILING = 8192

#: Acceptance-memo bounds (per pattern).
MEMO_FLOOR = 256
MEMO_CEILING = 65536

#: Consecutive idle ticks before a bound shrinks.  Growth reacts in one
#: tick (thrash is expensive *now*); shrinking waits — a quiet minute
#: must not throw away a working set the next burst will need.
IDLE_TICKS = 3

#: Decisions kept for the ``/stats`` history.
DECISION_LOG = 32


class Autosizer:
    """Feedback loop from service telemetry to cache bounds.

    Attach to a :class:`~repro.service.core.ValidationService` (the
    constructor registers itself, so the service's :meth:`stats` gains
    the ``"autosize"`` block), then either :meth:`start` the background
    thread or drive :meth:`sample` ticks directly (tests, cron).
    """

    def __init__(
        self,
        service=None,
        interval: float = AUTOSIZE_INTERVAL,
        cache_floor: int = CACHE_FLOOR,
        cache_ceiling: int = CACHE_CEILING,
        memo_floor: int = MEMO_FLOOR,
        memo_ceiling: int = MEMO_CEILING,
        idle_ticks: int = IDLE_TICKS,
    ):
        if cache_floor < 1 or memo_floor < 1:
            raise ValueError("autosize floors must be >= 1")
        if cache_ceiling < cache_floor or memo_ceiling < memo_floor:
            raise ValueError("autosize ceilings must be >= their floors")
        self.interval = interval
        self.cache_floor = cache_floor
        self.cache_ceiling = cache_ceiling
        self.memo_floor = memo_floor
        self.memo_ceiling = memo_ceiling
        self.idle_ticks = max(1, idle_ticks)
        self.ticks = 0
        self.cache_resizes = 0
        self.memo_resizes = 0
        self.decisions: deque[dict] = deque(maxlen=DECISION_LOG)
        self._cache_last = cache.compile_cache_stats()
        self._cache_idle = 0
        #: per-memo ``(hits+misses, idle ticks)`` keyed by the compile
        #: cache's own key — stable across the memo's lifetime, unlike
        #: ``id()``, which a new memo can reuse after a gc and inherit a
        #: stale baseline from.  Entries whose pattern left the compile
        #: cache are pruned each tick.
        self._memo_seen: dict[tuple, tuple[int, int]] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        if service is not None:
            service.autosizer = self

    # -- one tick (the testable unit) ---------------------------------------------------
    def sample(self) -> list[dict]:
        """One autosizing tick; returns the decisions it made (possibly [])."""
        decisions = []
        decisions.extend(self._sample_compile_cache())
        decisions.extend(self._sample_memos())
        self.ticks += 1
        self.decisions.extend(decisions)
        return decisions

    def _sample_compile_cache(self) -> list[dict]:
        stats = cache.compile_cache_stats()
        last, self._cache_last = self._cache_last, stats
        evicted = stats["evictions"] - last["evictions"]
        if evicted > 0:
            self._cache_idle = 0
            if stats["max_size"] < self.cache_ceiling:
                target = min(self.cache_ceiling, stats["max_size"] * 2)
                api.resize_compile_cache(target)
                self.cache_resizes += 1
                return [self._decision(
                    "compile_cache", "grow", stats["max_size"], target,
                    f"{evicted} evictions since last tick",
                )]
            return []
        # No evictions: the cache fits.  Shrink only a cache that has
        # been *comfortably* oversized for a while — size under a
        # quarter of the bound, idle_ticks ticks in a row.
        if stats["size"] * 4 <= stats["max_size"] and stats["max_size"] > self.cache_floor:
            self._cache_idle += 1
            if self._cache_idle >= self.idle_ticks:
                self._cache_idle = 0
                target = max(self.cache_floor, stats["max_size"] // 2)
                api.resize_compile_cache(target)
                self.cache_resizes += 1
                return [self._decision(
                    "compile_cache", "shrink", stats["max_size"], target,
                    f"{stats['size']} entries under a {stats['max_size']} bound "
                    f"for {self.idle_ticks} ticks",
                )]
        else:
            self._cache_idle = 0
        return []

    def _sample_memos(self) -> list[dict]:
        decisions = []
        seen: dict[tuple, tuple[int, int]] = {}
        for key, pattern in api.iter_cached_patterns():
            # Peek, never build: a pattern that has done no validation
            # has no memo, and autosizing must not allocate one.
            memo = getattr(pattern, "_acceptance_memo", None)
            if memo is None:
                continue
            traffic = memo.hits + memo.misses
            last_traffic, idle = self._memo_seen.get(key, (traffic, 0))
            if traffic < last_traffic:
                # The pattern was evicted and recompiled under the same
                # key: a fresh memo, so restart the baseline.
                last_traffic, idle = traffic, 0
            delta = traffic - last_traffic
            label = key[0] if isinstance(key, tuple) else str(key)
            if len(memo) >= memo.limit and memo.limit < self.memo_ceiling and delta > 0:
                # Full and still fielding traffic: entries the bound is
                # refusing would have been reused.
                target = min(self.memo_ceiling, memo.limit * 2)
                previous = memo.resize(target)
                self.memo_resizes += 1
                idle = 0
                decisions.append(self._decision(
                    "memo", "grow", previous, target,
                    f"full at {previous} with {delta} probes since last tick",
                    pattern=label,
                ))
            elif delta == 0 and len(memo) * 4 <= memo.limit and memo.limit > self.memo_floor:
                idle += 1
                if idle >= self.idle_ticks:
                    idle = 0
                    target = max(self.memo_floor, memo.limit // 2)
                    previous = memo.resize(target)
                    self.memo_resizes += 1
                    decisions.append(self._decision(
                        "memo", "shrink", previous, target,
                        f"{len(memo)} entries, no probes for {self.idle_ticks} ticks",
                        pattern=label,
                    ))
            else:
                idle = 0
            seen[key] = (traffic, idle)
        self._memo_seen = seen  # prune memos evicted from the compile cache
        return decisions

    def _decision(
        self, target: str, action: str, previous: int, new: int, reason: str, **extra
    ) -> dict:
        return {
            "tick": self.ticks,
            "target": target,
            "action": action,
            "from": previous,
            "to": new,
            "reason": reason,
            **extra,
        }

    # -- background thread --------------------------------------------------------------
    def start(self) -> None:
        """Run :meth:`sample` every :attr:`interval` seconds (idempotent)."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop, daemon=True, name="autosizer")
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample()

    # -- telemetry ----------------------------------------------------------------------
    def stats(self) -> dict:
        """The ``"autosize"`` block of ``GET /stats``."""
        return {
            "interval": self.interval,
            "ticks": self.ticks,
            "running": self._thread is not None,
            "compile_cache": {
                "bound": cache.compile_cache_stats()["max_size"],
                "floor": self.cache_floor,
                "ceiling": self.cache_ceiling,
                "resizes": self.cache_resizes,
            },
            "memos": {
                "floor": self.memo_floor,
                "ceiling": self.memo_ceiling,
                "resizes": self.memo_resizes,
                "tracked": len(self._memo_seen),
            },
            "decisions": list(self.decisions),
        }
