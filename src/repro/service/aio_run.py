"""Entry points for the asyncio front: standalone and prefork-worker.

The server class itself lives in :mod:`repro.service.aio`; this module
owns the process-level wiring around it — building the shared
:class:`~repro.service.core.ValidationService`, starting/stopping the
snapshot refresher and cache autosizer, and (for the prefork model)
running one event loop per forked worker on the inherited socket.
"""

from __future__ import annotations

import asyncio
import signal
import socket

from .core import DEFAULT_WORKERS, ValidationService
from .http import DEFAULT_HOST, DEFAULT_PORT
from .prefork import (
    PUBLISH_INTERVAL,
    REFRESH_INTERVAL,
    REFRESH_MIN_GROWTH,
    SnapshotRefresher,
    StatsBoard,
    _worker_summary,
)


async def _serve_async(
    host: str,
    port: int,
    workers: int,
    snapshot_source: str | None,
    refresher,
    auth_token: str | None,
    autosizer,
) -> None:
    from .aio import AsyncServiceServer

    service = ValidationService(workers=workers)
    if autosizer is not None:
        service.autosizer = autosizer
        autosizer.start()
    front = AsyncServiceServer(service, snapshot_source=snapshot_source, auth_token=auth_token)
    server = await front.start(host, port)
    bound_host, bound_port = front.address()
    if refresher is not None:
        refresher.start()
    print(
        f"repro.service (aio) listening on http://{bound_host}:{bound_port} "
        f"({workers} pool workers) — POST /match, POST /validate (NDJSON streaming), "
        "GET /stats, GET /snapshot",
        flush=True,
    )
    try:
        async with server:
            await server.serve_forever()
    finally:
        if refresher is not None:
            refresher.stop()
        if autosizer is not None:
            autosizer.stop()
        service.close()


def serve(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    workers: int = DEFAULT_WORKERS,
    snapshot_source: str | None = None,
    refresher=None,
    auth_token: str | None = None,
    autosizer=None,
) -> None:
    """Run the asyncio front until interrupted (``--front aio`` body).

    Mirrors :func:`repro.service.http.serve`; *auth_token* turns on the
    Bearer check, *autosizer* (an
    :class:`~repro.service.autosize.Autosizer`) runs the cache-sizing
    loop alongside the server.
    """
    try:
        asyncio.run(
            _serve_async(host, port, workers, snapshot_source, refresher, auth_token, autosizer)
        )
    except KeyboardInterrupt:
        pass


def run_prefork_worker(
    listen_socket: socket.socket,
    board: StatsBoard,
    slot: int,
    processes: int,
    workers: int,
    snapshot_source: str | None = None,
    snapshot_save: str | None = None,
    refresh_interval: float = REFRESH_INTERVAL,
    refresh_min_growth: int = REFRESH_MIN_GROWTH,
    auth_token: str | None = None,
    autosizer=None,
) -> None:
    """Body of one forked aio worker: an event loop on the inherited socket.

    The prefork parent binds and forks exactly as for the threaded
    front (:func:`repro.service.prefork.serve_prefork`); each worker
    runs one event loop whose ``accept()`` the kernel load-balances
    across the fleet.  Stats publishing and the snapshot refresher work
    as in the threaded worker — the refresher stays a daemon thread
    (``save_snapshot`` is blocking CPU+fsync work that must not run on
    the loop), while the publisher is a loop task.
    """
    from .aio import AsyncServiceServer

    signal.signal(signal.SIGINT, signal.SIG_IGN)  # the parent coordinates shutdown
    service = ValidationService(workers=workers)
    if autosizer is not None:
        service.autosizer = autosizer
        autosizer.start()
    refresher: SnapshotRefresher | None = None
    if snapshot_save:
        refresher = SnapshotRefresher(
            snapshot_save,
            interval=refresh_interval * (1.0 + 0.1 * slot),
            min_growth=refresh_min_growth,
        )
        refresher.start()

    async def worker() -> None:
        front = AsyncServiceServer(
            service,
            snapshot_source=snapshot_source,
            auth_token=auth_token,
            board=board,
            slot=slot,
            processes=processes,
        )
        server = await front.start(sock=listen_socket)
        loop = asyncio.get_running_loop()
        stopping = asyncio.Event()
        loop.add_signal_handler(signal.SIGTERM, stopping.set)

        async def publish() -> None:
            while True:
                board.publish(slot, _worker_summary(service))
                await asyncio.sleep(PUBLISH_INTERVAL)

        publisher = asyncio.create_task(publish())
        try:
            await stopping.wait()
        finally:
            publisher.cancel()
            server.close()
            await server.wait_closed()

    try:
        asyncio.run(worker())
    finally:
        if refresher is not None:
            refresher.stop()
        if autosizer is not None:
            autosizer.stop()
        service.close()


__all__ = ["run_prefork_worker", "serve"]
