"""Multi-process serving front: fork shared-nothing workers from a warm parent.

One Python process is GIL-bound: the thread-pool service saturates a
single core.  This module scales it across cores the classic prefork
way, arranged so the PR-4 snapshot work pays off fleet-wide:

1. the **parent** binds the listening socket (port 0 picks an ephemeral
   port, printed before any worker starts), optionally **preloads a
   dense-row snapshot** (:func:`repro.load_snapshot` — the rows are
   mmap-backed, read-only, file-cached), and creates a shared-memory
   :class:`StatsBoard`;
2. it then **forks N workers**.  Each worker is shared-nothing Python —
   its own :class:`~repro.service.core.ValidationService`, thread pool
   and caches — but the adopted row pages, the warm compile cache and
   the interpreter image itself are shared copy-on-write, so every
   worker boots with the fleet's warm rows for free;
3. workers ``accept()`` directly on the inherited socket (the kernel
   load-balances connections); the parent never serves traffic — it
   supervises, restarting any worker that dies;
4. each worker periodically publishes a request summary into its
   :class:`StatsBoard` slot; whichever worker answers ``GET /stats``
   merges the whole fleet into a ``"cluster"`` section, so one request
   shows aggregate traffic plus the per-process split;
5. with ``--snapshot-save`` each worker additionally runs a
   :class:`SnapshotRefresher`: a background thread that atomically
   re-persists the snapshot whenever the materialization gauge
   (``repro.stats()["snapshot"]["materialized"]``) grows past a threshold,
   so ``GET /snapshot`` always streams a recent complete file and a new
   host can bootstrap from the running fleet (``--snapshot-url``).

Entry point: ``python -m repro.service --processes N [--snapshot PATH]
[--snapshot-save PATH]``.  Fork is POSIX-only; on platforms without
``os.fork`` the CLI falls back to the single-process server with a
warning.
"""

from __future__ import annotations

import json
import mmap
import os
import signal
import socket
import struct
import threading
import time
from http.server import ThreadingHTTPServer

from .. import api, cache
from .core import DEFAULT_WORKERS, ValidationService
from .http import DEFAULT_HOST, DEFAULT_PORT, ServiceHTTPServer, ServiceRequestHandler

#: Bytes reserved per worker in the shared stats segment; a worker whose
#: summary outgrows its slot simply skips that publish.
SLOT_SIZE = 32 * 1024

#: Per-slot header: a seqlock counter (odd while a write is in progress)
#: and the payload length.
_SLOT_HEADER = struct.Struct("<II")

#: Seconds between a worker's stats publications.
PUBLISH_INTERVAL = 1.0

#: A slot whose summary is older than this is treated as a dead worker's
#: leftover: excluded from the live count and the request aggregate.
STALE_AFTER = 10 * PUBLISH_INTERVAL

#: A worker slot that crash-loops more than this many times stays down —
#: the supervisor must not turn a deterministic boot failure into a fork
#: bomb.
MAX_RESTARTS_PER_SLOT = 5

#: Seconds between the snapshot refresher's materialization checks.
REFRESH_INTERVAL = 30.0

#: Materialization growth (``stats()["snapshot"]["materialized"]["total"]``
#: delta) below which the refresher leaves the on-disk snapshot alone —
#: a handful of new transitions is not worth an fsync'd rewrite.
REFRESH_MIN_GROWTH = 64


class SnapshotRefresher:
    """Background thread keeping an on-disk snapshot fresh as traffic warms.

    Every *interval* seconds it reads the live materialization gauge
    (``repro.stats()["snapshot"]["materialized"]["total"]``: memoized
    lazy-DFA transitions + star-free table entries + validator memo
    entries) and, when the level has grown by at least *min_growth*
    since the last persist, atomically rewrites *path* via
    :func:`repro.save_snapshot` — so ``GET /snapshot`` and the next
    process boot always see a recent complete file, never a torn one.

    Used by the single-process server and by every prefork worker (the
    write is atomic, so concurrent workers racing on one path leave the
    last complete snapshot — still valid, merely one worker's view).
    Start/stop are idempotent; a failed save is recorded and retried at
    the next tick.
    """

    def __init__(
        self,
        path: str,
        interval: float = REFRESH_INTERVAL,
        min_growth: int = REFRESH_MIN_GROWTH,
    ):
        self.path = path
        self.interval = interval
        self.min_growth = max(1, min_growth)
        self.saves = 0
        self.last_report: dict | None = None
        self.last_error: str | None = None
        self._persisted_level = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()  # a stopped refresher may be started again
        # The baseline is deliberately zero, not the current in-memory
        # level: state preloaded from elsewhere (a --snapshot file, a
        # fleet's /snapshot URL) still counts as growth, so a freshly
        # bootstrapped host persists its own copy on the first tick and
        # can immediately serve GET /snapshot itself.  Worst case is one
        # redundant (atomic) rewrite per boot.
        self._thread = threading.Thread(
            target=self._loop, daemon=True, name="snapshot-refresher"
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.maybe_save()

    def maybe_save(self) -> dict | None:
        """One refresh tick: persist if materialization grew enough.

        Returns the save report when a snapshot was written, else
        ``None``.  Exposed for tests and for operators wanting a
        synchronous flush (e.g. right before shutdown).
        """
        level = cache.snapshot_stats()["materialized"]["total"]
        if level - self._persisted_level < self.min_growth:
            return None
        try:
            report = api.save_snapshot(self.path)
        except Exception as error:  # noqa: BLE001 - disk full, encoding bug, ...
            # Whatever failed, the contract holds: record it and retry at
            # the next tick — a dead refresher thread would silently serve
            # an ever-staler GET /snapshot with no telemetry signal.
            self.last_error = str(error)
            return None
        # Re-read after the save: a complete export densifies rows and
        # resolves acceptance verdicts, growing the gauge as a side
        # effect — that state is *in* the snapshot, so it is persisted.
        self._persisted_level = cache.snapshot_stats()["materialized"]["total"]
        self.saves += 1
        self.last_report = report
        self.last_error = None
        return report


class StatsBoard:
    """A fixed-slot shared-memory board for cross-process stats.

    The parent creates one anonymous shared mapping before forking; each
    worker owns exactly one slot (single writer), any process may read
    all of them.  Writes use a seqlock: the counter goes odd, the JSON
    payload and its length land, the counter goes even — a reader that
    observes an odd or changing counter simply retries and, failing
    that, reports the slot as stale.  No locks cross the process
    boundary, so a crashed worker can never wedge readers.
    """

    def __init__(self, slots: int, slot_size: int = SLOT_SIZE):
        if slots < 1:
            raise ValueError("a stats board needs at least one slot")
        self.slots = slots
        self.slot_size = slot_size
        self._mm = mmap.mmap(-1, slots * slot_size)

    def publish(self, index: int, payload: dict) -> bool:
        """Write *payload* into slot *index*; False if it does not fit."""
        data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        if len(data) > self.slot_size - _SLOT_HEADER.size:
            return False
        base = index * self.slot_size
        mm = self._mm
        seq, _ = _SLOT_HEADER.unpack_from(mm, base)
        if seq % 2:
            # A predecessor crashed mid-publish (the supervisor restarts
            # workers into their old slot): re-even the counter so the
            # stable state stays even and readers recover.
            seq += 1
        _SLOT_HEADER.pack_into(mm, base, seq + 1, 0)  # odd: write in progress
        start = base + _SLOT_HEADER.size
        mm[start : start + len(data)] = data
        _SLOT_HEADER.pack_into(mm, base, seq + 2, len(data))
        return True

    def read(self, index: int) -> dict | None:
        """Slot *index*'s latest payload, or ``None`` (empty/stale/torn)."""
        base = index * self.slot_size
        mm = self._mm
        for _ in range(4):
            seq, length = _SLOT_HEADER.unpack_from(mm, base)
            if seq == 0 or seq % 2:
                time.sleep(0.001)
                continue
            if not 0 < length <= self.slot_size - _SLOT_HEADER.size:
                return None
            start = base + _SLOT_HEADER.size
            data = bytes(mm[start : start + length])
            if _SLOT_HEADER.unpack_from(mm, base)[0] == seq:
                try:
                    return json.loads(data)
                except ValueError:
                    return None
        return None

    def read_all(self) -> dict[int, dict]:
        """Every populated slot, keyed by slot index."""
        entries = {}
        for index in range(self.slots):
            payload = self.read(index)
            if payload is not None:
                entries[index] = payload
        return entries


def cluster_payload(board: StatsBoard, processes: int) -> dict:
    """The fleet-view ``"cluster"`` section of ``GET /stats``.

    Merges every worker's latest :class:`StatsBoard` publication into an
    aggregate plus the per-process split, excluding stale slots (a dead
    worker's last summary).  Shared by the threaded and asyncio fronts —
    whichever worker answers the request reports the same fleet view.
    """
    workers = board.read_all()
    aggregate = {"total": 0, "errors": 0, "in_flight": 0}
    per_worker = {}
    live = 0
    now = time.time()
    for slot, payload in sorted(workers.items()):
        # A dead worker's last summary stays in shared memory; use the
        # timestamp it published to keep stale slots out of the live
        # count and the aggregate.
        updated = payload.get("updated_at")
        stale = not isinstance(updated, (int, float)) or (now - updated > STALE_AFTER)
        if not stale:
            live += 1
            requests = payload.get("requests", {})
            for key in aggregate:
                value = requests.get(key)
                if isinstance(value, (int, float)):
                    aggregate[key] += value
        per_worker[str(slot)] = {**payload, "stale": stale}
    return {
        "processes": processes,
        "live_workers": live,
        "serving_pid": os.getpid(),
        "aggregate_requests": aggregate,
        "workers": per_worker,
    }


def describe_preload(source: str, report: dict) -> str:
    """One line summarising a snapshot preload (shared by both fronts)."""
    return (
        f"snapshot {source}: {report['patterns_loaded']} patterns / "
        f"{report['rows_loaded']} rows, {report['tables_loaded']} star-free tables, "
        f"{report['memo_entries_loaded']} memo entries preloaded, "
        f"{report['rejected']} rejected"
    )


def snapshot_source_for(snapshot_save: str | None, snapshot_path: str | None) -> str | None:
    """The local file ``GET /snapshot`` should stream, or ``None``.

    The live ``--snapshot-save`` file wins; otherwise the ``--snapshot``
    file the server booted from.  A URL is never a source: a
    URL-bootstrapped host without ``--snapshot-save`` has nothing of its
    own to serve.  Shared by the single-process and prefork fronts so
    the policy cannot diverge between them.
    """
    if snapshot_save:
        return snapshot_save
    if snapshot_path and not snapshot_path.startswith(("http://", "https://")):
        return snapshot_path
    return None


class PreforkHTTPServer(ServiceHTTPServer):
    """A worker's HTTP server on the socket inherited from the parent.

    ``accept()`` runs on the shared listening socket — the kernel hands
    each connection to exactly one worker — and ``GET /stats`` answers
    with the fleet view merged from the :class:`StatsBoard`.
    """

    def __init__(
        self,
        listen_socket: socket.socket,
        service: ValidationService,
        board: StatsBoard | None = None,
        slot: int = 0,
        processes: int = 1,
        snapshot_source: str | None = None,
    ):
        address = listen_socket.getsockname()[:2]
        # Skip bind/activate: the parent already did both on the socket
        # we are adopting; TCPServer's own (unbound) socket is discarded.
        ThreadingHTTPServer.__init__(self, address, ServiceRequestHandler, bind_and_activate=False)
        self.socket.close()
        self.socket = listen_socket
        self.server_address = address
        self.server_name, self.server_port = address
        self.service = service
        self._owns_service = False
        self.board = board
        self.slot = slot
        self.processes = processes
        #: file ``GET /snapshot`` streams (fleet bootstrap), if any
        self.snapshot_source = snapshot_source

    def server_close(self) -> None:  # noqa: D102 - stdlib override
        # The listening socket belongs to the parent (and to sibling
        # workers); close only this process's file descriptor.
        self.socket.close()

    def stats_payload(self) -> dict:
        stats = self.service.stats()
        if self.board is not None:
            stats["cluster"] = cluster_payload(self.board, self.processes)
        return stats


def _worker_summary(service: ValidationService) -> dict:
    stats = service.stats()
    return {
        "pid": os.getpid(),
        "requests": stats["requests"],
        "pattern_cache": stats["pattern_cache"],
        "updated_at": time.time(),
    }


def _worker_main(
    listen_socket: socket.socket,
    board: StatsBoard,
    slot: int,
    processes: int,
    workers: int,
    snapshot_source: str | None = None,
    snapshot_save: str | None = None,
    refresh_interval: float = REFRESH_INTERVAL,
    refresh_min_growth: int = REFRESH_MIN_GROWTH,
    front: str = "threaded",
    auth_token: str | None = None,
    autosize_interval: float | None = None,
) -> None:
    """Body of one forked worker; never returns (the caller ``_exit``\\ s)."""
    autosizer = None
    if autosize_interval is not None:
        from .autosize import Autosizer

        autosizer = Autosizer(interval=autosize_interval)
    if front == "aio":
        # The asyncio worker front: one event loop per process accepting
        # on the inherited socket (streaming NDJSON, backpressure,
        # deadlines — see repro.service.aio).  It owns its own refresher
        # + publisher wiring, so hand everything over.
        from .aio_run import run_prefork_worker

        run_prefork_worker(
            listen_socket,
            board,
            slot,
            processes,
            workers,
            snapshot_source=snapshot_source,
            snapshot_save=snapshot_save,
            refresh_interval=refresh_interval,
            refresh_min_growth=refresh_min_growth,
            auth_token=auth_token,
            autosizer=autosizer,
        )
        return
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # the parent coordinates shutdown
    service = ValidationService(workers=workers)
    if autosizer is not None:
        service.autosizer = autosizer
        autosizer.start()
    server = PreforkHTTPServer(
        listen_socket, service, board, slot, processes, snapshot_source=snapshot_source
    )
    refresher: SnapshotRefresher | None = None
    if snapshot_save:
        # Stagger the per-worker ticks so the fleet does not fsync the
        # same path in lockstep; writes are atomic either way.
        refresher = SnapshotRefresher(
            snapshot_save,
            interval=refresh_interval * (1.0 + 0.1 * slot),
            min_growth=refresh_min_growth,
        )
        refresher.start()
    stop = threading.Event()

    def _publish_loop() -> None:
        while not stop.is_set():
            board.publish(slot, _worker_summary(service))
            stop.wait(PUBLISH_INTERVAL)

    publisher = threading.Thread(target=_publish_loop, daemon=True, name="stats-publisher")
    publisher.start()

    def _terminate(signum: int, frame: object) -> None:
        # shutdown() blocks until serve_forever exits; never call it on
        # the signal-handling (main) thread that serve_forever runs on.
        threading.Thread(target=server.shutdown, daemon=True).start()

    # No publish here: the publisher thread's first iteration publishes
    # immediately, and the slot has exactly one writer by construction.
    signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        stop.set()
        if refresher is not None:
            refresher.stop()
        if autosizer is not None:
            autosizer.stop()
        server.server_close()
        service.close()


def serve_prefork(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    processes: int = 2,
    workers: int = DEFAULT_WORKERS,
    snapshot_path: str | None = None,
    snapshot_save: str | None = None,
    refresh_interval: float = REFRESH_INTERVAL,
    refresh_min_growth: int = REFRESH_MIN_GROWTH,
    front: str = "threaded",
    auth_token: str | None = None,
    autosize_interval: float | None = None,
) -> None:
    """Run the prefork front until interrupted (``--processes N`` body).

    *snapshot_path* (a file or an ``http(s)://`` fleet URL) is preloaded
    in the parent before forking, so every worker shares the adopted
    pages copy-on-write.  *snapshot_save* turns on the live lifecycle:
    each worker runs a :class:`SnapshotRefresher` re-persisting that
    path as its materialization grows, and ``GET /snapshot`` streams it
    to bootstrapping hosts.  *front* selects each worker's serving body:
    ``"threaded"`` (a thread-per-connection HTTP server) or ``"aio"``
    (one event loop per worker, streaming NDJSON — see
    :mod:`repro.service.aio`); the process model is identical either
    way.
    """
    if not hasattr(os, "fork"):
        raise RuntimeError("the prefork front requires os.fork (POSIX)")
    if processes < 1:
        raise ValueError("processes must be >= 1")
    if front not in ("threaded", "aio"):
        raise ValueError(f"unknown front {front!r} (expected 'threaded' or 'aio')")
    listen = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listen.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listen.bind((host, port))
    listen.listen(128)
    bound_host, bound_port = listen.getsockname()[:2]
    if snapshot_path:
        print(describe_preload(snapshot_path, api.load_snapshot(snapshot_path)), flush=True)
    snapshot_source = snapshot_source_for(snapshot_save, snapshot_path)
    board = StatsBoard(processes)
    print(
        f"repro.service prefork listening on http://{bound_host}:{bound_port} "
        f"({processes} processes x {workers} threads, {front} front) — "
        "POST /match, POST /validate, GET /stats",
        flush=True,
    )

    pids: dict[int, int] = {}
    restarts = [0] * processes
    shutting_down = False

    def _spawn(slot: int) -> None:
        pid = os.fork()
        if pid == 0:
            try:
                _worker_main(
                    listen,
                    board,
                    slot,
                    processes,
                    workers,
                    snapshot_source=snapshot_source,
                    snapshot_save=snapshot_save,
                    refresh_interval=refresh_interval,
                    refresh_min_growth=refresh_min_growth,
                    front=front,
                    auth_token=auth_token,
                    autosize_interval=autosize_interval,
                )
            finally:
                os._exit(0)
        pids[pid] = slot

    def _terminate(signum: int, frame: object) -> None:
        nonlocal shutting_down
        shutting_down = True
        for pid in list(pids):
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass

    # Handlers go in before the first fork: a signal during the spawn
    # loop must already broadcast to the children spawned so far.
    previous_term = signal.signal(signal.SIGTERM, _terminate)
    previous_int = signal.signal(signal.SIGINT, _terminate)
    try:
        for slot in range(processes):
            _spawn(slot)
        while pids:
            try:
                pid, _status = os.wait()
            except InterruptedError:
                continue
            except ChildProcessError:
                break
            slot = pids.pop(pid, None)
            if slot is None or shutting_down:
                continue
            restarts[slot] += 1
            if restarts[slot] > MAX_RESTARTS_PER_SLOT:
                print(f"worker slot {slot} exceeded restart budget; leaving it down", flush=True)
                continue
            time.sleep(0.1)
            if shutting_down:
                # SIGTERM landed during the backoff, after the kill
                # broadcast: spawning now would orphan a worker and
                # leave this loop waiting on it forever.
                continue
            _spawn(slot)
    finally:
        signal.signal(signal.SIGTERM, previous_term)
        signal.signal(signal.SIGINT, previous_int)
        listen.close()
