"""Byte-level framing for the asyncio front (:mod:`repro.service.aio`).

Everything here is connection plumbing with no service semantics: HTTP
response heads, deadline-header parsing, chunked-transfer decoding,
incremental NDJSON line splitting and per-item JSON parsing.  The
handlers in :mod:`repro.service.aio` compose these; keeping them apart
keeps the front module focused on routing and the streaming pipeline.

All generators yield bounded pieces: a frame is consumed in
:data:`COPY_BLOCK` blocks and the line splitter buffers at most one
incomplete line (bounded by :data:`repro.service.wire.MAX_LINE_BYTES`),
so memory never scales with the corpus a client streams.
"""

from __future__ import annotations

import asyncio
import json
from http.client import responses as _REASONS

from . import wire
from .wire import WireError

#: Request wall-clock bound, milliseconds, set per request.
DEADLINE_HEADER = "x-repro-deadline-ms"

#: Bytes per read/sendfile-fallback block on body and snapshot paths.
COPY_BLOCK = 64 * 1024


def head_bytes(status: int, headers: list[tuple[str, str]]) -> bytes:
    """Serialise one HTTP/1.1 response head (status line + headers)."""
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def deadline_seconds(head: wire.RequestHead) -> float | None:
    """The request deadline from :data:`DEADLINE_HEADER`, in seconds."""
    raw = head.headers.get(DEADLINE_HEADER)
    if raw is None:
        return None
    try:
        ms = float(raw)
    except ValueError:
        raise WireError(400, f"invalid {DEADLINE_HEADER} header: {raw!r}") from None
    if ms <= 0:
        raise WireError(400, f"{DEADLINE_HEADER} must be positive, got {raw!r}")
    return ms / 1000.0


async def chunked_frames(reader: asyncio.StreamReader):
    """Decode chunked transfer encoding: yields raw data pieces.

    A frame is consumed in :data:`COPY_BLOCK` pieces, so one
    absurdly-sized chunk declared by a client never buffers whole —
    the line splitter downstream enforces the real per-item bound.
    """
    while True:
        size = wire.parse_chunk_size(await reader.readline())
        if size == 0:
            # Drain optional trailers up to the terminating blank line.
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            return
        while size > 0:
            piece = await reader.read(min(COPY_BLOCK, size))
            if not piece:
                raise WireError(400, "request body ended inside a chunk")
            size -= len(piece)
            yield piece
        await reader.readexactly(2)  # the CRLF after each chunk


async def body_lines(reader: asyncio.StreamReader, head: wire.RequestHead):
    """Yield the request body's NDJSON lines, incrementally.

    Handles both Content-Length and chunked bodies; buffers at most one
    incomplete line (bounded by :data:`wire.MAX_LINE_BYTES` — 413
    beyond) plus one transfer frame, never the corpus.
    """
    buffer = bytearray()
    if head.is_chunked():
        async for frame in chunked_frames(reader):
            buffer.extend(frame)
            for line in wire.split_lines(buffer):
                yield line
    else:
        remaining = head.content_length()
        if remaining is None:
            raise WireError(411, "streaming requests need Content-Length or chunked TE")
        while remaining > 0:
            data = await reader.read(min(COPY_BLOCK, remaining))
            if not data:
                raise WireError(400, "request body ended before Content-Length")
            remaining -= len(data)
            buffer.extend(data)
            for line in wire.split_lines(buffer):
                yield line
    if buffer:  # final line without a trailing newline
        tail = bytes(buffer)
        yield tail[:-1] if tail.endswith(b"\r") else tail


def parse_word_item(line: bytes):
    """One ``POST /match`` stream item: a word (string or symbol list)."""
    try:
        word = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise WireError(400, f"invalid NDJSON item: {error}") from None
    if isinstance(word, str):
        return word
    if isinstance(word, list) and all(isinstance(symbol, str) for symbol in word):
        return word
    raise WireError(400, "stream items must be strings or lists of symbol strings")


def parse_document_item(line: bytes):
    """One ``POST /validate`` stream item: an XML document string."""
    try:
        text = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise WireError(400, f"invalid NDJSON item: {error}") from None
    if not isinstance(text, str):
        raise WireError(400, "stream items must be XML document strings")
    return text


__all__ = [
    "COPY_BLOCK",
    "DEADLINE_HEADER",
    "body_lines",
    "chunked_frames",
    "deadline_seconds",
    "head_bytes",
    "parse_document_item",
    "parse_word_item",
]
