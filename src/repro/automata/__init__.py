"""Finite-automaton baselines: the Glushkov automaton and Thompson's NFA.

These are the classical constructions whose costs the paper's algorithms
avoid; the library keeps them as baselines for the benchmarks and as
independent oracles for the test-suite.
"""

from .glushkov import GlushkovAutomaton, GlushkovConflict, GlushkovDFA
from .nfa import ThompsonNFA

__all__ = [
    "GlushkovAutomaton",
    "GlushkovConflict",
    "GlushkovDFA",
    "ThompsonNFA",
]
