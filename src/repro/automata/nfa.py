"""Thompson construction and epsilon-NFA simulation.

A second, structurally different baseline used by the test-suite as an
independent membership oracle (it never looks at Follow sets, so a bug in
the Glushkov machinery cannot hide behind an identical bug here) and by
the benchmarks as the "textbook" matcher for arbitrary expressions.

States are integers; transitions are either labelled by a symbol or by
``None`` (epsilon).  Construction is linear in the size of the AST;
matching costs ``O(|e|)`` per input symbol through epsilon-closure /
step alternation.
"""

from __future__ import annotations

from ..regex.ast import (
    Concat,
    Epsilon,
    Optional,
    Plus,
    Regex,
    Repeat,
    Star,
    Sym,
    Union,
)
from ..regex.normalize import normalize
from ..regex.parser import parse


class ThompsonNFA:
    """Epsilon-NFA built with Thompson's construction."""

    def __init__(self, expr: Regex | str):
        if isinstance(expr, str):
            expr = parse(expr)
        from ..regex.ast import ensure_recursion_capacity

        ensure_recursion_capacity(expr, multiplier=3)
        # Normalising first keeps the state count linear in the number of
        # positions (numeric repetitions are expanded like everywhere else).
        self.expr = normalize(expr, expand_numeric=True)
        self._symbol_edges: list[dict[str, list[int]]] = []
        self._epsilon_edges: list[list[int]] = []
        self.start, self.accept = self._build(self.expr)
        self._closure_cache: dict[frozenset[int], frozenset[int]] = {}

    # -- construction ------------------------------------------------------------
    def _new_state(self) -> int:
        self._symbol_edges.append({})
        self._epsilon_edges.append([])
        return len(self._symbol_edges) - 1

    def _add_symbol_edge(self, source: int, symbol: str, target: int) -> None:
        self._symbol_edges[source].setdefault(symbol, []).append(target)

    def _add_epsilon_edge(self, source: int, target: int) -> None:
        self._epsilon_edges[source].append(target)

    def _build(self, expr: Regex) -> tuple[int, int]:
        if isinstance(expr, Epsilon):
            start = self._new_state()
            accept = self._new_state()
            self._add_epsilon_edge(start, accept)
            return start, accept
        if isinstance(expr, Sym):
            start = self._new_state()
            accept = self._new_state()
            self._add_symbol_edge(start, expr.symbol, accept)
            return start, accept
        if isinstance(expr, Concat):
            left_start, left_accept = self._build(expr.left)
            right_start, right_accept = self._build(expr.right)
            self._add_epsilon_edge(left_accept, right_start)
            return left_start, right_accept
        if isinstance(expr, Union):
            start = self._new_state()
            accept = self._new_state()
            for branch in (expr.left, expr.right):
                branch_start, branch_accept = self._build(branch)
                self._add_epsilon_edge(start, branch_start)
                self._add_epsilon_edge(branch_accept, accept)
            return start, accept
        if isinstance(expr, (Star, Plus)):
            start = self._new_state()
            accept = self._new_state()
            body_start, body_accept = self._build(expr.child)
            self._add_epsilon_edge(start, body_start)
            self._add_epsilon_edge(body_accept, body_start)
            self._add_epsilon_edge(body_accept, accept)
            if isinstance(expr, Star):
                self._add_epsilon_edge(start, accept)
            return start, accept
        if isinstance(expr, Optional):
            start = self._new_state()
            accept = self._new_state()
            body_start, body_accept = self._build(expr.child)
            self._add_epsilon_edge(start, body_start)
            self._add_epsilon_edge(body_accept, accept)
            self._add_epsilon_edge(start, accept)
            return start, accept
        if isinstance(expr, Repeat):  # pragma: no cover - removed by normalisation
            raise AssertionError("Repeat nodes are expanded during normalisation")
        raise TypeError(f"unknown AST node: {expr!r}")

    # -- simulation ----------------------------------------------------------------
    @property
    def state_count(self) -> int:
        """Number of NFA states."""
        return len(self._symbol_edges)

    def epsilon_closure(self, states: frozenset[int]) -> frozenset[int]:
        """All states reachable from *states* through epsilon edges."""
        cached = self._closure_cache.get(states)
        if cached is not None:
            return cached
        closure = set(states)
        stack = list(states)
        while stack:
            state = stack.pop()
            for target in self._epsilon_edges[state]:
                if target not in closure:
                    closure.add(target)
                    stack.append(target)
        frozen = frozenset(closure)
        self._closure_cache[states] = frozen
        return frozen

    def step(self, states: frozenset[int], symbol: str) -> frozenset[int]:
        """One symbol-consuming step followed by epsilon closure."""
        moved: set[int] = set()
        for state in states:
            moved.update(self._symbol_edges[state].get(symbol, ()))
        if not moved:
            return frozenset()
        return self.epsilon_closure(frozenset(moved))

    def accepts(self, word) -> bool:
        """Membership test by subset simulation."""
        current = self.epsilon_closure(frozenset((self.start,)))
        for symbol in word:
            current = self.step(current, symbol)
            if not current:
                return False
        return self.accept in current
