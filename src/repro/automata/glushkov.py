"""The Glushkov (position) automaton and the classical determinism test.

This is the baseline the paper improves upon:

* the automaton has one state per position plus an initial state, and a
  transition ``p --a--> q`` whenever ``q ∈ Follow(p)`` and ``lab(q) = a``;
  its worst-case size is ``Θ(σ|e|)`` (e.g. on mixed content
  ``(a1+...+am)*``), and building it costs that much;
* Brüggemann-Klein's theorem: ``e`` is deterministic iff its Glushkov
  automaton is deterministic, i.e. no state has two outgoing transitions
  with the same label.  Checking this after construction is the classical
  ``O(σ|e|)`` determinism test (experiment E1's baseline);
* for deterministic expressions the automaton *is* a DFA and can be used
  directly for matching (the baseline matcher of experiments E3–E6).

The implementation deliberately goes through the explicit transition
relation — that is the very cost the paper's skeleton construction avoids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import NotDeterministicError
from ..regex.ast import Regex
from ..regex.language import LanguageOracle
from ..regex.parse_tree import ParseTree, TreeNode, build_parse_tree


@dataclass(frozen=True, slots=True)
class GlushkovConflict:
    """A witness of non-determinism: two equally-labelled followers of one state.

    ``source`` is a position index (or the initial-state sentinel ``#``),
    ``first``/``second`` are the conflicting follower position indices and
    ``symbol`` their shared label.
    """

    source: int
    first: int
    second: int
    symbol: str


class GlushkovAutomaton:
    """Position automaton of an expression, built the classical way."""

    def __init__(self, tree: ParseTree, oracle: LanguageOracle | None = None):
        self.tree = tree
        self.oracle = oracle if oracle is not None else LanguageOracle(tree)
        # The # sentinel position plays the role of the initial state, and a
        # transition to the $ sentinel encodes acceptance, so the transition
        # table is simply the Follow relation grouped by label.
        self._transitions: list[dict[str, list[int]]] = []
        end_index = tree.end.position_index
        for position in tree.positions:
            row: dict[str, list[int]] = {}
            for q in sorted(self.oracle.follow(position.position_index)):
                if q == end_index:
                    continue
                row.setdefault(tree.positions[q].symbol, []).append(q)
            self._transitions.append(row)
        self._accepting = [
            end_index in self.oracle.follow(position.position_index)
            for position in tree.positions
        ]

    # -- construction helpers --------------------------------------------------
    @classmethod
    def from_expression(cls, expr: Regex | str) -> "GlushkovAutomaton":
        """Build the automaton of *expr* (AST or paper-dialect text)."""
        return cls(build_parse_tree(expr))

    # -- basic facts -------------------------------------------------------------
    @property
    def initial_state(self) -> int:
        """The state corresponding to the ``#`` sentinel."""
        return self.tree.start.position_index

    def states(self) -> range:
        """All states (position indices, sentinels included)."""
        return range(len(self.tree.positions))

    def transitions_from(self, state: int) -> dict[str, list[int]]:
        """Outgoing transitions of *state*, grouped by symbol."""
        return self._transitions[state]

    def is_accepting(self, state: int) -> bool:
        """True when *state* is final (the ``$`` sentinel follows it)."""
        return self._accepting[state]

    def transition_count(self) -> int:
        """Total number of transitions — the ``O(σ|e|)`` quantity of the paper."""
        return sum(len(targets) for row in self._transitions for targets in row.values())

    def state_count(self) -> int:
        """Number of states (positions of the expression, sentinels included)."""
        return len(self._transitions)

    # -- determinism (Brüggemann-Klein) --------------------------------------------
    def determinism_conflict(self) -> GlushkovConflict | None:
        """Return a witness of non-determinism, or ``None`` if deterministic."""
        for state, row in enumerate(self._transitions):
            for symbol, targets in row.items():
                if len(targets) > 1:
                    return GlushkovConflict(state, targets[0], targets[1], symbol)
        return None

    def is_deterministic(self) -> bool:
        """Brüggemann-Klein's test: no state has two same-labelled successors."""
        return self.determinism_conflict() is None

    # -- matching -----------------------------------------------------------------
    def accepts(self, word: Sequence[str]) -> bool:
        """Subset-simulation membership test (works for any expression)."""
        current: set[int] = {self.initial_state}
        for symbol in word:
            following: set[int] = set()
            for state in current:
                following.update(self._transitions[state].get(symbol, ()))
            if not following:
                return False
            current = following
        return any(self._accepting[state] for state in current)


class GlushkovDFA:
    """Deterministic matcher backed by the Glushkov automaton.

    Only available for deterministic expressions (raises
    :class:`~repro.errors.NotDeterministicError` otherwise).  Matching a
    word is a single pointer-chase per symbol; the cost of this matcher is
    entirely in its ``O(σ|e|)`` construction, which is what the paper's
    matchers avoid.
    """

    def __init__(self, automaton: GlushkovAutomaton):
        conflict = automaton.determinism_conflict()
        if conflict is not None:
            raise NotDeterministicError(
                "cannot build a DFA from a non-deterministic expression", report=conflict
            )
        self.automaton = automaton
        self._delta: list[dict[str, int]] = [
            {symbol: targets[0] for symbol, targets in row.items()}
            for row in automaton._transitions
        ]
        self._accepting = automaton._accepting

    @classmethod
    def from_expression(cls, expr: Regex | str) -> "GlushkovDFA":
        """Build a DFA matcher for *expr* (AST or paper-dialect text)."""
        return cls(GlushkovAutomaton.from_expression(expr))

    @property
    def tree(self) -> ParseTree:
        """The parse tree the DFA was built from."""
        return self.automaton.tree

    def accepts(self, word: Iterable[str]) -> bool:
        """True when *word* belongs to the language."""
        state = self.automaton.initial_state
        delta = self._delta
        for symbol in word:
            next_state = delta[state].get(symbol)
            if next_state is None:
                return False
            state = next_state
        return self._accepting[state]

    def run(self, word: Iterable[str]) -> list[int]:
        """Return the visited positions (for debugging and tests)."""
        state = self.automaton.initial_state
        trace = [state]
        for symbol in word:
            next_state = self._delta[state].get(symbol)
            if next_state is None:
                return trace
            state = next_state
            trace.append(state)
        return trace

    def position_of(self, state: int) -> TreeNode:
        """The parse-tree position corresponding to a DFA state."""
        return self.automaton.tree.positions[state]
