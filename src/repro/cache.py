"""Process-wide pattern cache and snapshot persistence/telemetry.

Split out of :mod:`repro.api` so the facade stays a facade: this module
owns the two pieces of *process-wide* mutable state —

* :data:`PATTERN_CACHE` — the ``re``-style LRU of compiled patterns
  behind :func:`repro.compile` (:class:`PatternCache`, thread-safe,
  lock-free warm hits);
* :data:`SNAPSHOT_TELEMETRY` — the save/load/adoption counters behind
  ``repro.stats()["snapshot"]`` — plus the snapshot walk itself
  (:func:`save_snapshot` / :func:`load_snapshot`), which persists and
  re-adopts every warm pattern's materialized matching state (dense
  lazy-DFA rows, star-free decision tables, validator acceptance memos).

Engine state is read exclusively through each pattern's
:class:`~repro.matching.plan.ExecutionPlan` accessors (plus the
pattern-owned runtime/memo), so star-free batch routing has exactly one
owner — the planner — and a future dialect engine that registers its own
snapshot section only extends the plan protocol, not this walk.

The public spellings stay on :mod:`repro.api` (``repro.save_snapshot``,
``repro.load_snapshot``, ``repro.stats``...); importing the old private
names from ``repro.api`` still works behind ``DeprecationWarning`` shims.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable

from .errors import ReproError
from .matching.runtime import clear_shared_rows
from .matching.snapshot import SnapshotError
from .regex.ast import Regex
from .regex.parser import parse
from .regex.printer import to_text

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .api import Pattern

#: Size of the module-level compile cache.  512 comfortably covers the
#: content models of the largest schemas in the Grijzenhout/Li corpora
#: while bounding memory for adversarial streams of distinct patterns.
COMPILE_CACHE_SIZE = 512


class PatternCache:
    """A thread-safe LRU of compiled patterns (replaces ``functools.lru_cache``).

    The ``lru_cache`` it replaces had a latent race with ``repro.purge``:
    eviction bookkeeping lived in a module global (``_build_count``) that a
    purge reset *before* ``cache_clear()`` ran, so a concurrent miss could
    finish its construction in between, re-insert into the supposedly
    cleared cache, and leave the dense-row registry (cleared separately,
    later) referencing rows the cache no longer knew about — eviction
    counts could even go negative.  Here every mutation — hit bookkeeping,
    the whole miss (count, build, insert, evict) and the purge (entries,
    counters *and* the shared dense-row registry) — happens under one
    re-entrant mutex, so a purge is strictly before or strictly after any
    insertion and the registry clear is atomic with the cache clear.

    Reads stay cheap — and never stall behind a build: the warm path
    probes the dictionary without any lock (a single ``dict.get``, atomic
    under the GIL), counts the hit under a dedicated counter mutex that no
    slow operation ever holds, and bumps the LRU recency only if the
    writer mutex is free right now (``acquire(blocking=False)``) — while a
    miss is constructing a large pattern, concurrent warm hits return
    immediately with at worst slightly stale recency ordering.  A probe
    that races a purge simply returns the still-valid pre-purge pattern to
    its caller without re-inserting it — in-flight work keeps its pattern,
    the cache stays empty.
    """

    __slots__ = ("maxsize", "lock", "_count_lock", "_entries", "hits", "misses", "insertions")

    def __init__(self, maxsize: int):
        self.maxsize = maxsize
        #: writer mutex (entries + eviction); re-entrant so a build that
        #: (now or in the future) compiles a sub-pattern through
        #: ``repro.compile`` cannot self-deadlock
        self.lock = threading.RLock()
        #: counter mutex: held only for integer bumps and snapshots, never
        #: while building, so hit accounting cannot block on a slow miss.
        #: Lock order where both are taken: ``lock`` before ``_count_lock``.
        self._count_lock = threading.Lock()
        self._entries: "OrderedDict[tuple, Pattern]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: successful constructions since the last purge; a failed build
        #: (syntax error) counts as a miss but inserts nothing, so the
        #: eviction count must be derived from insertions, not misses
        self.insertions = 0

    def _count_hit(self, key: tuple) -> None:
        with self._count_lock:
            self.hits += 1
        if self.lock.acquire(blocking=False):  # recency is best-effort
            try:
                self._entries.move_to_end(key)
            except KeyError:
                pass  # evicted/purged between probe and bump; see class docstring
            finally:
                self.lock.release()

    def get_or_build(self, key: tuple, build: Callable[[], "Pattern"]) -> "Pattern":
        pattern = self._entries.get(key)  # optimistic lock-free probe
        if pattern is not None:
            self._count_hit(key)
            return pattern
        with self.lock:
            pattern = self._entries.get(key)
            if pattern is not None:  # another thread built it while we waited
                with self._count_lock:
                    self.hits += 1
                self._entries.move_to_end(key)
                return pattern
            # Single-writer miss path: construction runs under the writer
            # lock, so concurrent misses for one key build once and purge
            # is atomic with respect to the insertion.
            with self._count_lock:
                self.misses += 1
            pattern = build()
            with self._count_lock:
                self.insertions += 1
            self._entries[key] = pattern
            if len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
            return pattern

    def purge(self) -> None:
        with self.lock:
            with self._count_lock:
                self._entries.clear()
                self.hits = self.misses = self.insertions = 0
            clear_shared_rows()

    def resize(self, maxsize: int) -> int:
        """Change the cache bound; returns the previous bound.

        Shrinking evicts the least-recently-used overflow immediately
        (under the writer lock, atomic with concurrent misses); growing
        just raises the bound.  In-flight matches keep any pattern they
        already hold — eviction only drops the cache's reference.
        """
        if maxsize < 1:
            raise ValueError("cache size must be >= 1")
        with self.lock:
            previous = self.maxsize
            self.maxsize = maxsize
            while len(self._entries) > maxsize:
                self._entries.popitem(last=False)
            return previous

    def items(self) -> list[tuple[tuple, "Pattern"]]:
        """A consistent (key, pattern) snapshot of the live entries."""
        with self.lock:
            return list(self._entries.items())

    def stats(self) -> dict[str, int]:
        with self._count_lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.insertions - len(self._entries),
                "size": len(self._entries),
                "max_size": self.maxsize,
            }


#: The process-wide compile cache behind :func:`repro.compile`.
PATTERN_CACHE = PatternCache(COMPILE_CACHE_SIZE)


def compile_cache_stats() -> dict[str, int]:
    """Hit/miss/eviction counters of the compile cache (tests and telemetry).

    ``evictions`` is derived: every successful construction inserts one
    entry and only LRU eviction removes one (``purge`` resets all
    counters), so evictions = insertions − live entries.  Failed compiles
    (syntax errors) count as misses but not insertions.  The snapshot is
    taken under the cache lock, so the counters are mutually consistent
    even while worker threads compile (``GET /stats`` on the validation
    service reads them mid-traffic).  Sustained growth of the eviction
    number is the signal to raise :data:`COMPILE_CACHE_SIZE` — see
    ``examples/xsd_validation.py`` for reading these under a real
    validation workload.

    This is the internal, warning-free entry point; the public surface
    is ``repro.stats()["pattern_cache"]``.
    """
    return PATTERN_CACHE.stats()


class SnapshotTelemetry:
    """Process-wide counters behind ``repro.stats()["snapshot"]`` (thread-safe)."""

    def __init__(self):
        self._lock = threading.Lock()
        self.saves = 0
        self.loads = 0
        self.format_v1 = 0
        self.format_v2 = 0
        self.patterns_saved = 0
        self.rows_saved = 0
        self.tables_saved = 0
        self.memo_entries_saved = 0
        self.patterns_skipped = 0
        self.patterns_loaded = 0
        self.rows_loaded = 0
        self.tables_loaded = 0
        self.memo_entries_loaded = 0
        self.snapshot_rejected = 0
        self.rejected_reasons: dict[str, int] = {}
        self.last_error: str | None = None

    def record_save(
        self,
        patterns: int,
        rows: int,
        skipped: int,
        tables: int = 0,
        memo_entries: int = 0,
    ) -> None:
        with self._lock:
            self.saves += 1
            self.patterns_saved += patterns
            self.rows_saved += rows
            self.patterns_skipped += skipped
            self.tables_saved += tables
            self.memo_entries_saved += memo_entries

    def record_load(
        self,
        patterns: int,
        rows: int,
        tables: int = 0,
        memo_entries: int = 0,
        format_version: int = 2,
    ) -> None:
        with self._lock:
            self.loads += 1
            self.patterns_loaded += patterns
            self.rows_loaded += rows
            self.tables_loaded += tables
            self.memo_entries_loaded += memo_entries
            if format_version == 1:
                self.format_v1 += 1
            else:
                self.format_v2 += 1

    def record_reject(self, reason: str, message: str) -> None:
        with self._lock:
            self.snapshot_rejected += 1
            self.rejected_reasons[reason] = self.rejected_reasons.get(reason, 0) + 1
            self.last_error = message

    def stats(self) -> dict:
        with self._lock:
            return {
                "saves": self.saves,
                "loads": self.loads,
                "format_v1": self.format_v1,
                "format_v2": self.format_v2,
                "patterns_saved": self.patterns_saved,
                "rows_saved": self.rows_saved,
                "tables_saved": self.tables_saved,
                "memo_entries_saved": self.memo_entries_saved,
                "patterns_skipped": self.patterns_skipped,
                "patterns_loaded": self.patterns_loaded,
                "rows_loaded": self.rows_loaded,
                "tables_loaded": self.tables_loaded,
                "memo_entries_loaded": self.memo_entries_loaded,
                "snapshot_rejected": self.snapshot_rejected,
                "rejected_reasons": dict(self.rejected_reasons),
                "last_error": self.last_error,
            }


SNAPSHOT_TELEMETRY = SnapshotTelemetry()


def snapshot_meta(key: tuple, pattern: "Pattern") -> dict | None:
    """The reconstruction identity of a cached pattern, or ``None``.

    A snapshot entry must let a *fresh* process rebuild the identical
    cache entry: same cache key, same parse tree, same row encoding.
    String-keyed patterns reuse their original text; AST-keyed ones
    (content models compiled by the DTD/XSD validators) are printed and
    re-parsed, and any expression whose text round-trip does not
    reproduce the exact AST is skipped rather than persisted wrongly.
    """
    expr, dialect, strategy, compiled = key
    if isinstance(expr, str):
        key_kind = "text"
        text = expr
        parse_dialect = dialect
        try:
            if parse(text, dialect=dialect) != pattern.expression:
                return None
        except ReproError:
            return None
    else:
        key_kind = "ast"
        for parse_dialect, printer_dialect in (("paper", "paper"), ("named", "named")):
            try:
                text = to_text(expr, dialect=printer_dialect)
                if parse(text, dialect=parse_dialect) == expr:
                    break
            except (ReproError, ValueError):
                continue
        else:
            return None
    alphabet = pattern.tree.alphabet.as_list()
    return {
        "expr": text,
        "parse_dialect": parse_dialect,
        "key_kind": key_kind,
        "dialect": dialect,
        "strategy": strategy,
        "compiled": bool(compiled),
        "alphabet": alphabet,
        "positions": len(pattern.tree.positions),
        "width": len(alphabet),
    }


def save_snapshot(path: str, complete: bool = True) -> dict:
    """Persist every warm pattern's materialized state to *path* (atomically).

    Walks the compile cache and writes one checksummed format-v2 file
    (:func:`repro.matching.snapshot.write`) with up to three sections per
    the state each pattern holds:

    * dense lazy-DFA rows
      (:meth:`~repro.matching.runtime.CompiledRuntime.export_rows`; with
      *complete*, visited dict rows are densified and all acceptance
      verdicts resolved first, so the snapshot replays with zero matcher
      delegations);
    * the star-free multi-matcher's decision/acceptance tables
      (:meth:`~repro.matching.star_free.StarFreeMultiMatcher.export_tables`),
      read off the pattern's execution plan;
    * the validators' per-element acceptance memos
      (:meth:`~repro.xml.memo.AcceptanceMemo.export`).

    Patterns with no materialized state in any section — or whose
    expression text does not round-trip — are skipped and counted.
    Returns ``{"path", "patterns", "rows", "pool_rows",
    "star_free_patterns", "decisions", "memo_patterns", "memo_entries",
    "sections", "bytes", "skipped"}``.
    """
    from .matching import snapshot as snapshot_format

    rows_entries = []
    table_entries = []
    memo_entries = []
    skipped = 0
    for key, pattern in PATTERN_CACHE.items():
        row_export = None
        runtime = pattern._built_runtime()
        if runtime is not None:
            row_export = runtime.export_rows(complete=complete)
            if not row_export["rows"]:
                row_export = None
        table_export = None
        plan = pattern._built_plan()
        multi = plan.built_star_free() if plan is not None else None
        if multi is not None:
            table_export = multi.export_tables()
            if not table_export["accepts"] and not table_export["decisions"]:
                table_export = None
        memo = pattern._acceptance_memo
        memo_export = memo.export() if memo is not None and len(memo) else None
        if row_export is None and table_export is None and memo_export is None:
            skipped += 1
            continue
        meta = snapshot_meta(key, pattern)
        if meta is None:
            skipped += 1
            continue
        fingerprint = snapshot_format.pattern_fingerprint(meta)
        if row_export is not None:
            rows_entries.append(
                {
                    "fingerprint": fingerprint,
                    "meta": meta,
                    "accepts": row_export["accepts"],
                    "rows": row_export["rows"],
                }
            )
        if table_export is not None:
            table_entries.append(
                {
                    "fingerprint": fingerprint,
                    "meta": meta,
                    "accepts": table_export["accepts"],
                    "decisions": table_export["decisions"],
                }
            )
        if memo_export is not None:
            memo_entries.append(
                {"fingerprint": fingerprint, "meta": meta, "entries": memo_export}
            )
    written = snapshot_format.write(path, rows_entries, star_free=table_entries, memos=memo_entries)
    SNAPSHOT_TELEMETRY.record_save(
        written["patterns"],
        written["rows"],
        skipped,
        tables=written["star_free_patterns"],
        memo_entries=written["memo_entries"],
    )
    return {"path": str(path), "skipped": skipped, **written}


#: Timeout (seconds) for fetching a snapshot over HTTP (``--snapshot-url``).
SNAPSHOT_FETCH_TIMEOUT = 30.0


def resolve_snapshot_pattern(meta: dict, fingerprint: bytes) -> "Pattern":
    """Recompile the pattern a snapshot entry describes and verify identity.

    Re-derives the fingerprint from the *live* pattern (current parser,
    tree builder, alphabet encoding) and raises ``SnapshotError
    ("fingerprint")`` on any drift — stale snapshots retire themselves.
    """
    from .api import compile as compile_pattern
    from .matching import snapshot as snapshot_format

    if meta.get("key_kind") == "text":
        expr: Regex | str = meta["expr"]
    else:
        expr = parse(meta["expr"], dialect=meta["parse_dialect"])
    pattern = compile_pattern(
        expr,
        dialect=meta["dialect"],
        strategy=meta["strategy"],
        compiled=bool(meta["compiled"]),
    )
    live = dict(meta)
    live["alphabet"] = pattern.tree.alphabet.as_list()
    live["positions"] = len(pattern.tree.positions)
    live["width"] = len(pattern.tree.alphabet)
    if snapshot_format.pattern_fingerprint(live) != fingerprint:
        raise SnapshotError(
            "fingerprint",
            f"snapshot entry for {meta.get('expr')!r} does not match this build",
        )
    return pattern


def load_snapshot_url(url: str) -> dict:
    """Fetch a snapshot over HTTP (``GET /snapshot``) and load it.

    The fleet-bootstrap path: a fresh host downloads the current file
    from a running server into a temporary file, loads it exactly like a
    local snapshot, then unlinks the temp file (the mmap keeps the pages
    alive for every adopted row).  A fetch failure is a counted
    ``"fetch"`` rejection — the host simply boots cold.
    """
    import http.client
    import shutil
    import tempfile
    import urllib.error
    import urllib.request

    try:
        fd, temp_path = tempfile.mkstemp(prefix=".snapshot-fetch-")
        try:
            # fdopen first: it owns the descriptor from here on, so a
            # failed urlopen cannot leak the mkstemp fd (a bootstrap
            # retry loop against a dead fleet must not bleed fds).
            with os.fdopen(fd, "wb") as handle:
                with urllib.request.urlopen(url, timeout=SNAPSHOT_FETCH_TIMEOUT) as response:
                    shutil.copyfileobj(response, handle)
        except BaseException:
            os.unlink(temp_path)
            raise
    except (OSError, urllib.error.URLError, http.client.HTTPException, ValueError) as error:
        # HTTPException covers protocol-level garbage (BadStatusLine from
        # a non-HTTP endpoint or broken proxy) — still just a cold start.
        message = f"cannot fetch snapshot from {url!r}: {error}"
        SNAPSHOT_TELEMETRY.record_reject("fetch", message)
        return {
            "path": url,
            "url": url,
            "format": None,
            "patterns_loaded": 0,
            "rows_loaded": 0,
            "tables_loaded": 0,
            "table_entries_loaded": 0,
            "memos_loaded": 0,
            "memo_entries_loaded": 0,
            "rejected": 1,
            "errors": [message],
        }
    try:
        result = load_snapshot(temp_path)
    finally:
        try:
            # POSIX: the mmap holds the inode; adopted rows stay valid.
            os.unlink(temp_path)
        except OSError:  # pragma: no cover - platform-specific
            pass
    result["url"] = url
    result["path"] = url
    return result


def load_snapshot(path: str) -> dict:
    """Adopt the warm state persisted at *path* (or an ``http(s)://`` URL).

    The file is mmap'd read-only (loading it in a parent before forking
    shares the row pages copy-on-write across every worker); each entry
    re-compiles its pattern from the recorded identity, re-derives the
    fingerprint from the *live* pattern and adopts only on an exact
    match.  All three v2 sections are adopted independently — dense rows
    into the compiled runtimes, star-free tables into the Theorem-4.12
    batch matchers (through each pattern's execution plan), acceptance
    memos onto the patterns — and v1 files (rows only) still load,
    counted under ``format_v1``.  Given an ``http://``/``https://`` URL
    the file is first fetched from a running server's ``GET /snapshot``
    (fleet bootstrap).

    Corrupt or stale input degrades, never breaks: any validation
    failure — at the file level, per section, or per entry — is counted
    in ``repro.stats()["snapshot"]`` under ``snapshot_rejected`` and
    matching simply proceeds with the normal lazy rebuild of that piece.
    Adopted rows keep the underlying mapping alive for as long as they
    are referenced; the snapshot object itself is not retained.  Returns
    ``{"path", "format", "patterns_loaded", "rows_loaded",
    "kernel_ready_loaded", "tables_loaded", "table_entries_loaded",
    "memos_loaded", "memo_entries_loaded", "rejected", "errors"}``;
    ``kernel_ready_loaded`` counts entries that adopted the *whole*
    machine, whose first batch call therefore exports a zero-fallback
    kernel program without ever building a matcher.
    """
    from .matching import snapshot as snapshot_format

    source = os.fspath(path) if not isinstance(path, str) else path
    if isinstance(source, str) and source.startswith(("http://", "https://")):
        return load_snapshot_url(source)

    result: dict = {
        "path": str(path),
        "format": None,
        "patterns_loaded": 0,
        "rows_loaded": 0,
        "kernel_ready_loaded": 0,
        "tables_loaded": 0,
        "table_entries_loaded": 0,
        "memos_loaded": 0,
        "memo_entries_loaded": 0,
        "rejected": 0,
        "errors": [],
    }

    def reject(error: Exception, prefix: str = "") -> None:
        if isinstance(error, SnapshotError):
            reason, message = error.reason, str(error)
        else:
            reason, message = "entry", repr(error)
        SNAPSHOT_TELEMETRY.record_reject(reason, prefix + message)
        result["rejected"] += 1
        result["errors"].append(prefix + message)

    try:
        snapshot = snapshot_format.load(path)
    except SnapshotError as error:
        reject(error)
        return result
    result["format"] = snapshot.format_version
    for tag, section_error in snapshot.section_errors:
        reject(section_error, prefix=f"section {tag}: ")

    # One pattern typically appears in several sections (rows + tables +
    # memos); resolve each fingerprint once per load so the bootstrap
    # window does not re-parse and re-hash the same expression per
    # section (the cost the bench gate puts on the clock).
    resolved: dict[bytes, "Pattern"] = {}

    def resolve(meta: dict, fingerprint: bytes) -> "Pattern":
        pattern = resolved.get(fingerprint)
        if pattern is None:
            pattern = resolve_snapshot_pattern(meta, fingerprint)
            resolved[fingerprint] = pattern
        return pattern

    for entry in snapshot.entries:
        try:
            pattern = resolve(entry.meta, entry.fingerprint)
            result["rows_loaded"] += pattern.runtime.adopt_rows(entry.accepts, entry.rows())
            result["patterns_loaded"] += 1
            if entry.kernel_ready:
                # the whole machine adopted: the first batch call exports
                # a zero-fallback kernel program with the matcher deferred
                result["kernel_ready_loaded"] += 1
        except (SnapshotError, ReproError, KeyError, TypeError, ValueError) as error:
            reject(error)
    for table_entry in snapshot.star_free:
        try:
            pattern = resolve(table_entry.meta, table_entry.fingerprint)
            multi = pattern.plan.star_free()
            if multi is None:
                raise SnapshotError(
                    "star-free",
                    f"{table_entry.meta.get('expr')!r} does not take the star-free "
                    "batch path in this build",
                )
            result["table_entries_loaded"] += multi.adopt_tables(
                table_entry.accepts, table_entry.decisions
            )
            result["tables_loaded"] += 1
        except (SnapshotError, ReproError, KeyError, TypeError, ValueError) as error:
            reject(error)
    for memo_entry in snapshot.memos:
        try:
            pattern = resolve(memo_entry.meta, memo_entry.fingerprint)
            result["memo_entries_loaded"] += pattern.acceptance_memo().adopt(memo_entry.entries)
            result["memos_loaded"] += 1
        except (SnapshotError, ReproError, KeyError, TypeError, ValueError) as error:
            reject(error)
    # No explicit pinning: every adopted row is a memoryview chain rooted
    # at the snapshot's mmap, so the mapping lives exactly as long as
    # some runtime still references a row from it — repeated loads of
    # refreshed snapshots cannot accumulate dead mappings.
    if snapshot.sections:
        # A load is counted (and attributed to its format) only when at
        # least one section validated — a file whose every section was
        # rejected is a cold start, not a successful load, and must not
        # look healthy on a dashboard watching loads/format_v2.
        SNAPSHOT_TELEMETRY.record_load(
            result["patterns_loaded"],
            result["rows_loaded"],
            tables=result["tables_loaded"],
            memo_entries=result["memo_entries_loaded"],
            format_version=snapshot.format_version,
        )
    return result


def materialization() -> dict:
    """Gauge of the matching state currently materialized in this process.

    Walks the compile cache without forcing anything: memoized lazy-DFA
    transitions/acceptances, star-free decision/acceptance table entries
    (read off each pattern's execution plan) and validator memo entries,
    plus a ``total``.  The snapshot auto-refresh policy compares
    ``total`` across time to decide when the on-disk snapshot has gone
    stale.
    """
    patterns = 0
    transitions = 0
    star_free_entries = 0
    memo_entries = 0
    for _key, pattern in PATTERN_CACHE.items():
        patterns += 1
        runtime = pattern._built_runtime()
        if runtime is not None:
            transitions += runtime.materialized()
        plan = pattern._built_plan()
        multi = plan.built_star_free() if plan is not None else None
        if multi is not None:
            table = multi.table_stats()
            star_free_entries += table["decisions"] + table["accepts"]
        memo = pattern._acceptance_memo
        if memo is not None:
            memo_entries += len(memo)
    return {
        "patterns": patterns,
        "transitions": transitions,
        "star_free_entries": star_free_entries,
        "memo_entries": memo_entries,
        "total": transitions + star_free_entries + memo_entries,
    }


def snapshot_stats() -> dict:
    """Process-wide snapshot telemetry (saves, loads, adoption, rejects).

    ``snapshot_rejected`` counts every validation failure — whole files,
    v2 sections and individual entries — with ``rejected_reasons``
    breaking them down by kind (``"checksum"``, ``"version"``,
    ``"fingerprint"``, ``"alphabet-width"``, ``"table-bounds"``,
    ``"memo-entry"``, ``"fetch"``, ...); rejects are the designed
    degradation path, so a non-zero count means cold starts, never wrong
    verdicts.  ``format_v1``/``format_v2`` count successful loads per
    file format.  ``materialized`` is a live gauge of the state the
    *next* :func:`save_snapshot` would persist — the auto-refresh thread
    (:class:`repro.service.prefork.SnapshotRefresher`) watches its
    ``total``.  Merged into the validation service's ``GET /stats``
    under ``"snapshot"``.

    This is the internal, warning-free entry point; the public surface
    is ``repro.stats()["snapshot"]``.
    """
    return {**SNAPSHOT_TELEMETRY.stats(), "materialized": materialization()}


__all__ = [
    "COMPILE_CACHE_SIZE",
    "PATTERN_CACHE",
    "PatternCache",
    "SNAPSHOT_FETCH_TIMEOUT",
    "SNAPSHOT_TELEMETRY",
    "SnapshotTelemetry",
    "compile_cache_stats",
    "load_snapshot",
    "load_snapshot_url",
    "materialization",
    "resolve_snapshot_pattern",
    "save_snapshot",
    "snapshot_meta",
    "snapshot_stats",
]
