"""Longest-match tokenization on top of the batch matching kernel.

A :class:`Lexer` is a list of named rules, each a deterministic regular
expression.  The rules are joined into one union expression — determinism
of the *union* is exactly the classical "no two rules fight over a
prefix-extension" requirement, checked by the paper's linear-time test —
and compiled down to a stride-1 kernel program
(:meth:`repro.matching.runtime.CompiledRuntime.export_kernel_program`)
whose reachable rows are materialized up front.  Scanning is then the
maximal-munch loop of :func:`repro.matching.kernel.longest_match`: one
premultiplied table index per character, a byte probe for "does a rule
accept here", no per-symbol Python beyond the loop itself.

Tagging uses a property of the Glushkov construction: every DFA state of
the compiled runtime *is* a position of the marked expression, and every
position of the union ``r₁ + (r₂ + (...))`` lies in exactly one rule's
subtree.  An accepting state therefore names its rule directly — the tag
table is a bytearray over table offsets holding ``tag + 1`` at accepting
offsets, and a deterministic union guarantees the mapping is
single-valued (two rules accepting the same word in the same state would
already have failed the determinism test).

Rules must not be nullable (a rule matching ``ε`` could never advance the
scanner); overlapping rule sets raise
:class:`~repro.errors.NotDeterministicError` at construction, and input
with no matching prefix raises :class:`~repro.errors.LexError` with the
stuck position.

>>> from repro.lexer import Lexer
>>> lexer = Lexer([
...     ("AB", "ab(ab)*"),
...     ("C", "cc*"),
... ])
>>> [(t.tag, t.text) for t in lexer.tokens("ababcc")]
[('AB', 'abab'), ('C', 'cc')]
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple, Sequence

from .api import Pattern
from .errors import LexError, NotDeterministicError
from .regex.ast import Regex, union
from .regex.parse_tree import NodeKind
from .regex.parser import parse

#: Tags are stored as ``tag + 1`` in a byte table; 0 marks "not accepting".
MAX_RULES = 254


class Token(NamedTuple):
    """One lexeme: the winning rule's *tag*, the matched *text* and its span."""

    tag: str
    text: str
    start: int
    end: int


class Lexer:
    """A maximal-munch scanner compiled from named expression rules.

    *rules* is a sequence of ``(tag, expression)`` pairs; expressions are
    strings in *dialect* (default: the paper's grammar, where ``+`` is
    union) or pre-built :class:`~repro.regex.ast.Regex` ASTs.  *skip*
    names rules whose tokens are matched but not yielded (whitespace,
    comments).  Construction validates the rules, materializes the whole
    reachable machine and builds the flat scan tables; :meth:`tokens` and
    :meth:`tokenize` only ever touch those tables.
    """

    def __init__(
        self,
        rules: Sequence[tuple[str, str | Regex]],
        dialect: str = "paper",
        skip: Iterable[str] = (),
    ):
        if not rules:
            raise LexError("a lexer needs at least one rule")
        if len(rules) > MAX_RULES:
            raise LexError(f"at most {MAX_RULES} rules are supported, got {len(rules)}")
        self.tags: list[str] = []
        parsed: list[Regex] = []
        for tag, expression in rules:
            expr = parse(expression, dialect=dialect) if isinstance(expression, str) else expression
            if expr.nullable():
                raise LexError(
                    f"rule {tag!r} matches the empty word; "
                    "nullable rules would never advance the scanner"
                )
            self.tags.append(tag)
            parsed.append(expr)
        self.skip = frozenset(skip)
        unknown_skips = self.skip - set(self.tags)
        if unknown_skips:
            raise LexError(f"skip names no rule: {sorted(unknown_skips)}")

        self.pattern = Pattern(union(*parsed))
        if not self.pattern.is_deterministic:
            raise NotDeterministicError(
                "lexer rules overlap (their union is not deterministic): "
                + self.pattern.explain(),
                report=self.pattern.report,
            )
        self._tag_by_state = self._assign_tags(len(parsed))
        #: the pattern's execution plan owns the engine: it materializes
        #: the reachable machine, exports the stride-1 scan program and
        #: drives the maximal-munch loop (see ``repro.matching.plan``)
        self._plan = self.pattern.plan
        self._program, self._accept_tags = self._compile()
        runtime = self.pattern.runtime
        self._codes = runtime.alphabet.codes
        self._unknown = self._program.width  # the dead column

    # -- construction -------------------------------------------------------------------
    def _assign_tags(self, rule_count: int) -> dict[int, int]:
        """Map each position index of the union tree to its rule's tag index.

        The union constructor right-nests, so the inner root is a spine of
        ``rule_count - 1`` union nodes whose left subtrees are the rules in
        order (the last rule is the final right child).  Normalisation
        rewrites iteration/optional nodes *inside* a rule but never the
        union spine above non-nullable operands, so the descent is exact.
        """
        tree = self.pattern.tree
        spine = tree.inner_root
        subtrees = []
        for _ in range(rule_count - 1):
            if spine is None or spine.kind is not NodeKind.UNION:
                raise LexError("internal error: the rule union spine was rewritten")
            subtrees.append(spine.left)
            spine = spine.right
        subtrees.append(spine)
        tag_by_state: dict[int, int] = {}
        for tag_index, subtree in enumerate(subtrees):
            for node in subtree.subtree():
                if node.is_position:
                    tag_by_state[node.position_index] = tag_index
        return tag_by_state

    def _compile(self):
        """Build the tag table over the plan's stride-1 scan program.

        :meth:`ExecutionPlan.scan_program` materializes every transition
        and acceptance verdict the scanner can reach (a breadth-first
        sweep), so the exported program contains no ``MISS`` edges on
        live paths and longest-match scanning needs no fallback handling
        at all.
        """
        program, accepting = self._plan.scan_program()
        if program is None:
            raise LexError("the rule set's machine is too large for a kernel table")
        tags = bytearray(len(program.accepts))
        for state in accepting:
            tag_index = self._tag_by_state.get(state)
            if tag_index is None:  # pragma: no cover - determinism forbids this
                raise LexError("internal error: accepting state outside every rule")
            tags[state * program.span] = tag_index + 1
        return program, tags

    # -- scanning -----------------------------------------------------------------------
    def tokens(self, text: str) -> Iterator[Token]:
        """Yield maximal-munch :class:`Token` objects over *text*.

        Characters are the symbols.  Raises :class:`LexError` (with the
        offset) as soon as no rule matches any prefix of the rest — the
        tokens before the stuck position have already been yielded.
        """
        codes = self._codes
        unknown = self._unknown
        encoded = bytearray(len(text)) if self._program.wp <= 256 else None
        if encoded is not None:
            for at, char in enumerate(text):
                encoded[at] = codes.get(char, unknown)
        else:  # pragma: no cover - needs a >254-symbol alphabet
            encoded = [codes.get(char, unknown) for char in text]
        longest_match = self._plan.longest_match
        tags = self._accept_tags
        skip = self.skip
        names = self.tags
        at = 0
        length = len(encoded)
        while at < length:
            end, tag = longest_match(tags, encoded, at)
            if end < 0:
                raise self._stuck_error(text, encoded, at)
            name = names[tag - 1]
            if name not in skip:
                yield Token(name, text[at:end], at, end)
            at = end

    def _stuck_error(self, text: str, encoded, at: int) -> LexError:
        """Diagnose a stuck scan into a :class:`LexError` with expectations.

        Replays from the stuck position to the exact offset where the
        machine died, then reads the expected-next set off the Section 4
        follow sets at that state (the union is deterministic, so the
        follow-based set is exact — the same machinery
        :mod:`repro.diagnostics` uses) and maps the viable next positions
        back to their rules for the candidate token tags.
        """
        runtime = self.pattern.runtime
        state = runtime._start_state
        offset, length = at, len(encoded)
        while offset < length:
            code = encoded[offset]
            if code >= self._program.width:
                break
            target = runtime.step(state, code)
            if target < 0:
                break
            state = target
            offset += 1
        viable = self.pattern.matcher.follow.next_positions(runtime._positions[state])
        expected = tuple(sorted({node.symbol for node in viable}))
        tag_indices = {
            self._tag_by_state[node.position_index]
            for node in viable
            if node.position_index in self._tag_by_state
        }
        rule_tags = tuple(self.tags[index] for index in sorted(tag_indices))
        detail = ""
        if expected:
            shown = ", ".join(repr(symbol) for symbol in expected[:8])
            detail = f"; expected one of [{shown}]"
            if rule_tags:
                detail += f" (rules: {', '.join(rule_tags)})"
            if offset > at:
                detail += f" after {offset - at} matched symbol(s)"
        return LexError(
            f"no rule matches at position {at}: {text[at:at + 12]!r}{detail}",
            position=at,
            expected=expected,
            tags=rule_tags,
        )

    def tokenize(self, text: str) -> list[Token]:
        """:meth:`tokens`, collected into a list."""
        return list(self.tokens(text))

    def stats(self) -> dict:
        """Size gauges of the compiled scanner (rule count, states, table)."""
        return {
            "rules": len(self.tags),
            "states": self._program.states,
            "alphabet": self._program.width,
            "table_entries": len(self._program.table),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Lexer(rules={len(self.tags)}, states={self._program.states})"
