"""Match witnesses and precise failure diagnosis.

Determinism makes diagnosis nearly free: each consumed symbol fixes a
*unique* marked position of the expression (PAPER.md Section 4), so the
run itself is a witness — the sequence of positions visited is the one
and only parse of the consumed prefix.  This module turns that
observation into a result API:

* :class:`MatchResult` — the truthy/falsy object returned by
  ``Pattern.match`` and ``repro.match``.  Construction is O(1); the
  witness and the failure analysis are computed lazily, by replaying the
  word through the same memoized transitions, only when a diagnostic
  field is first accessed.  The verdict path never pays for them.
* :class:`ValidationResult` — the shared validator result: truthy/falsy
  like a bool, list-like over its violations (so existing code that
  iterated the old violation lists keeps working).
* :class:`Diagnosis` / :class:`Repair` — the failure record: stuck
  symbol index, the expected-next set derived from the Section 4
  first/follow sets at the stuck position, and ranked repair hints.
* :func:`diagnose` — the replay engine shared by patterns, validators
  and the lexer.
* :class:`TraceRecorder` — a drop-in replacement for
  ``CompiledRuntime.accepts_encoded`` used as the batch kernel's byte-2
  replay hook: the fallback replay records the state trace it walks
  anyway, so ``match_all(detail="full")`` reuses it as the witness.

Expected-next exactness.  For a deterministic tree the set is read
straight off the follow relation (:meth:`FollowIndex.next_symbols`):
every Glushkov position is accessible *and* co-accessible — the
normalised trees contain no empty-language construct — so
``{symbol(q) : q follows p}`` is exactly the set of symbols extending a
viable prefix.  The k-occurrence fallback runs on a rewritten tree whose
matcher may sit on any one of several copy-equivalent positions; there
the set is obtained by probing the runtime's own transition function
over the alphabet, which is exact by construction of the matcher.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from .errors import DiagnosticsError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .api import Pattern
    from .matching.runtime import CompiledRuntime
    from .regex.parse_tree import ParseTree, TreeNode

#: Cap on insert/replace candidates per repair kind — the hints are a
#: short ranked list for error messages, not an enumeration.
MAX_REPAIR_CANDIDATES = 3


# -- repair hints --------------------------------------------------------------------------


class Repair:
    """One ranked repair candidate for a failed match.

    ``action`` is ``"insert"``, ``"replace"`` or ``"truncate"``;
    ``index`` the word offset the action applies at; ``symbol`` the
    symbol to insert/replace with (``None`` for truncate).
    """

    __slots__ = ("action", "index", "symbol", "description")

    def __init__(self, action: str, index: int, symbol: str | None, description: str):
        self.action = action
        self.index = index
        self.symbol = symbol
        self.description = description

    def to_dict(self) -> dict:
        return {"action": self.action, "index": self.index, "symbol": self.symbol}

    def __eq__(self, other) -> bool:
        if not isinstance(other, Repair):
            return NotImplemented
        return (
            self.action == other.action
            and self.index == other.index
            and self.symbol == other.symbol
        )

    def __hash__(self) -> int:
        return hash((self.action, self.index, self.symbol))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Repair {self.description}>"


class Diagnosis:
    """The full record of one diagnostic replay.

    ``trace`` is the witness: ``trace[i]`` is the position index (into
    ``tree.positions``) after consuming ``word[:i]``; ``trace[0]`` is the
    ``#`` start sentinel.  On failure ``error_index`` is the offset of
    the stuck symbol (``len(word)`` when the word ended too early),
    ``expected`` the sorted expected-next symbols at the stuck position,
    ``can_end`` whether the word could have ended there, and ``reason``
    one of ``"mismatch"``, ``"unknown-symbol"``, ``"unexpected-end"``.
    ``last_accepting`` is the length of the longest accepting prefix
    (``-1`` when not even the empty prefix is accepted).
    """

    __slots__ = (
        "matched",
        "word",
        "tree",
        "trace",
        "error_index",
        "reason",
        "expected",
        "can_end",
        "last_accepting",
        "repairs",
    )

    def __init__(
        self,
        matched: bool,
        word: tuple[str, ...],
        tree: "ParseTree",
        trace: tuple[int, ...],
        error_index: int | None,
        reason: str | None,
        expected: tuple[str, ...],
        can_end: bool,
        last_accepting: int,
        repairs: tuple[Repair, ...],
    ):
        self.matched = matched
        self.word = word
        self.tree = tree
        self.trace = trace
        self.error_index = error_index
        self.reason = reason
        self.expected = expected
        self.can_end = can_end
        self.last_accepting = last_accepting
        self.repairs = repairs

    def positions(self) -> list["TreeNode"]:
        """The witness as parse-tree nodes (``positions[0]`` is ``#``)."""
        nodes = self.tree.positions
        return [nodes[index] for index in self.trace]

    def describe(self) -> str:
        """One-line human-readable account of the replay."""
        if self.matched:
            return f"match ({len(self.word)} symbols)"
        if self.reason == "unexpected-end":
            head = f"unexpected end of input after {len(self.word)} symbols"
        else:
            symbol = self.word[self.error_index]
            kind = "unknown symbol" if self.reason == "unknown-symbol" else "unexpected symbol"
            head = f"{kind} {symbol!r} at index {self.error_index}"
        wanted = " | ".join(repr(symbol) for symbol in self.expected) or "nothing"
        tail = f"; expected {wanted}"
        if self.can_end:
            tail += " or end of input"
        return head + tail


# -- replay engines ------------------------------------------------------------------------


class _CompiledEngine:
    """Replay adapter over :class:`CompiledRuntime` (states are ints)."""

    __slots__ = ("runtime", "exact")

    def __init__(self, runtime: "CompiledRuntime", exact: bool):
        self.runtime = runtime
        self.exact = exact

    @property
    def tree(self):
        return self.runtime.tree

    def start(self) -> int:
        return self.runtime._start_state

    def step(self, state: int, symbol: str) -> int | None:
        runtime = self.runtime
        code = runtime._codes.get(symbol, -1)
        target = runtime.step(state, code)
        return None if target < 0 else target

    def accepts(self, state: int) -> bool:
        return self.runtime.state_accepts(state)

    def index(self, state: int) -> int:
        return state

    def known(self, symbol: str) -> bool:
        return symbol in self.runtime._codes

    def expected(self, state: int) -> tuple[str, ...]:
        runtime = self.runtime
        if self.exact:
            return runtime.matcher.follow.next_symbols(runtime._positions[state])
        # k-occurrence fallback: probe the transition function itself —
        # the stuck state may be one of several copy-equivalent positions
        # of the rewritten tree, and only the matcher resolves that.
        step = runtime.step
        symbols = runtime._symbols
        return tuple(
            sorted(symbols[code] for code in range(runtime._width) if step(state, code) >= 0)
        )


class _DirectEngine:
    """Replay adapter over a direct matcher (states are tree positions)."""

    __slots__ = ("matcher", "exact", "_alphabet")

    def __init__(self, matcher, exact: bool):
        self.matcher = matcher
        self.exact = exact
        self._alphabet = matcher.tree.alphabet

    @property
    def tree(self):
        return self.matcher.tree

    def start(self):
        return self.matcher.tree.start

    def step(self, state, symbol: str):
        following = self.matcher.next_position(state, symbol)
        if following is None or following is self.matcher.tree.end:
            return None
        return following

    def accepts(self, state) -> bool:
        return self.matcher.follow.accepts_at(state)

    def index(self, state) -> int:
        return state.position_index

    def known(self, symbol: str) -> bool:
        return symbol in self._alphabet.codes

    def expected(self, state) -> tuple[str, ...]:
        if self.exact:
            return self.matcher.follow.next_symbols(state)
        step = self.step
        return tuple(sorted(symbol for symbol in self._alphabet.codes if step(state, symbol)))


def _engine_for(pattern: "Pattern"):
    """The replay adapter for *pattern*'s execution plan.

    The plan — not this module — owns the strategy decision: compiled
    routes hand back a :class:`_CompiledEngine` over their runtime,
    the direct route a :class:`_DirectEngine` over the matcher.
    """
    return pattern.plan.replay_for_diagnostics()


def _repair_hints(
    engine,
    state,
    word: tuple[str, ...],
    index: int,
    expected: tuple[str, ...],
    last_accepting: int,
) -> tuple[Repair, ...]:
    """Ranked insert/replace/truncate candidates at the stuck position.

    Replace candidates are the expected-next symbols themselves.  Insert
    candidates are ranked by whether the stuck symbol (or, at end of
    input, acceptance) becomes viable right after the insertion — one
    extra probe of the transition function per candidate.  Truncation is
    offered when some proper prefix was accepting.
    """
    hints: list[Repair] = []
    stuck_symbol = word[index] if index < len(word) else None
    if stuck_symbol is not None:
        for symbol in expected[:MAX_REPAIR_CANDIDATES]:
            hints.append(
                Repair(
                    "replace",
                    index,
                    symbol,
                    f"replace {stuck_symbol!r} at index {index} with {symbol!r}",
                )
            )
    scored: list[tuple[int, str]] = []
    for symbol in expected:
        following = engine.step(state, symbol)
        if following is None:  # pragma: no cover - expected symbols always step
            continue
        if stuck_symbol is None:
            viable = engine.accepts(following)
        else:
            viable = engine.step(following, stuck_symbol) is not None
        scored.append((0 if viable else 1, symbol))
    scored.sort()
    for _rank, symbol in scored[:MAX_REPAIR_CANDIDATES]:
        hints.append(Repair("insert", index, symbol, f"insert {symbol!r} at index {index}"))
    if 0 <= last_accepting < len(word):
        hints.append(
            Repair(
                "truncate",
                last_accepting,
                None,
                f"truncate to the first {last_accepting} symbol(s)",
            )
        )
    return tuple(hints)


def _failure(
    engine,
    state,
    word: tuple[str, ...],
    trace: list[int],
    index: int,
    reason: str,
    last_accepting: int,
) -> Diagnosis:
    expected = engine.expected(state)
    can_end = engine.accepts(state)
    repairs = _repair_hints(engine, state, word, index, expected, last_accepting)
    return Diagnosis(
        matched=False,
        word=word,
        tree=engine.tree,
        trace=tuple(trace),
        error_index=index,
        reason=reason,
        expected=expected,
        can_end=can_end,
        last_accepting=last_accepting,
        repairs=repairs,
    )


def diagnose(pattern: "Pattern", word: Sequence[str], expect: bool | None = None) -> Diagnosis:
    """Replay *word* (already parsed into symbols) and explain the outcome.

    With *expect* set, the replay verdict is checked against it and a
    :class:`~repro.errors.DiagnosticsError` is raised on disagreement —
    the replay walks the very same memoized transitions as the verdict
    path, so a mismatch means an internal invariant broke.
    """
    symbols = tuple(word)
    engine = _engine_for(pattern)
    state = engine.start()
    trace = [engine.index(state)]
    last_accepting = 0 if engine.accepts(state) else -1
    diag: Diagnosis | None = None
    for i, symbol in enumerate(symbols):
        following = engine.step(state, symbol)
        if following is None:
            reason = "mismatch" if engine.known(symbol) else "unknown-symbol"
            diag = _failure(engine, state, symbols, trace, i, reason, last_accepting)
            break
        state = following
        trace.append(engine.index(state))
        if engine.accepts(state):
            last_accepting = i + 1
    if diag is None:
        if engine.accepts(state):
            diag = Diagnosis(
                matched=True,
                word=symbols,
                tree=engine.tree,
                trace=tuple(trace),
                error_index=None,
                reason=None,
                expected=(),
                can_end=True,
                last_accepting=last_accepting,
                repairs=(),
            )
        else:
            diag = _failure(
                engine, state, symbols, trace, len(symbols), "unexpected-end", last_accepting
            )
    if expect is not None and diag.matched is not expect:
        raise DiagnosticsError(
            f"diagnostic replay disagrees with the recorded verdict: "
            f"replay={diag.matched}, recorded={expect} — please report this as a bug"
        )
    return diag


def complete_from_trace(
    pattern: "Pattern", word: Sequence[str], matched: bool, trace: Sequence[int]
) -> Diagnosis:
    """Finish a :class:`Diagnosis` from a trace recorded during matching.

    *trace* is the state-index sequence a :class:`TraceRecorder` walked
    (``trace[0]`` the start state); only the acceptance flags and — on
    failure — the expected-next analysis at the final state remain to be
    computed, so no prefix is replayed twice.
    """
    symbols = tuple(word)
    engine = _engine_for(pattern)
    states = list(trace)
    last_accepting = -1
    for length, state in enumerate(states):
        if engine.accepts(state):
            last_accepting = length
    if matched:
        return Diagnosis(
            matched=True,
            word=symbols,
            tree=engine.tree,
            trace=tuple(states),
            error_index=None,
            reason=None,
            expected=(),
            can_end=True,
            last_accepting=last_accepting,
            repairs=(),
        )
    index = len(states) - 1
    if index >= len(symbols):
        reason = "unexpected-end"
    elif engine.known(symbols[index]):
        reason = "mismatch"
    else:
        reason = "unknown-symbol"
    return _failure(engine, states[-1], symbols, states, index, reason, last_accepting)


# -- kernel byte-2 replay hook -------------------------------------------------------------


class TraceRecorder:
    """Replay hook for the batch kernel's fallback (verdict byte 2) path.

    Callable exactly like ``CompiledRuntime.accepts_encoded`` — takes an
    encoded word, fills missing rows as it steps, returns the boolean
    verdict — but also records the state trace it walked, keyed by the
    word's code tuple.  ``match_all(detail="full")`` passes an instance
    as :func:`repro.matching.kernel.match_corpus`'s ``replay`` hook so
    fallback words get their witness for free; the kernel verdict path
    itself is untouched.
    """

    __slots__ = ("runtime", "traces")

    def __init__(self, runtime: "CompiledRuntime"):
        self.runtime = runtime
        #: code-tuple → (verdict, state-index trace)
        self.traces: dict[tuple[int, ...], tuple[bool, tuple[int, ...]]] = {}

    def __call__(self, codes: Iterable[int]) -> bool:
        runtime = self.runtime
        step = runtime.step
        state = runtime._start_state
        trace = [state]
        verdict = True
        key = tuple(codes)
        for code in key:
            target = step(state, code)
            if target < 0:
                verdict = False
                break
            state = target
            trace.append(state)
        else:
            verdict = runtime.state_accepts(state)
        self.traces[key] = (verdict, tuple(trace))
        return verdict


# -- result objects ------------------------------------------------------------------------


class MatchResult:
    """Truthy/falsy result of a match, with lazy witness and diagnosis.

    Back-compatible with the old ``bool`` return: ``bool(result)`` is the
    verdict, ``result == True`` / ``result == False`` compare the
    verdict, and the hash equals the verdict's hash.  The diagnostic
    fields (:attr:`error_index`, :attr:`expected`, :attr:`can_end`,
    :attr:`reason`, :attr:`trace`, :attr:`repairs`) replay the word on
    first access; the plain verdict never pays for them.
    """

    __slots__ = ("matched", "word", "_pattern", "_diagnosis")

    def __init__(
        self,
        matched: bool,
        word: Sequence[str],
        pattern: "Pattern | None" = None,
        diagnosis: Diagnosis | None = None,
    ):
        self.matched = bool(matched)
        self.word = tuple(word)
        self._pattern = pattern
        self._diagnosis = diagnosis

    # -- bool back-compat ------------------------------------------------------------
    def __bool__(self) -> bool:
        return self.matched

    def __eq__(self, other) -> bool:
        if isinstance(other, bool):
            return self.matched == other
        if isinstance(other, MatchResult):
            return self.matched == other.matched and self.word == other.word
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.matched)

    # -- diagnosis -------------------------------------------------------------------
    @property
    def diagnosis(self) -> Diagnosis:
        """The full replay record (computed on first access)."""
        diag = self._diagnosis
        if diag is None:
            if self._pattern is None:
                raise DiagnosticsError("this MatchResult carries no pattern to diagnose against")
            diag = self._diagnosis = diagnose(self._pattern, self.word, expect=self.matched)
        return diag

    @property
    def error_index(self) -> int | None:
        """Offset of the stuck symbol (``len(word)`` for early end), or ``None``."""
        return self.diagnosis.error_index

    @property
    def expected(self) -> tuple[str, ...]:
        """Sorted expected-next symbols at the stuck position (empty on success)."""
        return self.diagnosis.expected

    @property
    def can_end(self) -> bool:
        """Whether the word could have ended at the stuck position."""
        return self.diagnosis.can_end

    @property
    def reason(self) -> str | None:
        """``"mismatch"``, ``"unknown-symbol"``, ``"unexpected-end"`` or ``None``."""
        return self.diagnosis.reason

    @property
    def trace(self) -> tuple[int, ...]:
        """The witness: position index after each consumed symbol."""
        return self.diagnosis.trace

    @property
    def repairs(self) -> tuple[Repair, ...]:
        """Ranked insert/replace/truncate candidates (empty on success)."""
        return self.diagnosis.repairs

    def positions(self) -> list["TreeNode"]:
        """The witness as parse-tree nodes."""
        return self.diagnosis.positions()

    def describe(self) -> str:
        """One-line human-readable account of the match."""
        return self.diagnosis.describe()

    def to_dict(self) -> dict:
        """Wire-ready rendering (the ``detail=full`` shape)."""
        payload: dict = {"matched": self.matched}
        if not self.matched:
            diag = self.diagnosis
            payload["error_index"] = diag.error_index
            payload["reason"] = diag.reason
            payload["expected"] = list(diag.expected)
            payload["can_end"] = diag.can_end
            payload["repairs"] = [repair.to_dict() for repair in diag.repairs]
        return payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.matched:
            return f"<MatchResult match of {len(self.word)} symbols>"
        return f"<MatchResult no match: {self.describe()}>"


class ValidationResult:
    """Shared validator result: truthy like a bool, list-like over violations.

    ``bool(result)`` is the verdict (valid = truthy); iteration, ``len``
    and indexing expose the violation objects, preserving the shape of
    the old ``list[Violation]`` returns for callers that looped over
    them.
    """

    __slots__ = ("valid", "violations")

    def __init__(self, valid: bool, violations: Sequence = ()):
        self.valid = bool(valid)
        self.violations = tuple(violations)

    def __bool__(self) -> bool:
        return self.valid

    def __len__(self) -> int:
        return len(self.violations)

    def __iter__(self):
        return iter(self.violations)

    def __getitem__(self, item):
        return self.violations[item]

    def __eq__(self, other) -> bool:
        if isinstance(other, bool):
            return self.valid == other
        if isinstance(other, ValidationResult):
            return self.valid == other.valid and self.violations == other.violations
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.valid)

    def describe(self) -> str:
        if self.valid:
            return "valid"
        return "; ".join(violation.describe() for violation in self.violations)

    def to_dict(self) -> dict:
        """Wire-ready rendering (the ``detail=full`` shape)."""
        return {
            "valid": self.valid,
            "violations": [
                violation.to_dict() if hasattr(violation, "to_dict") else str(violation)
                for violation in self.violations
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.valid:
            return "<ValidationResult valid>"
        return f"<ValidationResult {len(self.violations)} violation(s)>"
