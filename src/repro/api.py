"""High-level, user-facing API.

Most downstream users only need three things: *is this content model
deterministic?*, *does this word match it?*, and *validate this document
against this schema*.  :class:`Pattern` bundles the whole pipeline —
parsing, normalisation, the linear-time determinism test and the
automatically dispatched matcher — behind an interface shaped like the
standard library's ``re`` module:

>>> import repro
>>> pattern = repro.compile("(ab+b(b?)a)*")
>>> pattern.is_deterministic
True
>>> bool(pattern.match("abba"))
True
>>> bool(pattern.match(["a", "b"]))  # words may be symbol lists (XML names)
True
>>> repro.is_deterministic("(a*ba+bb)*")
False

``match`` returns a :class:`~repro.diagnostics.MatchResult` — truthy or
falsy exactly like the old ``bool``, but on failure it knows *where* and
*why* (the expected-next set is read off the paper's follow sets at the
stuck position, see :mod:`repro.diagnostics`):

>>> result = pattern.match("abb")
>>> bool(result)
False
>>> result.error_index, result.expected
(3, ('a', 'b'))

Matching runs on the *compiled runtime* by default: the selected Section-4
matcher is lowered on the fly into integer transition rows
(:class:`~repro.matching.runtime.CompiledRuntime`), so repeated matching
against one pattern costs two array/dict probes per symbol instead of a
structure query — hot rows even densify into C-level arrays.
``Pattern.match_all`` runs whole corpora through the batch kernel on top
of those rows (:mod:`repro.matching.kernel`: one flat premultiplied scan
table, dedup-encoded words, several symbols per table probe), and
:func:`compile` keeps an ``re``-style LRU cache so schema workloads that
re-compile the same few content models millions of times (the Li et al.
observation) hit a warm pattern:

>>> pattern = repro.compile("(ab+b(b?)a)*")     # cached by (expr, dialect, ...)
>>> pattern.match_all(["abba", "bba", "bb"])
[True, True, False]
>>> stats = pattern.stats()                     # runtime telemetry, see below
>>> stats["transitions_memoized"] == stats["misses"]
True
>>> sorted(repro.stats()["pattern_cache"])      # process-wide namespace
['evictions', 'hits', 'max_size', 'misses', 'size']
>>> repro.purge()                               # drop the caches

Pass ``compiled=False`` to keep matching on the direct (uncompiled)
matcher path — useful when instrumenting the paper's algorithms, whose
per-symbol work is exactly what the benchmarks measure.

The lower-level building blocks (parse trees, follow indexes, skeletons,
individual matchers) remain available from their subpackages for users
who want to instrument or extend the algorithms.
"""

from __future__ import annotations

import os
import threading
import warnings
from collections import OrderedDict
from typing import Callable, Iterable, Sequence

from .core.determinism import DeterminismReport, check_deterministic
from .core.numeric import NumericDeterminismReport, check_deterministic_numeric
from .diagnostics import MatchResult
from .errors import NotDeterministicError, ReproError
from .matching.base import DeterministicMatcher, MatchRun
from .matching.dispatch import build_matcher
from .matching.runtime import CompiledRun, CompiledRuntime, clear_shared_rows, compile_runtime
from .matching.snapshot import SnapshotError
from .regex.ast import Regex
from .regex.parse_tree import ParseTree, build_parse_tree
from .regex.parser import parse, parse_word
from .regex.printer import to_text
from .regex.properties import classify


class Pattern:
    """A compiled deterministic regular expression.

    Construction parses (if needed), normalises, builds the parse tree and
    runs the determinism test; the matcher itself is built lazily on first
    use so that callers who only want the determinism verdict never pay
    for matcher preprocessing.

    Determinism semantics: for expressions written in the paper's grammar
    (symbols, concatenation, union, ``?``, ``*``) the verdict comes from
    the linear-time test of Theorem 3.5.  Expressions using the DTD
    one-or-more operator ``+`` or XML-Schema numeric bounds ``{i,j}`` are
    judged with the counter-aware analysis of Section 3.3 instead, because
    that is the semantics DTD/XSD validators require: rewriting ``E+`` as
    ``E E*`` preserves the language but can lose determinism when the
    ``+`` sits under an outer iteration (both copies of a position become
    reachable), so the rewritten tree — which is what the matchers run on —
    may be Glushkov-ambiguous even though the content model is fine.  In
    that case matching falls back to the k-occurrence matcher, whose
    transition simulation stays correct because the ambiguous candidates
    are copies of one position with identical continuations.
    """

    def __init__(
        self,
        expr: Regex | str,
        dialect: str = "paper",
        strategy: str = "auto",
        compiled: bool = True,
    ):
        if isinstance(expr, str):
            expr = parse(expr, dialect=dialect)
        self.expression: Regex = expr
        self.tree: ParseTree = build_parse_tree(expr)
        #: verdict of the paper's linear-time test on the normalised (star-only) tree
        self.tree_report: DeterminismReport = check_deterministic(self.tree)
        self._needs_native_semantics = _uses_extended_operators(expr)
        if self._needs_native_semantics:
            self.report: DeterminismReport | NumericDeterminismReport = (
                check_deterministic_numeric(expr)
            )
        else:
            self.report = self.tree_report
        self._strategy = strategy
        self._compiled = compiled
        self._matcher: DeterministicMatcher | None = None
        self._runtime: CompiledRuntime | None = None
        #: ``False`` until probed, then a StarFreeMultiMatcher or ``None``
        self._batch_multi: object = False
        #: lazily built whole-sequence acceptance memo (the XML
        #: validators' per-element cache; see :meth:`acceptance_memo`)
        self._acceptance_memo = None
        #: batch-kernel traffic split for this pattern (see runtime_stats)
        self._kernel_words = 0
        self._kernel_fallback_words = 0
        #: guards lazy construction (matcher, runtime, batch matcher) so
        #: worker threads sharing one cached pattern build each exactly once
        self._init_lock = threading.Lock()

    # -- determinism -----------------------------------------------------------------
    @property
    def is_deterministic(self) -> bool:
        """True when the expression is deterministic (one-unambiguous)."""
        return self.report.deterministic

    def explain(self) -> str:
        """One-line explanation of the determinism verdict."""
        return self.report.describe()

    # -- matching ---------------------------------------------------------------------
    @property
    def matcher(self) -> DeterministicMatcher:
        """The (lazily built) matcher; raises if the expression is not deterministic.

        Construction is locked (double-checked) so worker threads sharing a
        cached pattern agree on one matcher — and therefore one compiled
        runtime and one set of memoized rows.
        """
        matcher = self._matcher
        if matcher is None:
            if not self.report.deterministic:
                raise NotDeterministicError(
                    f"cannot match against a non-deterministic expression: {self.explain()}",
                    report=self.report,
                )
            with self._init_lock:
                matcher = self._matcher
                if matcher is None:
                    if self.tree_report.deterministic:
                        matcher = build_matcher(self.tree, strategy=self._strategy, verify=False)
                    else:
                        # Deterministic under the native +/counter semantics but not
                        # after the language-preserving rewriting: fall back to the
                        # k-occurrence matcher (see the class docstring).
                        from .matching.kore import KOccurrenceMatcher

                        matcher = KOccurrenceMatcher(self.tree, verify=False)
                    # A runtime created before the matcher (the snapshot
                    # path) becomes the matcher's attached runtime, so
                    # compile_runtime(pattern.matcher) keeps returning it.
                    if self._runtime is not None:
                        matcher._compiled_runtime = self._runtime
                    self._matcher = matcher
        return matcher

    @property
    def runtime(self) -> CompiledRuntime:
        """The lazy-DFA runtime for this pattern (built on first use).

        Shared with the matcher (see
        :func:`~repro.matching.runtime.compile_runtime`), so transition rows
        memoized through any entry point benefit every other one.  The
        wrapped matcher itself is *deferred*: a runtime whose rows were
        adopted from a persisted snapshot (:func:`load_snapshot`) answers
        warm traffic without ever paying matcher preprocessing — the
        Section-4 matcher is only built on the first transition or
        acceptance query the adopted rows cannot answer.
        """
        runtime = self._runtime
        if runtime is None:
            if not self.report.deterministic:
                raise NotDeterministicError(
                    f"cannot match against a non-deterministic expression: {self.explain()}",
                    report=self.report,
                )
            with self._init_lock:
                runtime = self._runtime
                if runtime is None:
                    matcher = self._matcher
                    if matcher is not None:
                        runtime = compile_runtime(matcher)
                    else:
                        runtime = CompiledRuntime(
                            tree=self.tree, matcher_factory=lambda: self.matcher
                        )
                    self._runtime = runtime
        return runtime

    def match(self, word: str | Sequence[str]) -> MatchResult:
        """Match *word* (a string or a sequence of symbols) against the language.

        Returns a :class:`~repro.diagnostics.MatchResult`: truthy/falsy
        like the old ``bool`` (and ``== True`` / ``== False`` still
        hold), with lazy diagnostics — ``error_index``, ``expected``,
        ``repairs``, the witness ``trace`` — computed by replaying the
        word only when first accessed.  The verdict itself runs the same
        hot path as before.
        """
        symbols = parse_word(word)
        if self._compiled:
            matched = self.runtime.accepts(symbols)
        else:
            matched = self.matcher.accepts(symbols)
        return MatchResult(matched, symbols, pattern=self)

    def match_all(
        self, words: Iterable[str | Sequence[str]], detail: str = "verdict"
    ) -> list[bool] | list[MatchResult]:
        """Match several words in one batch.

        Each word is parsed and integer-encoded exactly once.  Star-free
        deterministic patterns then run as *one* encoded-corpus pass of the
        multi-word matcher (Theorem 4.12) — the whole batch is answered
        during a single scan of the expression's positions.  Every other
        pattern runs through the batch kernel
        (:mod:`repro.matching.kernel`): the runtime's rows are flattened
        into one premultiplied scan table, the corpus is dedup-encoded
        once, and each distinct word is a branch-free stride over that
        table; words crossing not-yet-materialized state replay per-word
        through the compiled runtime — filling those rows, so repeated
        corpora converge to the all-kernel path.  Tiny batches (and
        machines too large for a kernel table) keep the per-word replay
        driver.  :meth:`describe` reports which path a pattern takes
        under ``"batch_path"``.  With ``compiled=False`` this falls back
        to the direct path — one :meth:`match` per word on the uncompiled
        matcher — which keeps the per-symbol structure queries observable
        (that is what the benchmarks compare against).

        *detail* selects the result shape: ``"verdict"`` (default) keeps
        the historical ``list[bool]`` and the untraced kernel hot path;
        ``"full"`` returns one :class:`~repro.diagnostics.MatchResult`
        per word — kernel fallback (byte-2) words route their replay
        through a :class:`~repro.diagnostics.TraceRecorder`, so the
        witness they were paying for anyway is kept, and every other
        word diagnoses lazily on field access.
        """
        if detail not in ("verdict", "full"):
            raise ValueError(f"unknown detail level {detail!r}: expected 'verdict' or 'full'")
        if detail == "full":
            return self._match_all_full(words)
        if not self._compiled:
            return [bool(self.match(word)) for word in words]
        multi = self._batch_matcher()
        if multi is not None:
            encoded = self.tree.alphabet.encode_many(parse_word(word) for word in words)
            return multi.match_all_encoded(encoded)
        from .matching import kernel

        parsed = [parse_word(word) for word in words]
        runtime = self.runtime
        # Building a composed table costs milliseconds; only route tiny
        # batches through the kernel when a program is already cached.
        if len(parsed) >= kernel.MIN_BATCH or runtime._kernel_programs:
            result = kernel.match_words(runtime, parsed)
            if result is not None:
                verdicts, kernel_words, fallback_words = result
                with self._init_lock:
                    self._kernel_words += kernel_words
                    self._kernel_fallback_words += fallback_words
                return verdicts
        accepts_encoded = runtime.accepts_encoded
        return [accepts_encoded(runtime.encode(word)) for word in parsed]

    def _match_all_full(self, words: Iterable[str | Sequence[str]]) -> list[MatchResult]:
        """The ``detail="full"`` batch path: one lazy MatchResult per word.

        Compiled batches still run the kernel scan; byte-2 fallback words
        replay through a :class:`~repro.diagnostics.TraceRecorder` (the
        kernel's ``replay`` hook), so their recorded traces seed the
        results and no prefix is walked twice.
        """
        from . import diagnostics
        from .matching import kernel

        parsed = [parse_word(word) for word in words]
        if not self._compiled:
            matcher = self.matcher
            return [MatchResult(matcher.accepts(word), word, pattern=self) for word in parsed]
        runtime = self.runtime
        if len(parsed) >= kernel.MIN_BATCH or runtime._kernel_programs:
            recorder = diagnostics.TraceRecorder(runtime)
            result = kernel.match_words(runtime, parsed, replay=recorder)
            if result is not None:
                verdicts, kernel_words, fallback_words = result
                with self._init_lock:
                    self._kernel_words += kernel_words
                    self._kernel_fallback_words += fallback_words
                results = []
                for word, verdict in zip(parsed, verdicts):
                    seed = recorder.traces.get(tuple(runtime.encode(word)))
                    diagnosis = None
                    if seed is not None:
                        diagnosis = diagnostics.complete_from_trace(self, word, seed[0], seed[1])
                    results.append(MatchResult(verdict, word, pattern=self, diagnosis=diagnosis))
                return results
        accepts_encoded = runtime.accepts_encoded
        return [
            MatchResult(accepts_encoded(runtime.encode(word)), word, pattern=self)
            for word in parsed
        ]

    def _batch_matcher(self):
        """The star-free multi-matcher for batch calls, or ``None``.

        Built once (lock-guarded) when the pattern qualifies for the
        Theorem 4.12 path: the rewritten tree must be star-free *and*
        deterministic under the tree semantics — the ``+``/counter fallback
        cases run on the k-occurrence matcher, whose transition simulation
        the multi-matcher does not reproduce.
        """
        multi = self._batch_multi
        if multi is False:
            with self._init_lock:
                multi = self._batch_multi
                if multi is False:
                    qualifies = (
                        self.report.deterministic
                        and self.tree_report.deterministic
                        and not any(node.is_iteration for node in self.tree.nodes)
                    )
                    if qualifies:
                        from .matching.star_free import StarFreeMultiMatcher

                        multi = StarFreeMultiMatcher(self.tree, verify=False)
                    else:
                        multi = None
                    self._batch_multi = multi
        return multi

    def acceptance_memo(self):
        """The pattern's whole-sequence acceptance memo (built on first use).

        A bounded :class:`~repro.xml.memo.AcceptanceMemo` caching
        ``symbol-sequence → verdict`` answers.  The DTD/XSD validators
        consult it per element occurrence, so repeated child sequences —
        the dominant real-schema workload — cost one dict probe.  Living
        on the (cached) pattern, one memo is shared by every validator
        compiling a structurally equal content model, and
        :func:`save_snapshot` persists it keyed by the pattern's
        fingerprint (the ``MEMO`` section of snapshot format v2).
        """
        memo = self._acceptance_memo
        if memo is None:
            with self._init_lock:
                memo = self._acceptance_memo
                if memo is None:
                    from .xml.memo import AcceptanceMemo

                    memo = AcceptanceMemo()
                    self._acceptance_memo = memo
        return memo

    def stream(self) -> MatchRun | CompiledRun:
        """Begin a streaming match (feed symbols one at a time).

        Compiled patterns stream through the runtime (memoizing transitions
        as they go); both run types expose the same ``feed`` / ``feed_all``
        / ``is_accepting`` / ``consumed`` surface.
        """
        if self._compiled:
            return self.runtime.start()
        return self.matcher.start()

    # -- introspection -----------------------------------------------------------------
    @property
    def strategy(self) -> str:
        """Name of the matching algorithm in use (triggers matcher construction)."""
        return self.matcher.name

    def describe(self) -> dict[str, object]:
        """Structural summary of the expression (size, classes, determinism).

        ``"batch_path"`` names the route :meth:`match_all` takes:
        ``"star-free-multi"`` (one encoded-corpus pass, Theorem 4.12),
        ``"compiled-kernel"`` (dedup-encoded corpus strided over the flat
        kernel table, per-word replay as the convergence fallback),
        ``"compiled-runtime"`` (per-word replay only — the machine is too
        large for a kernel table) or ``"per-word"`` (the uncompiled
        fallback).
        """
        from .matching import kernel

        summary = classify(self.expression)
        summary["deterministic"] = self.is_deterministic
        if self.is_deterministic:
            summary["strategy"] = self.strategy
            if not self._compiled:
                summary["batch_path"] = "per-word"
            elif self._batch_matcher() is not None:
                summary["batch_path"] = "star-free-multi"
            elif kernel.eligible(self.tree):
                summary["batch_path"] = "compiled-kernel"
            else:
                summary["batch_path"] = "compiled-runtime"
        else:
            summary["conflict"] = self.explain()
        return summary

    def _built_runtime(self) -> CompiledRuntime | None:
        """The compiled runtime if it already exists, without forcing it.

        Telemetry collection must not change what it measures, so unlike
        :attr:`runtime` this never triggers matcher or runtime
        construction; it returns ``None`` until some match has been run
        on the compiled path.
        """
        runtime = self._runtime
        if runtime is not None:
            return runtime
        matcher = self._matcher
        if matcher is None:
            return None
        return getattr(matcher, "_compiled_runtime", None)

    def _built_batch_matcher(self):
        """The star-free multi-matcher if it already exists, without forcing it.

        The telemetry/persistence counterpart of :meth:`_built_runtime`:
        returns ``None`` until some ``match_all`` call has routed through
        the Theorem-4.12 batch path.
        """
        multi = self._batch_multi
        if multi is False or multi is None:
            return None
        return multi

    def stats(self) -> dict[str, int] | None:
        """Lazy-DFA materialization stats, or ``None`` before any matching.

        On top of :meth:`CompiledRuntime.stats` (which includes
        ``kernel_programs``, the flat tables compiled from the rows), the
        pattern adds its own batch-kernel traffic split:
        ``kernel_words`` answered by table scans versus
        ``kernel_fallback_words`` that replayed per-word while the rows
        were still materializing.  Process-wide telemetry (compile cache,
        snapshots, kernel counters) lives in the module-level
        :func:`stats` namespace.
        """
        runtime = self._built_runtime()
        if runtime is None:
            return None
        stats = runtime.stats()
        stats["kernel_words"] = self._kernel_words
        stats["kernel_fallback_words"] = self._kernel_fallback_words
        return stats

    def runtime_stats(self) -> dict[str, int] | None:
        """Deprecated pre-PR-9 name for :meth:`stats`."""
        warnings.warn(
            "Pattern.runtime_stats() is deprecated; use Pattern.stats()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.stats()

    def cache_stats(self) -> dict[str, dict[str, int] | None]:
        """Deprecated combined view; use :func:`repro.stats` + :meth:`stats`.

        Returns the historical shape — ``"pattern_cache"`` holding the
        compile-cache counters and ``"runtime"`` holding this pattern's
        :meth:`stats` — while warning, so dashboards migrate at their own
        pace.
        """
        warnings.warn(
            "Pattern.cache_stats() is deprecated; use repro.stats()['pattern_cache'] "
            "and Pattern.stats()",
            DeprecationWarning,
            stacklevel=2,
        )
        return {"pattern_cache": _cache_stats(), "runtime": self.stats()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "deterministic" if self.is_deterministic else "non-deterministic"
        return f"Pattern({str(self.expression)!r}, {verdict})"


def _uses_extended_operators(expr: Regex) -> bool:
    """True when the AST contains one-or-more or numeric repetition nodes."""
    from .regex.ast import Plus, Repeat

    return any(isinstance(node, (Plus, Repeat)) for node in expr.iter_nodes())


#: Size of the module-level compile cache.  512 comfortably covers the
#: content models of the largest schemas in the Grijzenhout/Li corpora
#: while bounding memory for adversarial streams of distinct patterns.
COMPILE_CACHE_SIZE = 512


class _PatternCache:
    """A thread-safe LRU of compiled patterns (replaces ``functools.lru_cache``).

    The ``lru_cache`` it replaces had a latent race with :func:`purge`:
    eviction bookkeeping lived in a module global (``_build_count``) that a
    purge reset *before* ``cache_clear()`` ran, so a concurrent miss could
    finish its construction in between, re-insert into the supposedly
    cleared cache, and leave the dense-row registry (cleared separately,
    later) referencing rows the cache no longer knew about — eviction
    counts could even go negative.  Here every mutation — hit bookkeeping,
    the whole miss (count, build, insert, evict) and the purge (entries,
    counters *and* the shared dense-row registry) — happens under one
    re-entrant mutex, so a purge is strictly before or strictly after any
    insertion and the registry clear is atomic with the cache clear.

    Reads stay cheap — and never stall behind a build: the warm path
    probes the dictionary without any lock (a single ``dict.get``, atomic
    under the GIL), counts the hit under a dedicated counter mutex that no
    slow operation ever holds, and bumps the LRU recency only if the
    writer mutex is free right now (``acquire(blocking=False)``) — while a
    miss is constructing a large pattern, concurrent warm hits return
    immediately with at worst slightly stale recency ordering.  A probe
    that races a purge simply returns the still-valid pre-purge pattern to
    its caller without re-inserting it — in-flight work keeps its pattern,
    the cache stays empty.
    """

    __slots__ = ("maxsize", "lock", "_count_lock", "_entries", "hits", "misses", "insertions")

    def __init__(self, maxsize: int):
        self.maxsize = maxsize
        #: writer mutex (entries + eviction); re-entrant so a build that
        #: (now or in the future) compiles a sub-pattern through
        #: :func:`compile` cannot self-deadlock
        self.lock = threading.RLock()
        #: counter mutex: held only for integer bumps and snapshots, never
        #: while building, so hit accounting cannot block on a slow miss.
        #: Lock order where both are taken: ``lock`` before ``_count_lock``.
        self._count_lock = threading.Lock()
        self._entries: "OrderedDict[tuple, Pattern]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: successful constructions since the last purge; a failed build
        #: (syntax error) counts as a miss but inserts nothing, so the
        #: eviction count must be derived from insertions, not misses
        self.insertions = 0

    def _count_hit(self, key: tuple) -> None:
        with self._count_lock:
            self.hits += 1
        if self.lock.acquire(blocking=False):  # recency is best-effort
            try:
                self._entries.move_to_end(key)
            except KeyError:
                pass  # evicted/purged between probe and bump; see class docstring
            finally:
                self.lock.release()

    def get_or_build(self, key: tuple, build: Callable[[], "Pattern"]) -> "Pattern":
        pattern = self._entries.get(key)  # optimistic lock-free probe
        if pattern is not None:
            self._count_hit(key)
            return pattern
        with self.lock:
            pattern = self._entries.get(key)
            if pattern is not None:  # another thread built it while we waited
                with self._count_lock:
                    self.hits += 1
                self._entries.move_to_end(key)
                return pattern
            # Single-writer miss path: construction runs under the writer
            # lock, so concurrent misses for one key build once and purge
            # is atomic with respect to the insertion.
            with self._count_lock:
                self.misses += 1
            pattern = build()
            with self._count_lock:
                self.insertions += 1
            self._entries[key] = pattern
            if len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
            return pattern

    def purge(self) -> None:
        with self.lock:
            with self._count_lock:
                self._entries.clear()
                self.hits = self.misses = self.insertions = 0
            clear_shared_rows()

    def resize(self, maxsize: int) -> int:
        """Change the cache bound; returns the previous bound.

        Shrinking evicts the least-recently-used overflow immediately
        (under the writer lock, atomic with concurrent misses); growing
        just raises the bound.  In-flight matches keep any pattern they
        already hold — eviction only drops the cache's reference.
        """
        if maxsize < 1:
            raise ValueError("cache size must be >= 1")
        with self.lock:
            previous = self.maxsize
            self.maxsize = maxsize
            while len(self._entries) > maxsize:
                self._entries.popitem(last=False)
            return previous

    def items(self) -> list[tuple[tuple, "Pattern"]]:
        """A consistent (key, pattern) snapshot of the live entries."""
        with self.lock:
            return list(self._entries.items())

    def stats(self) -> dict[str, int]:
        with self._count_lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.insertions - len(self._entries),
                "size": len(self._entries),
                "max_size": self.maxsize,
            }


_CACHE = _PatternCache(COMPILE_CACHE_SIZE)


def _compile_cached(expr: Regex | str, dialect: str, strategy: str, compiled: bool) -> Pattern:
    """The memoized constructor behind :func:`compile` (``re._compile`` idiom).

    Both textual expressions and AST nodes are valid keys: the AST classes
    are frozen dataclasses, hence hashable, and a :class:`Pattern` never
    mutates its inputs — its lazily built matcher and runtime are exactly
    the state the cache exists to retain across calls.
    """
    return _CACHE.get_or_build(
        (expr, dialect, strategy, compiled),
        lambda: Pattern(expr, dialect=dialect, strategy=strategy, compiled=compiled),
    )


def compile(  # noqa: A001 - mirrors re.compile
    expr: Regex | str,
    dialect: str = "paper",
    strategy: str = "auto",
    compiled: bool = True,
) -> Pattern:
    """Compile *expr* into a :class:`Pattern` (mirrors ``re.compile``).

    Results are cached (LRU, :data:`COMPILE_CACHE_SIZE` entries) keyed on
    ``(expr, dialect, strategy, compiled)``, so validators that re-compile
    the same content models over and over get back the same warm pattern —
    including its memoized lazy-DFA rows.  Use :func:`purge` to drop the
    cache, or call :class:`Pattern` directly for a private instance.
    """
    return _compile_cached(expr, dialect, strategy, compiled)


def purge() -> None:
    """Clear the compile cache and the dense-row registry (mirrors ``re.purge``).

    Atomic with respect to concurrent compiles: both clears happen under
    the cache lock, so a racing miss lands either entirely before the
    purge (and is dropped with everything else) or entirely after it (a
    fresh post-purge entry) — never a half-cleared state.  Safe against
    in-flight matches too: live patterns and runtimes keep the rows they
    already reference.
    """
    _CACHE.purge()


def resize_compile_cache(maxsize: int) -> int:
    """Re-bound the compile cache at runtime; returns the previous bound.

    :data:`COMPILE_CACHE_SIZE` stays the *boot* default — this call is
    the telemetry-driven override behind it
    (:class:`repro.service.autosize.Autosizer` grows the bound when
    ``cache_stats()["evictions"]`` keeps climbing under live traffic and
    shrinks it back when the working set contracts).  Shrinking evicts
    LRU overflow immediately; verdicts are unaffected either way —
    eviction only costs the next compile of that pattern.

    >>> import repro
    >>> previous = repro.resize_compile_cache(1024)
    >>> repro.stats()["pattern_cache"]["max_size"]
    1024
    >>> _ = repro.resize_compile_cache(previous)
    """
    return _CACHE.resize(maxsize)


def iter_cached_patterns() -> list[tuple[tuple, "Pattern"]]:
    """A consistent ``(cache key, pattern)`` snapshot of the compile cache.

    The telemetry walk behind :func:`snapshot_stats`'s ``materialized``
    gauge and the autosizer's per-pattern memo policy: every live cached
    pattern, without forcing any lazy construction.  Cache keys are
    ``(expr, dialect, strategy, compiled)`` tuples.
    """
    return _CACHE.items()


def _cache_stats() -> dict[str, int]:
    """Hit/miss/eviction counters of the compile cache (tests and telemetry).

    ``evictions`` is derived: every successful construction inserts one
    entry and only LRU eviction removes one (``purge`` resets all
    counters), so evictions = insertions − live entries.  Failed compiles
    (syntax errors) count as misses but not insertions.  The snapshot is
    taken under the cache lock, so the counters are mutually consistent
    even while worker threads compile (``GET /stats`` on the validation
    service reads them mid-traffic).  Sustained growth of the eviction
    number is the signal to raise :data:`COMPILE_CACHE_SIZE` — see
    ``examples/xsd_validation.py`` for reading these under a real
    validation workload.

    This is the internal, warning-free entry point; the public surface
    is ``repro.stats()["pattern_cache"]`` (:func:`cache_stats` is its
    deprecated alias).
    """
    return _CACHE.stats()


def cache_stats() -> dict[str, int]:
    """Deprecated pre-PR-9 name; use ``repro.stats()["pattern_cache"]``."""
    warnings.warn(
        "repro.cache_stats() is deprecated; use repro.stats()['pattern_cache']",
        DeprecationWarning,
        stacklevel=2,
    )
    return _CACHE.stats()


class _SnapshotTelemetry:
    """Process-wide counters behind :func:`snapshot_stats` (thread-safe)."""

    def __init__(self):
        self._lock = threading.Lock()
        self.saves = 0
        self.loads = 0
        self.format_v1 = 0
        self.format_v2 = 0
        self.patterns_saved = 0
        self.rows_saved = 0
        self.tables_saved = 0
        self.memo_entries_saved = 0
        self.patterns_skipped = 0
        self.patterns_loaded = 0
        self.rows_loaded = 0
        self.tables_loaded = 0
        self.memo_entries_loaded = 0
        self.snapshot_rejected = 0
        self.rejected_reasons: dict[str, int] = {}
        self.last_error: str | None = None

    def record_save(
        self,
        patterns: int,
        rows: int,
        skipped: int,
        tables: int = 0,
        memo_entries: int = 0,
    ) -> None:
        with self._lock:
            self.saves += 1
            self.patterns_saved += patterns
            self.rows_saved += rows
            self.patterns_skipped += skipped
            self.tables_saved += tables
            self.memo_entries_saved += memo_entries

    def record_load(
        self,
        patterns: int,
        rows: int,
        tables: int = 0,
        memo_entries: int = 0,
        format_version: int = 2,
    ) -> None:
        with self._lock:
            self.loads += 1
            self.patterns_loaded += patterns
            self.rows_loaded += rows
            self.tables_loaded += tables
            self.memo_entries_loaded += memo_entries
            if format_version == 1:
                self.format_v1 += 1
            else:
                self.format_v2 += 1

    def record_reject(self, reason: str, message: str) -> None:
        with self._lock:
            self.snapshot_rejected += 1
            self.rejected_reasons[reason] = self.rejected_reasons.get(reason, 0) + 1
            self.last_error = message

    def stats(self) -> dict:
        with self._lock:
            return {
                "saves": self.saves,
                "loads": self.loads,
                "format_v1": self.format_v1,
                "format_v2": self.format_v2,
                "patterns_saved": self.patterns_saved,
                "rows_saved": self.rows_saved,
                "tables_saved": self.tables_saved,
                "memo_entries_saved": self.memo_entries_saved,
                "patterns_skipped": self.patterns_skipped,
                "patterns_loaded": self.patterns_loaded,
                "rows_loaded": self.rows_loaded,
                "tables_loaded": self.tables_loaded,
                "memo_entries_loaded": self.memo_entries_loaded,
                "snapshot_rejected": self.snapshot_rejected,
                "rejected_reasons": dict(self.rejected_reasons),
                "last_error": self.last_error,
            }


_SNAPSHOT_TELEMETRY = _SnapshotTelemetry()


def _snapshot_meta(key: tuple, pattern: Pattern) -> dict | None:
    """The reconstruction identity of a cached pattern, or ``None``.

    A snapshot entry must let a *fresh* process rebuild the identical
    cache entry: same cache key, same parse tree, same row encoding.
    String-keyed patterns reuse their original text; AST-keyed ones
    (content models compiled by the DTD/XSD validators) are printed and
    re-parsed, and any expression whose text round-trip does not
    reproduce the exact AST is skipped rather than persisted wrongly.
    """
    expr, dialect, strategy, compiled = key
    if isinstance(expr, str):
        key_kind = "text"
        text = expr
        parse_dialect = dialect
        try:
            if parse(text, dialect=dialect) != pattern.expression:
                return None
        except ReproError:
            return None
    else:
        key_kind = "ast"
        for parse_dialect, printer_dialect in (("paper", "paper"), ("named", "named")):
            try:
                text = to_text(expr, dialect=printer_dialect)
                if parse(text, dialect=parse_dialect) == expr:
                    break
            except (ReproError, ValueError):
                continue
        else:
            return None
    alphabet = pattern.tree.alphabet.as_list()
    return {
        "expr": text,
        "parse_dialect": parse_dialect,
        "key_kind": key_kind,
        "dialect": dialect,
        "strategy": strategy,
        "compiled": bool(compiled),
        "alphabet": alphabet,
        "positions": len(pattern.tree.positions),
        "width": len(alphabet),
    }


def save_snapshot(path: str, complete: bool = True) -> dict:
    """Persist every warm pattern's materialized state to *path* (atomically).

    Walks the compile cache and writes one checksummed format-v2 file
    (:func:`repro.matching.snapshot.write`) with up to three sections per
    the state each pattern holds:

    * dense lazy-DFA rows
      (:meth:`~repro.matching.runtime.CompiledRuntime.export_rows`; with
      *complete*, visited dict rows are densified and all acceptance
      verdicts resolved first, so the snapshot replays with zero matcher
      delegations);
    * the star-free multi-matcher's decision/acceptance tables
      (:meth:`~repro.matching.star_free.StarFreeMultiMatcher.export_tables`);
    * the validators' per-element acceptance memos
      (:meth:`~repro.xml.memo.AcceptanceMemo.export`).

    Patterns with no materialized state in any section — or whose
    expression text does not round-trip — are skipped and counted.
    Returns ``{"path", "patterns", "rows", "pool_rows",
    "star_free_patterns", "decisions", "memo_patterns", "memo_entries",
    "sections", "bytes", "skipped"}``.
    """
    from .matching import snapshot as snapshot_format

    rows_entries = []
    table_entries = []
    memo_entries = []
    skipped = 0
    for key, pattern in _CACHE.items():
        row_export = None
        runtime = pattern._built_runtime()
        if runtime is not None:
            row_export = runtime.export_rows(complete=complete)
            if not row_export["rows"]:
                row_export = None
        table_export = None
        multi = pattern._built_batch_matcher()
        if multi is not None:
            table_export = multi.export_tables()
            if not table_export["accepts"] and not table_export["decisions"]:
                table_export = None
        memo = pattern._acceptance_memo
        memo_export = memo.export() if memo is not None and len(memo) else None
        if row_export is None and table_export is None and memo_export is None:
            skipped += 1
            continue
        meta = _snapshot_meta(key, pattern)
        if meta is None:
            skipped += 1
            continue
        fingerprint = snapshot_format.pattern_fingerprint(meta)
        if row_export is not None:
            rows_entries.append(
                {
                    "fingerprint": fingerprint,
                    "meta": meta,
                    "accepts": row_export["accepts"],
                    "rows": row_export["rows"],
                }
            )
        if table_export is not None:
            table_entries.append(
                {
                    "fingerprint": fingerprint,
                    "meta": meta,
                    "accepts": table_export["accepts"],
                    "decisions": table_export["decisions"],
                }
            )
        if memo_export is not None:
            memo_entries.append(
                {"fingerprint": fingerprint, "meta": meta, "entries": memo_export}
            )
    written = snapshot_format.write(path, rows_entries, star_free=table_entries, memos=memo_entries)
    _SNAPSHOT_TELEMETRY.record_save(
        written["patterns"],
        written["rows"],
        skipped,
        tables=written["star_free_patterns"],
        memo_entries=written["memo_entries"],
    )
    return {"path": str(path), "skipped": skipped, **written}


#: Timeout (seconds) for fetching a snapshot over HTTP (``--snapshot-url``).
SNAPSHOT_FETCH_TIMEOUT = 30.0


def _resolve_snapshot_pattern(meta: dict, fingerprint: bytes) -> Pattern:
    """Recompile the pattern a snapshot entry describes and verify identity.

    Re-derives the fingerprint from the *live* pattern (current parser,
    tree builder, alphabet encoding) and raises ``SnapshotError
    ("fingerprint")`` on any drift — stale snapshots retire themselves.
    """
    from .matching import snapshot as snapshot_format

    if meta.get("key_kind") == "text":
        expr: Regex | str = meta["expr"]
    else:
        expr = parse(meta["expr"], dialect=meta["parse_dialect"])
    pattern = compile(
        expr,
        dialect=meta["dialect"],
        strategy=meta["strategy"],
        compiled=bool(meta["compiled"]),
    )
    live = dict(meta)
    live["alphabet"] = pattern.tree.alphabet.as_list()
    live["positions"] = len(pattern.tree.positions)
    live["width"] = len(pattern.tree.alphabet)
    if snapshot_format.pattern_fingerprint(live) != fingerprint:
        raise SnapshotError(
            "fingerprint",
            f"snapshot entry for {meta.get('expr')!r} does not match this build",
        )
    return pattern


def _load_snapshot_url(url: str) -> dict:
    """Fetch a snapshot over HTTP (``GET /snapshot``) and load it.

    The fleet-bootstrap path: a fresh host downloads the current file
    from a running server into a temporary file, loads it exactly like a
    local snapshot, then unlinks the temp file (the mmap keeps the pages
    alive for every adopted row).  A fetch failure is a counted
    ``"fetch"`` rejection — the host simply boots cold.
    """
    import http.client
    import shutil
    import tempfile
    import urllib.error
    import urllib.request

    try:
        fd, temp_path = tempfile.mkstemp(prefix=".snapshot-fetch-")
        try:
            # fdopen first: it owns the descriptor from here on, so a
            # failed urlopen cannot leak the mkstemp fd (a bootstrap
            # retry loop against a dead fleet must not bleed fds).
            with os.fdopen(fd, "wb") as handle:
                with urllib.request.urlopen(url, timeout=SNAPSHOT_FETCH_TIMEOUT) as response:
                    shutil.copyfileobj(response, handle)
        except BaseException:
            os.unlink(temp_path)
            raise
    except (OSError, urllib.error.URLError, http.client.HTTPException, ValueError) as error:
        # HTTPException covers protocol-level garbage (BadStatusLine from
        # a non-HTTP endpoint or broken proxy) — still just a cold start.
        message = f"cannot fetch snapshot from {url!r}: {error}"
        _SNAPSHOT_TELEMETRY.record_reject("fetch", message)
        return {
            "path": url,
            "url": url,
            "format": None,
            "patterns_loaded": 0,
            "rows_loaded": 0,
            "tables_loaded": 0,
            "table_entries_loaded": 0,
            "memos_loaded": 0,
            "memo_entries_loaded": 0,
            "rejected": 1,
            "errors": [message],
        }
    try:
        result = load_snapshot(temp_path)
    finally:
        try:
            # POSIX: the mmap holds the inode; adopted rows stay valid.
            os.unlink(temp_path)
        except OSError:  # pragma: no cover - platform-specific
            pass
    result["url"] = url
    result["path"] = url
    return result


def load_snapshot(path: str) -> dict:
    """Adopt the warm state persisted at *path* (or an ``http(s)://`` URL).

    The file is mmap'd read-only (loading it in a parent before forking
    shares the row pages copy-on-write across every worker); each entry
    re-compiles its pattern from the recorded identity, re-derives the
    fingerprint from the *live* pattern and adopts only on an exact
    match.  All three v2 sections are adopted independently — dense rows
    into the compiled runtimes, star-free tables into the Theorem-4.12
    batch matchers, acceptance memos onto the patterns — and v1 files
    (rows only) still load, counted under ``format_v1``.  Given an
    ``http://``/``https://`` URL the file is first fetched from a
    running server's ``GET /snapshot`` (fleet bootstrap).

    Corrupt or stale input degrades, never breaks: any validation
    failure — at the file level, per section, or per entry — is counted
    in :func:`snapshot_stats` under ``snapshot_rejected`` and matching
    simply proceeds with the normal lazy rebuild of that piece.  Adopted
    rows keep the underlying mapping alive for as long as they are
    referenced; the snapshot object itself is not retained.  Returns
    ``{"path", "format", "patterns_loaded", "rows_loaded",
    "kernel_ready_loaded", "tables_loaded", "table_entries_loaded",
    "memos_loaded", "memo_entries_loaded", "rejected", "errors"}``;
    ``kernel_ready_loaded`` counts entries that adopted the *whole*
    machine, whose first batch call therefore exports a zero-fallback
    kernel program without ever building a matcher.
    """
    from .matching import snapshot as snapshot_format

    source = os.fspath(path) if not isinstance(path, str) else path
    if isinstance(source, str) and source.startswith(("http://", "https://")):
        return _load_snapshot_url(source)

    result: dict = {
        "path": str(path),
        "format": None,
        "patterns_loaded": 0,
        "rows_loaded": 0,
        "kernel_ready_loaded": 0,
        "tables_loaded": 0,
        "table_entries_loaded": 0,
        "memos_loaded": 0,
        "memo_entries_loaded": 0,
        "rejected": 0,
        "errors": [],
    }

    def reject(error: Exception, prefix: str = "") -> None:
        if isinstance(error, SnapshotError):
            reason, message = error.reason, str(error)
        else:
            reason, message = "entry", repr(error)
        _SNAPSHOT_TELEMETRY.record_reject(reason, prefix + message)
        result["rejected"] += 1
        result["errors"].append(prefix + message)

    try:
        snapshot = snapshot_format.load(path)
    except SnapshotError as error:
        reject(error)
        return result
    result["format"] = snapshot.format_version
    for tag, section_error in snapshot.section_errors:
        reject(section_error, prefix=f"section {tag}: ")

    # One pattern typically appears in several sections (rows + tables +
    # memos); resolve each fingerprint once per load so the bootstrap
    # window does not re-parse and re-hash the same expression per
    # section (the cost the bench gate puts on the clock).
    resolved: dict[bytes, Pattern] = {}

    def resolve(meta: dict, fingerprint: bytes) -> Pattern:
        pattern = resolved.get(fingerprint)
        if pattern is None:
            pattern = _resolve_snapshot_pattern(meta, fingerprint)
            resolved[fingerprint] = pattern
        return pattern

    for entry in snapshot.entries:
        try:
            pattern = resolve(entry.meta, entry.fingerprint)
            result["rows_loaded"] += pattern.runtime.adopt_rows(entry.accepts, entry.rows())
            result["patterns_loaded"] += 1
            if entry.kernel_ready:
                # the whole machine adopted: the first batch call exports
                # a zero-fallback kernel program with the matcher deferred
                result["kernel_ready_loaded"] += 1
        except (SnapshotError, ReproError, KeyError, TypeError, ValueError) as error:
            reject(error)
    for table_entry in snapshot.star_free:
        try:
            pattern = resolve(table_entry.meta, table_entry.fingerprint)
            multi = pattern._batch_matcher()
            if multi is None:
                raise SnapshotError(
                    "star-free",
                    f"{table_entry.meta.get('expr')!r} does not take the star-free "
                    "batch path in this build",
                )
            result["table_entries_loaded"] += multi.adopt_tables(
                table_entry.accepts, table_entry.decisions
            )
            result["tables_loaded"] += 1
        except (SnapshotError, ReproError, KeyError, TypeError, ValueError) as error:
            reject(error)
    for memo_entry in snapshot.memos:
        try:
            pattern = resolve(memo_entry.meta, memo_entry.fingerprint)
            result["memo_entries_loaded"] += pattern.acceptance_memo().adopt(memo_entry.entries)
            result["memos_loaded"] += 1
        except (SnapshotError, ReproError, KeyError, TypeError, ValueError) as error:
            reject(error)
    # No explicit pinning: every adopted row is a memoryview chain rooted
    # at the snapshot's mmap, so the mapping lives exactly as long as
    # some runtime still references a row from it — repeated loads of
    # refreshed snapshots cannot accumulate dead mappings.
    if snapshot.sections:
        # A load is counted (and attributed to its format) only when at
        # least one section validated — a file whose every section was
        # rejected is a cold start, not a successful load, and must not
        # look healthy on a dashboard watching loads/format_v2.
        _SNAPSHOT_TELEMETRY.record_load(
            result["patterns_loaded"],
            result["rows_loaded"],
            tables=result["tables_loaded"],
            memo_entries=result["memo_entries_loaded"],
            format_version=snapshot.format_version,
        )
    return result


def _materialization() -> dict:
    """Gauge of the matching state currently materialized in this process.

    Walks the compile cache without forcing anything: memoized lazy-DFA
    transitions/acceptances, star-free decision/acceptance table entries
    and validator memo entries, plus a ``total``.  The snapshot
    auto-refresh policy compares ``total`` across time to decide when
    the on-disk snapshot has gone stale.
    """
    patterns = 0
    transitions = 0
    star_free_entries = 0
    memo_entries = 0
    for _key, pattern in _CACHE.items():
        patterns += 1
        runtime = pattern._built_runtime()
        if runtime is not None:
            transitions += runtime.materialized()
        multi = pattern._built_batch_matcher()
        if multi is not None:
            table = multi.table_stats()
            star_free_entries += table["decisions"] + table["accepts"]
        memo = pattern._acceptance_memo
        if memo is not None:
            memo_entries += len(memo)
    return {
        "patterns": patterns,
        "transitions": transitions,
        "star_free_entries": star_free_entries,
        "memo_entries": memo_entries,
        "total": transitions + star_free_entries + memo_entries,
    }


def _snapshot_stats() -> dict:
    """Process-wide snapshot telemetry (saves, loads, adoption, rejects).

    ``snapshot_rejected`` counts every validation failure — whole files,
    v2 sections and individual entries — with ``rejected_reasons``
    breaking them down by kind (``"checksum"``, ``"version"``,
    ``"fingerprint"``, ``"alphabet-width"``, ``"table-bounds"``,
    ``"memo-entry"``, ``"fetch"``, ...); rejects are the designed
    degradation path, so a non-zero count means cold starts, never wrong
    verdicts.  ``format_v1``/``format_v2`` count successful loads per
    file format.  ``materialized`` is a live gauge of the state the
    *next* :func:`save_snapshot` would persist — the auto-refresh thread
    (:class:`repro.service.prefork.SnapshotRefresher`) watches its
    ``total``.  Merged into the validation service's ``GET /stats``
    under ``"snapshot"``.

    This is the internal, warning-free entry point; the public surface
    is ``repro.stats()["snapshot"]`` (:func:`snapshot_stats` is its
    deprecated alias).
    """
    return {**_SNAPSHOT_TELEMETRY.stats(), "materialized": _materialization()}


def snapshot_stats() -> dict:
    """Deprecated pre-PR-9 name; use ``repro.stats()["snapshot"]``."""
    warnings.warn(
        "repro.snapshot_stats() is deprecated; use repro.stats()['snapshot']",
        DeprecationWarning,
        stacklevel=2,
    )
    return _snapshot_stats()


def stats() -> dict:
    """The consolidated process-wide telemetry namespace.

    One call, one dict, three sections (each previously its own scattered
    entry point):

    * ``"pattern_cache"`` — compile-cache hit/miss/eviction counters
      (was :func:`cache_stats`);
    * ``"snapshot"`` — snapshot save/load/adoption telemetry plus the
      ``materialized`` gauge (was :func:`snapshot_stats`);
    * ``"kernel"`` — batch-kernel counters and backend selection (was
      ``repro.matching.kernel.kernel_stats``).

    Per-object telemetry keeps living on the objects themselves with the
    same spelling: ``Pattern.stats()``, ``CompiledRuntime.stats()``,
    ``DTDValidator.stats()``, ``XSDSchema.stats()``,
    ``ValidationService.stats()``.
    """
    from .matching import kernel

    return {
        "pattern_cache": _CACHE.stats(),
        "snapshot": _snapshot_stats(),
        "kernel": kernel.stats(),
    }


def match(
    expr: Regex | str, word: str | Sequence[str], dialect: str = "paper"
) -> MatchResult:
    """One-shot matching: compile *expr* (through the cache) and match *word*.

    Returns the same :class:`~repro.diagnostics.MatchResult` as
    :meth:`Pattern.match` — truthy/falsy like the old ``bool``, with lazy
    witness/diagnosis fields.
    """
    return compile(expr, dialect=dialect).match(word)


def is_deterministic(expr: Regex | str, dialect: str = "paper") -> bool:
    """Determinism test on an expression or text.

    Paper-grammar expressions use the linear-time test (Theorem 3.5);
    expressions with ``+`` or ``{i,j}`` use the counter-aware analysis of
    Section 3.3 (see :class:`Pattern` for the rationale).
    """
    if isinstance(expr, str):
        expr = parse(expr, dialect=dialect)
    if _uses_extended_operators(expr):
        return check_deterministic_numeric(expr).deterministic
    return check_deterministic(expr).deterministic


def is_deterministic_numeric(expr: Regex | str) -> bool:
    """Counter-aware determinism test for numeric occurrence indicators (Section 3.3)."""
    return check_deterministic_numeric(expr).deterministic


__all__ = [
    "COMPILE_CACHE_SIZE",
    "CompiledRuntime",
    "DeterminismReport",
    "MatchResult",
    "NumericDeterminismReport",
    "Pattern",
    "cache_stats",
    "check_deterministic",
    "check_deterministic_numeric",
    "compile",
    "is_deterministic",
    "is_deterministic_numeric",
    "iter_cached_patterns",
    "load_snapshot",
    "match",
    "purge",
    "resize_compile_cache",
    "save_snapshot",
    "snapshot_stats",
    "stats",
]
