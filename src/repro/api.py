"""High-level, user-facing API.

Most downstream users only need three things: *is this content model
deterministic?*, *does this word match it?*, and *validate this document
against this schema*.  :class:`Pattern` bundles the whole pipeline —
parsing, normalisation, the linear-time determinism test and the
automatically dispatched matcher — behind an interface shaped like the
standard library's ``re`` module:

>>> import repro
>>> pattern = repro.compile("(ab+b(b?)a)*")
>>> pattern.is_deterministic
True
>>> bool(pattern.match("abba"))
True
>>> bool(pattern.match(["a", "b"]))  # words may be symbol lists (XML names)
True
>>> repro.is_deterministic("(a*ba+bb)*")
False

``match`` returns a :class:`~repro.diagnostics.MatchResult` — truthy or
falsy exactly like the old ``bool``, but on failure it knows *where* and
*why* (the expected-next set is read off the paper's follow sets at the
stuck position, see :mod:`repro.diagnostics`):

>>> result = pattern.match("abb")
>>> bool(result)
False
>>> result.error_index, result.expected
(3, ('a', 'b'))

Matching runs on the *compiled runtime* by default: the selected Section-4
matcher is lowered on the fly into integer transition rows
(:class:`~repro.matching.runtime.CompiledRuntime`), so repeated matching
against one pattern costs two array/dict probes per symbol instead of a
structure query — hot rows even densify into C-level arrays.
``Pattern.match_all`` runs whole corpora through the batch kernel on top
of those rows (:mod:`repro.matching.kernel`: one flat premultiplied scan
table, dedup-encoded words, several symbols per table probe), and
:func:`compile` keeps an ``re``-style LRU cache so schema workloads that
re-compile the same few content models millions of times (the Li et al.
observation) hit a warm pattern:

>>> pattern = repro.compile("(ab+b(b?)a)*")     # cached by (expr, dialect, ...)
>>> pattern.match_all(["abba", "bba", "bb"])
[True, True, False]
>>> stats = pattern.stats()                     # runtime telemetry, see below
>>> stats["transitions_memoized"] == stats["misses"]
True
>>> sorted(repro.stats()["pattern_cache"])      # process-wide namespace
['evictions', 'hits', 'max_size', 'misses', 'size']
>>> repro.purge()                               # drop the caches

How a match picks its engine: every pattern owns one
:class:`~repro.matching.plan.ExecutionPlan`, chosen by the strategy
registry of :data:`repro.matching.plan.PLANNER` — the *same* plan serves
``match``, ``match_all``, streaming, diagnostics replay, the lexer and
the XML validators, and :meth:`Pattern.describe` reports its stable
route name under ``"batch_path"``:

>>> repro.compile("(ab)*").plan.route
'compiled-kernel'
>>> repro.compile("(ab)*").describe()["batch_path"]
'compiled-kernel'

Pass ``compiled=False`` to keep matching on the direct (uncompiled)
matcher path — useful when instrumenting the paper's algorithms, whose
per-symbol work is exactly what the benchmarks measure.

The lower-level building blocks (parse trees, follow indexes, skeletons,
individual matchers) remain available from their subpackages for users
who want to instrument or extend the algorithms.  Process-wide state
(the compile cache, snapshot persistence) lives in :mod:`repro.cache`.
"""

from __future__ import annotations

import threading
import warnings
from typing import Iterable, Sequence

from . import cache as _cache
from .cache import (
    COMPILE_CACHE_SIZE,
    SNAPSHOT_FETCH_TIMEOUT as SNAPSHOT_FETCH_TIMEOUT,  # noqa: PLC0414 - public re-export
    load_snapshot,
    save_snapshot,
)
from .core.determinism import DeterminismReport, check_deterministic
from .core.numeric import NumericDeterminismReport, check_deterministic_numeric
from .diagnostics import MatchResult
from .errors import NotDeterministicError
from .matching.base import DeterministicMatcher, MatchRun
from .matching.dispatch import build_matcher
from .matching.plan import PLANNER, ExecutionPlan
from .matching.runtime import CompiledRun, CompiledRuntime, compile_runtime
from .regex.ast import Regex
from .regex.parse_tree import ParseTree, build_parse_tree
from .regex.parser import parse, parse_word
from .regex.properties import classify


class Pattern:
    """A compiled deterministic regular expression.

    Construction parses (if needed), normalises, builds the parse tree and
    runs the determinism test; the matcher itself is built lazily on first
    use so that callers who only want the determinism verdict never pay
    for matcher preprocessing.

    Determinism semantics: for expressions written in the paper's grammar
    (symbols, concatenation, union, ``?``, ``*``) the verdict comes from
    the linear-time test of Theorem 3.5.  Expressions using the DTD
    one-or-more operator ``+`` or XML-Schema numeric bounds ``{i,j}`` are
    judged with the counter-aware analysis of Section 3.3 instead, because
    that is the semantics DTD/XSD validators require: rewriting ``E+`` as
    ``E E*`` preserves the language but can lose determinism when the
    ``+`` sits under an outer iteration (both copies of a position become
    reachable), so the rewritten tree — which is what the matchers run on —
    may be Glushkov-ambiguous even though the content model is fine.  In
    that case matching falls back to the k-occurrence matcher, whose
    transition simulation stays correct because the ambiguous candidates
    are copies of one position with identical continuations.

    *How* a word (or a batch, or a validator child sequence) actually
    runs is decided exactly once, by the strategy registry of
    :data:`repro.matching.plan.PLANNER`; the resulting
    :class:`~repro.matching.plan.ExecutionPlan` is reachable as
    :attr:`plan` and its stable route name is what :meth:`describe`
    reports under ``"batch_path"``.
    """

    def __init__(
        self,
        expr: Regex | str,
        dialect: str = "paper",
        strategy: str = "auto",
        compiled: bool = True,
    ):
        if isinstance(expr, str):
            expr = parse(expr, dialect=dialect)
        self.expression: Regex = expr
        self.tree: ParseTree = build_parse_tree(expr)
        #: verdict of the paper's linear-time test on the normalised (star-only) tree
        self.tree_report: DeterminismReport = check_deterministic(self.tree)
        self._needs_native_semantics = _uses_extended_operators(expr)
        if self._needs_native_semantics:
            self.report: DeterminismReport | NumericDeterminismReport = (
                check_deterministic_numeric(expr)
            )
        else:
            self.report = self.tree_report
        self._strategy = strategy
        self._compiled = compiled
        self._matcher: DeterministicMatcher | None = None
        self._runtime: CompiledRuntime | None = None
        #: the execution plan (strategy object), planned lazily on first use
        self._plan: ExecutionPlan | None = None
        #: lazily built whole-sequence acceptance memo (the XML
        #: validators' per-element cache; see :meth:`acceptance_memo`)
        self._acceptance_memo = None
        #: batch-kernel traffic split for this pattern (see runtime_stats)
        self._kernel_words = 0
        self._kernel_fallback_words = 0
        #: guards lazy construction (matcher, runtime, plan) so worker
        #: threads sharing one cached pattern build each exactly once
        self._init_lock = threading.Lock()

    # -- determinism -----------------------------------------------------------------
    @property
    def is_deterministic(self) -> bool:
        """True when the expression is deterministic (one-unambiguous)."""
        return self.report.deterministic

    def explain(self) -> str:
        """One-line explanation of the determinism verdict."""
        return self.report.describe()

    # -- matching ---------------------------------------------------------------------
    @property
    def matcher(self) -> DeterministicMatcher:
        """The (lazily built) matcher; raises if the expression is not deterministic.

        Construction is locked (double-checked) so worker threads sharing a
        cached pattern agree on one matcher — and therefore one compiled
        runtime and one set of memoized rows.
        """
        matcher = self._matcher
        if matcher is None:
            if not self.report.deterministic:
                raise NotDeterministicError(
                    f"cannot match against a non-deterministic expression: {self.explain()}",
                    report=self.report,
                )
            with self._init_lock:
                matcher = self._matcher
                if matcher is None:
                    if self.tree_report.deterministic:
                        matcher = build_matcher(self.tree, strategy=self._strategy, verify=False)
                    else:
                        # Deterministic under the native +/counter semantics but not
                        # after the language-preserving rewriting: fall back to the
                        # k-occurrence matcher (see the class docstring).
                        from .matching.kore import KOccurrenceMatcher

                        matcher = KOccurrenceMatcher(self.tree, verify=False)
                    # A runtime created before the matcher (the snapshot
                    # path) becomes the matcher's attached runtime, so
                    # compile_runtime(pattern.matcher) keeps returning it.
                    if self._runtime is not None:
                        matcher._compiled_runtime = self._runtime
                    self._matcher = matcher
        return matcher

    @property
    def runtime(self) -> CompiledRuntime:
        """The lazy-DFA runtime for this pattern (built on first use).

        Shared with the matcher (see
        :func:`~repro.matching.runtime.compile_runtime`), so transition rows
        memoized through any entry point benefit every other one.  The
        wrapped matcher itself is *deferred*: a runtime whose rows were
        adopted from a persisted snapshot (:func:`load_snapshot`) answers
        warm traffic without ever paying matcher preprocessing — the
        Section-4 matcher is only built on the first transition or
        acceptance query the adopted rows cannot answer.
        """
        runtime = self._runtime
        if runtime is None:
            if not self.report.deterministic:
                raise NotDeterministicError(
                    f"cannot match against a non-deterministic expression: {self.explain()}",
                    report=self.report,
                )
            with self._init_lock:
                runtime = self._runtime
                if runtime is None:
                    matcher = self._matcher
                    if matcher is not None:
                        runtime = compile_runtime(matcher)
                    else:
                        runtime = CompiledRuntime(
                            tree=self.tree, matcher_factory=lambda: self.matcher
                        )
                    self._runtime = runtime
        return runtime

    @property
    def plan(self) -> ExecutionPlan:
        """The pattern's execution plan (planned once, on first use).

        The single object that owns *which engine runs this pattern* —
        for single matches, batches, streaming, diagnostics replay, the
        lexer and the XML validators alike.  Chosen by the strategy
        registry of :data:`repro.matching.plan.PLANNER`; raises
        :class:`~repro.errors.NotDeterministicError` when the expression
        is not deterministic.
        """
        plan = self._plan
        if plan is None:
            with self._init_lock:
                plan = self._plan
                if plan is None:
                    plan = PLANNER.plan(self)
                    self._plan = plan
        return plan

    def match(self, word: str | Sequence[str]) -> MatchResult:
        """Match *word* (a string or a sequence of symbols) against the language.

        Returns a :class:`~repro.diagnostics.MatchResult`: truthy/falsy
        like the old ``bool`` (and ``== True`` / ``== False`` still
        hold), with lazy diagnostics — ``error_index``, ``expected``,
        ``repairs``, the witness ``trace`` — computed by replaying the
        word only when first accessed.  The verdict itself runs the same
        hot path as before.
        """
        symbols = parse_word(word)
        return MatchResult(self.plan.match(symbols), symbols, pattern=self)

    def match_all(
        self, words: Iterable[str | Sequence[str]], detail: str = "verdict"
    ) -> list[bool] | list[MatchResult]:
        """Match several words in one batch.

        Each word is parsed and integer-encoded exactly once; the batch
        then runs whatever route the pattern's :attr:`plan` owns.
        Star-free deterministic patterns run as *one* encoded-corpus pass
        of the multi-word matcher (Theorem 4.12) — the whole batch is
        answered during a single scan of the expression's positions.
        Every other compiled pattern runs through the batch kernel
        (:mod:`repro.matching.kernel`): the runtime's rows are flattened
        into one premultiplied scan table, the corpus is dedup-encoded
        once, and each distinct word is a branch-free stride over that
        table; words crossing not-yet-materialized state replay per-word
        through the compiled runtime — filling those rows, so repeated
        corpora converge to the all-kernel path.  Tiny batches (and
        machines too large for a kernel table) keep the per-word replay
        driver.  :meth:`describe` reports which path a pattern takes
        under ``"batch_path"``.  With ``compiled=False`` this falls back
        to the direct path — one :meth:`match` per word on the uncompiled
        matcher — which keeps the per-symbol structure queries observable
        (that is what the benchmarks compare against).

        *detail* selects the result shape: ``"verdict"`` (default) keeps
        the historical ``list[bool]`` and the untraced kernel hot path;
        ``"full"`` returns one :class:`~repro.diagnostics.MatchResult`
        per word — kernel fallback (byte-2) words route their replay
        through a :class:`~repro.diagnostics.TraceRecorder`, so the
        witness they were paying for anyway is kept, and every other
        word diagnoses lazily on field access.
        """
        if detail not in ("verdict", "full"):
            raise ValueError(f"unknown detail level {detail!r}: expected 'verdict' or 'full'")
        parsed = [parse_word(word) for word in words]
        return self.plan.match_all(parsed, detail=detail)

    def acceptance_memo(self):
        """The pattern's whole-sequence acceptance memo (built on first use).

        A bounded :class:`~repro.xml.memo.AcceptanceMemo` caching
        ``symbol-sequence → verdict`` answers.  The DTD/XSD validators
        consult it per element occurrence, so repeated child sequences —
        the dominant real-schema workload — cost one dict probe.  Living
        on the (cached) pattern, one memo is shared by every validator
        compiling a structurally equal content model, and
        :func:`save_snapshot` persists it keyed by the pattern's
        fingerprint (the ``MEMO`` section of snapshot format v2).
        """
        memo = self._acceptance_memo
        if memo is None:
            with self._init_lock:
                memo = self._acceptance_memo
                if memo is None:
                    from .xml.memo import AcceptanceMemo

                    memo = AcceptanceMemo()
                    self._acceptance_memo = memo
        return memo

    def stream(self) -> MatchRun | CompiledRun:
        """Begin a streaming match (feed symbols one at a time).

        Compiled patterns stream through the runtime (memoizing transitions
        as they go); both run types expose the same ``feed`` / ``feed_all``
        / ``is_accepting`` / ``consumed`` surface.
        """
        return self.plan.stream()

    # -- introspection -----------------------------------------------------------------
    @property
    def strategy(self) -> str:
        """Name of the matching algorithm in use (triggers matcher construction)."""
        return self.matcher.name

    def describe(self) -> dict[str, object]:
        """Structural summary of the expression (size, classes, determinism).

        ``"batch_path"`` is the :attr:`plan`'s stable route name — the
        route :meth:`match_all` actually takes, not a reconstruction:
        ``"star-free-multi"`` (one encoded-corpus pass, Theorem 4.12),
        ``"compiled-kernel"`` (dedup-encoded corpus strided over the flat
        kernel table, per-word replay as the convergence fallback),
        ``"compiled-runtime"`` (per-word replay only — the machine is too
        large for a kernel table) or ``"per-word"`` (the uncompiled
        fallback).
        """
        summary = classify(self.expression)
        summary["deterministic"] = self.is_deterministic
        if self.is_deterministic:
            summary["strategy"] = self.strategy
            summary["batch_path"] = self.plan.route
        else:
            summary["conflict"] = self.explain()
        return summary

    def _built_runtime(self) -> CompiledRuntime | None:
        """The compiled runtime if it already exists, without forcing it.

        Telemetry collection must not change what it measures, so unlike
        :attr:`runtime` this never triggers matcher or runtime
        construction; it returns ``None`` until some match has been run
        on the compiled path.
        """
        runtime = self._runtime
        if runtime is not None:
            return runtime
        matcher = self._matcher
        if matcher is None:
            return None
        return getattr(matcher, "_compiled_runtime", None)

    def _built_plan(self) -> ExecutionPlan | None:
        """The execution plan if already planned, without forcing it.

        The telemetry/persistence counterpart of :meth:`_built_runtime`:
        snapshot walks read the star-free tables off the plan's
        ``built_star_free()`` accessor, which stays ``None`` until some
        call has routed through the Theorem-4.12 batch path.
        """
        return self._plan

    def _record_kernel_traffic(self, kernel_words: int, fallback_words: int) -> None:
        """Book one kernel batch's traffic split (called by the plan)."""
        with self._init_lock:
            self._kernel_words += kernel_words
            self._kernel_fallback_words += fallback_words

    def stats(self) -> dict[str, int] | None:
        """Lazy-DFA materialization stats, or ``None`` before any matching.

        On top of :meth:`CompiledRuntime.stats` (which includes
        ``kernel_programs``, the flat tables compiled from the rows), the
        pattern adds its own batch-kernel traffic split:
        ``kernel_words`` answered by table scans versus
        ``kernel_fallback_words`` that replayed per-word while the rows
        were still materializing.  Process-wide telemetry (compile cache,
        snapshots, kernel counters) lives in the module-level
        :func:`stats` namespace.
        """
        runtime = self._built_runtime()
        if runtime is None:
            return None
        stats = runtime.stats()
        stats["kernel_words"] = self._kernel_words
        stats["kernel_fallback_words"] = self._kernel_fallback_words
        return stats

    def runtime_stats(self) -> dict[str, int] | None:
        """Deprecated pre-PR-9 name for :meth:`stats`."""
        warnings.warn(
            "Pattern.runtime_stats() is deprecated; use Pattern.stats()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.stats()

    def cache_stats(self) -> dict[str, dict[str, int] | None]:
        """Deprecated combined view; use :func:`repro.stats` + :meth:`stats`.

        Returns the historical shape — ``"pattern_cache"`` holding the
        compile-cache counters and ``"runtime"`` holding this pattern's
        :meth:`stats` — while warning, so dashboards migrate at their own
        pace.
        """
        warnings.warn(
            "Pattern.cache_stats() is deprecated; use repro.stats()['pattern_cache'] "
            "and Pattern.stats()",
            DeprecationWarning,
            stacklevel=2,
        )
        return {"pattern_cache": _cache.compile_cache_stats(), "runtime": self.stats()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "deterministic" if self.is_deterministic else "non-deterministic"
        return f"Pattern({str(self.expression)!r}, {verdict})"


def _uses_extended_operators(expr: Regex) -> bool:
    """True when the AST contains one-or-more or numeric repetition nodes."""
    from .regex.ast import Plus, Repeat

    return any(isinstance(node, (Plus, Repeat)) for node in expr.iter_nodes())


def _compile_cached(expr: Regex | str, dialect: str, strategy: str, compiled: bool) -> Pattern:
    """The memoized constructor behind :func:`compile` (``re._compile`` idiom).

    Both textual expressions and AST nodes are valid keys: the AST classes
    are frozen dataclasses, hence hashable, and a :class:`Pattern` never
    mutates its inputs — its lazily built matcher and runtime are exactly
    the state the cache exists to retain across calls.
    """
    return _cache.PATTERN_CACHE.get_or_build(
        (expr, dialect, strategy, compiled),
        lambda: Pattern(expr, dialect=dialect, strategy=strategy, compiled=compiled),
    )


def compile(  # noqa: A001 - mirrors re.compile
    expr: Regex | str,
    dialect: str = "paper",
    strategy: str = "auto",
    compiled: bool = True,
) -> Pattern:
    """Compile *expr* into a :class:`Pattern` (mirrors ``re.compile``).

    Results are cached (LRU, :data:`COMPILE_CACHE_SIZE` entries) keyed on
    ``(expr, dialect, strategy, compiled)``, so validators that re-compile
    the same content models over and over get back the same warm pattern —
    including its memoized lazy-DFA rows.  Use :func:`purge` to drop the
    cache, or call :class:`Pattern` directly for a private instance.
    """
    return _compile_cached(expr, dialect, strategy, compiled)


def purge() -> None:
    """Clear the compile cache and the dense-row registry (mirrors ``re.purge``).

    Atomic with respect to concurrent compiles: both clears happen under
    the cache lock, so a racing miss lands either entirely before the
    purge (and is dropped with everything else) or entirely after it (a
    fresh post-purge entry) — never a half-cleared state.  Safe against
    in-flight matches too: live patterns and runtimes keep the rows they
    already reference.
    """
    _cache.PATTERN_CACHE.purge()


def resize_compile_cache(maxsize: int) -> int:
    """Re-bound the compile cache at runtime; returns the previous bound.

    :data:`COMPILE_CACHE_SIZE` stays the *boot* default — this call is
    the telemetry-driven override behind it
    (:class:`repro.service.autosize.Autosizer` grows the bound when
    ``cache_stats()["evictions"]`` keeps climbing under live traffic and
    shrinks it back when the working set contracts).  Shrinking evicts
    LRU overflow immediately; verdicts are unaffected either way —
    eviction only costs the next compile of that pattern.

    >>> import repro
    >>> previous = repro.resize_compile_cache(1024)
    >>> repro.stats()["pattern_cache"]["max_size"]
    1024
    >>> _ = repro.resize_compile_cache(previous)
    """
    return _cache.PATTERN_CACHE.resize(maxsize)


def iter_cached_patterns() -> list[tuple[tuple, "Pattern"]]:
    """A consistent ``(cache key, pattern)`` snapshot of the compile cache.

    The telemetry walk behind :func:`snapshot_stats`'s ``materialized``
    gauge and the autosizer's per-pattern memo policy: every live cached
    pattern, without forcing any lazy construction.  Cache keys are
    ``(expr, dialect, strategy, compiled)`` tuples.
    """
    return _cache.PATTERN_CACHE.items()


def cache_stats() -> dict[str, int]:
    """Deprecated pre-PR-9 name; use ``repro.stats()["pattern_cache"]``."""
    warnings.warn(
        "repro.cache_stats() is deprecated; use repro.stats()['pattern_cache']",
        DeprecationWarning,
        stacklevel=2,
    )
    return _cache.PATTERN_CACHE.stats()


def snapshot_stats() -> dict:
    """Deprecated pre-PR-9 name; use ``repro.stats()["snapshot"]``."""
    warnings.warn(
        "repro.snapshot_stats() is deprecated; use repro.stats()['snapshot']",
        DeprecationWarning,
        stacklevel=2,
    )
    return _cache.snapshot_stats()


def stats() -> dict:
    """The consolidated process-wide telemetry namespace.

    One call, one dict, three sections (each previously its own scattered
    entry point):

    * ``"pattern_cache"`` — compile-cache hit/miss/eviction counters
      (was :func:`cache_stats`);
    * ``"snapshot"`` — snapshot save/load/adoption telemetry plus the
      ``materialized`` gauge (was :func:`snapshot_stats`);
    * ``"kernel"`` — batch-kernel counters and backend selection (was
      ``repro.matching.kernel.kernel_stats``).

    Per-object telemetry keeps living on the objects themselves with the
    same spelling: ``Pattern.stats()``, ``CompiledRuntime.stats()``,
    ``DTDValidator.stats()``, ``XSDSchema.stats()``,
    ``ValidationService.stats()``.
    """
    from .matching import kernel

    return {
        "pattern_cache": _cache.PATTERN_CACHE.stats(),
        "snapshot": _cache.snapshot_stats(),
        "kernel": kernel.stats(),
    }


def match(
    expr: Regex | str, word: str | Sequence[str], dialect: str = "paper"
) -> MatchResult:
    """One-shot matching: compile *expr* (through the cache) and match *word*.

    Returns the same :class:`~repro.diagnostics.MatchResult` as
    :meth:`Pattern.match` — truthy/falsy like the old ``bool``, with lazy
    witness/diagnosis fields.
    """
    return compile(expr, dialect=dialect).match(word)


def is_deterministic(expr: Regex | str, dialect: str = "paper") -> bool:
    """Determinism test on an expression or text.

    Paper-grammar expressions use the linear-time test (Theorem 3.5);
    expressions with ``+`` or ``{i,j}`` use the counter-aware analysis of
    Section 3.3 (see :class:`Pattern` for the rationale).
    """
    if isinstance(expr, str):
        expr = parse(expr, dialect=dialect)
    if _uses_extended_operators(expr):
        return check_deterministic_numeric(expr).deterministic
    return check_deterministic(expr).deterministic


def is_deterministic_numeric(expr: Regex | str) -> bool:
    """Counter-aware determinism test for numeric occurrence indicators (Section 3.3)."""
    return check_deterministic_numeric(expr).deterministic


#: Former ``repro.api`` private names that now live in :mod:`repro.cache`;
#: module ``__getattr__`` keeps them importable behind a DeprecationWarning.
_MOVED_TO_CACHE = {
    "_PatternCache": "PatternCache",
    "_CACHE": "PATTERN_CACHE",
    "_cache_stats": "compile_cache_stats",
    "_SnapshotTelemetry": "SnapshotTelemetry",
    "_SNAPSHOT_TELEMETRY": "SNAPSHOT_TELEMETRY",
    "_snapshot_meta": "snapshot_meta",
    "_snapshot_stats": "snapshot_stats",
    "_materialization": "materialization",
    "_resolve_snapshot_pattern": "resolve_snapshot_pattern",
    "_load_snapshot_url": "load_snapshot_url",
}


def __getattr__(name: str):
    target = _MOVED_TO_CACHE.get(name)
    if target is not None:
        warnings.warn(
            f"repro.api.{name} moved to repro.cache.{target}; import it from repro.cache",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(_cache, target)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "COMPILE_CACHE_SIZE",
    "CompiledRuntime",
    "DeterminismReport",
    "MatchResult",
    "NumericDeterminismReport",
    "Pattern",
    "cache_stats",
    "check_deterministic",
    "check_deterministic_numeric",
    "compile",
    "is_deterministic",
    "is_deterministic_numeric",
    "iter_cached_patterns",
    "load_snapshot",
    "match",
    "purge",
    "resize_compile_cache",
    "save_snapshot",
    "snapshot_stats",
    "stats",
]
