"""Legacy setup shim.

The execution environment is fully offline and ships setuptools without the
``wheel`` package, so PEP 660 editable installs (which build a wheel) are not
available.  Keeping a classic ``setup.py`` and omitting the ``[build-system]``
table lets ``pip install -e .`` fall back to the legacy develop install.
All metadata lives in ``pyproject.toml``.

As a best-effort extra, installing also tries to compile the optional batch
matching kernel (``src/repro/matching/_kernel.c``) with whatever C compiler
the host has.  The kernel loads through ``ctypes`` at import time and the
pure-Python scan path is always available, so any failure here — no compiler,
sandboxed subprocesses, read-only source tree — is silently ignored.
"""

import os
import subprocess
import sys

from setuptools import setup


def _try_build_kernel() -> None:
    source_root = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
    environment = dict(os.environ)
    environment["PYTHONPATH"] = source_root + (
        os.pathsep + environment["PYTHONPATH"] if environment.get("PYTHONPATH") else ""
    )
    try:
        subprocess.run(
            [sys.executable, "-m", "repro.matching.kernel", "--build-native"],
            env=environment,
            timeout=180,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            check=False,
        )
    except Exception:
        pass  # optional acceleration only; the pure path is the oracle


_try_build_kernel()
setup()
