"""Legacy setup shim.

The execution environment is fully offline and ships setuptools without the
``wheel`` package, so PEP 660 editable installs (which build a wheel) are not
available.  Keeping a classic ``setup.py`` and omitting the ``[build-system]``
table lets ``pip install -e .`` fall back to the legacy develop install.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
