"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import random

import pytest

from repro.regex import build_parse_tree, parse
from repro.regex.generators import (
    bounded_occurrence,
    chare,
    deep_alternation,
    mixed_content,
    paper_example_e0,
    paper_example_e1,
    paper_example_e2,
    star_free_chain,
)
from repro.regex.language import LanguageOracle


@pytest.fixture
def rng() -> random.Random:
    """A deterministic random generator (fresh per test)."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def paper_e0():
    """Figure 1's expression ``(c?((ab*)(a?c)))*(ba)``."""
    return paper_example_e0()


@pytest.fixture
def paper_e1():
    """Example 2.1's deterministic expression ``(ab+b(b?)a)*``."""
    return paper_example_e1()


@pytest.fixture
def paper_e2():
    """Example 2.1's non-deterministic expression ``(a*ba+bb)*``."""
    return paper_example_e2()


def deterministic_family_samples() -> list:
    """A representative set of deterministic expressions from every workload family."""
    return [
        parse("a"),
        parse("(ab)*"),
        parse("a?bc*"),
        paper_example_e0(),
        paper_example_e1(),
        mixed_content(6),
        chare(4),
        deep_alternation(4),
        bounded_occurrence(2, 3),
        star_free_chain(5),
    ]


def oracle_for(expr):
    """Build the set-based oracle for an AST or text expression."""
    return LanguageOracle(build_parse_tree(expr))


# Exported for use by test modules through `from tests.conftest import ...` is
# not needed: pytest injects fixtures, and the plain helpers are imported via
# conftest's module path implicitly by pytest's assertion rewriting of tests.
