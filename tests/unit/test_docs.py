"""Documentation is executable — and must stay that way.

The CI docs job runs the same three surfaces this module covers in
tier-1, so documentation rot fails fast everywhere:

* the README quickstart (a text-file doctest);
* the doctests embedded in the public-API module docstrings
  (``repro.api``, ``repro.matching.runtime``, ``repro.xml.xsd``);
* every script in ``examples/`` (executed as a subprocess, the way a
  reader would run it).
"""

from __future__ import annotations

import doctest
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro.api
import repro.matching.runtime
import repro.service.core
import repro.xml.xsd

ROOT = Path(__file__).resolve().parents[2]

EXAMPLES = sorted((ROOT / "examples").glob("*.py"))


def test_readme_doctests_pass():
    results = doctest.testfile(str(ROOT / "README.md"), module_relative=False)
    assert results.attempted > 0, "README lost its doctest examples"
    assert results.failed == 0


@pytest.mark.parametrize(
    "module",
    [repro.api, repro.matching.runtime, repro.xml.xsd, repro.service.core],
    ids=lambda module: module.__name__,
)
def test_module_docstring_examples_pass(module):
    results = doctest.testmod(module)
    assert results.attempted > 0, f"{module.__name__} lost its doctest examples"
    assert results.failed == 0


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.name)
def test_example_scripts_run(script: Path):
    environment = dict(os.environ)
    environment["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + environment.get(
        "PYTHONPATH", ""
    )
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
        env=environment,
        cwd=ROOT,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), f"{script.name} produced no output"


def test_examples_directory_is_covered():
    assert len(EXAMPLES) >= 5  # quickstart, dtd, xsd, linting, streaming
