"""Unit tests for the linear-time determinism test (Theorem 3.5)."""

import pytest

from repro.automata.glushkov import GlushkovAutomaton
from repro.core.determinism import DeterminismChecker, check_deterministic, is_deterministic
from repro.core.follow import FollowIndex
from repro.regex.parse_tree import build_parse_tree
from repro.regex.parser import parse


class TestPaperExamples:
    def test_e1_is_deterministic(self):
        assert is_deterministic("(ab+b(b?)a)*")

    def test_e2_is_not_deterministic(self):
        assert not is_deterministic("(a*ba+bb)*")

    def test_intro_example_ab_star_b(self):
        assert not is_deterministic("ab*b")

    def test_figure1_expression_is_deterministic(self):
        assert is_deterministic("(c?((ab*)(a?c)))*(ba)")

    def test_mixed_content_is_deterministic(self):
        from repro.regex.generators import mixed_content

        assert is_deterministic(mixed_content(40))

    def test_mixed_content_with_duplicate_is_not(self):
        assert not is_deterministic("(a+b+a)*")

    # The Section 3.2 walk-through of combinations (1) and (2):
    def test_combination_one_nullable_right_child(self):
        assert not is_deterministic("(c(b?a?))a")

    def test_combination_one_variant_with_swapped_optionals(self):
        assert not is_deterministic("(c(a?b?))a")

    def test_combination_one_variant_with_star(self):
        assert not is_deterministic("(c(b?a)*)a")

    def test_combination_one_non_nullable_right_child_is_fine(self):
        assert is_deterministic("(c(b?a))a")

    def test_combination_two_star_loop(self):
        assert is_deterministic("(a(b?a))*")
        assert not is_deterministic("(a(b?a?))*")


class TestOneOREs:
    def test_one_ore_expressions_are_always_deterministic(self, rng):
        """1-OREs are always deterministic under the native DTD semantics of '+';
        the API-level check applies that semantics (the tree-level check judges
        the E E* rewriting instead, which can differ — see Pattern's docstring)."""
        import repro
        from repro.regex.generators import random_one_ore

        for _ in range(50):
            assert repro.is_deterministic(random_one_ore(rng, rng.randint(1, 15)))


class TestReports:
    def test_report_for_deterministic_expression(self):
        report = check_deterministic("(ab)*c")
        assert report.deterministic
        assert bool(report)
        assert report.conflict is None
        assert report.describe() == "deterministic"

    def test_report_conflict_is_a_real_conflict(self):
        tree = build_parse_tree("(a*ba+bb)*")
        report = check_deterministic(tree)
        assert not report.deterministic
        conflict = report.conflict
        assert conflict is not None
        assert conflict.first.symbol == conflict.second.symbol == conflict.symbol
        assert conflict.first is not conflict.second
        follow = FollowIndex(tree)
        assert follow.follows(conflict.source, conflict.first)
        assert follow.follows(conflict.source, conflict.second)

    def test_report_reason_is_one_of_the_rules(self, rng):
        from repro.regex.generators import random_expression

        reasons = set()
        for _ in range(300):
            expr = random_expression(rng, rng.randint(1, 10))
            report = check_deterministic(expr)
            if not report.deterministic:
                assert report.reason in {"P1", "P2", "overflow", "witness-next", "witness-first"}
                reasons.add(report.reason)
        assert "P1" in reasons  # the most common rule should certainly appear

    def test_describe_mentions_positions(self):
        report = check_deterministic("ab*b")
        assert "non-deterministic" in report.describe()
        assert "'b'" in report.describe()

    def test_checker_reuses_cached_report(self):
        checker = DeterminismChecker(build_parse_tree("(ab)*"))
        assert checker.report() is checker.report()
        assert checker.is_deterministic()


class TestAgainstGlushkovBaseline:
    def test_agreement_on_random_expressions(self, rng):
        from repro.regex.generators import random_expression

        for _ in range(400):
            expr = random_expression(rng, rng.randint(1, 12))
            tree = build_parse_tree(expr)
            baseline = GlushkovAutomaton(tree).is_deterministic()
            assert check_deterministic(tree).deterministic == baseline, str(expr)

    def test_agreement_on_dtd_like_corpus(self, rng):
        from repro.regex.generators import dtd_corpus

        for expr in dtd_corpus(rng, 150):
            tree = build_parse_tree(expr)
            glushkov_verdict = GlushkovAutomaton(tree).is_deterministic()
            assert check_deterministic(tree).deterministic == glushkov_verdict

    def test_agreement_on_families(self):
        from tests.conftest import deterministic_family_samples

        for expr in deterministic_family_samples():
            tree = build_parse_tree(expr)
            assert check_deterministic(tree).deterministic
            assert GlushkovAutomaton(tree).is_deterministic()


class TestInputKinds:
    def test_accepts_text_ast_and_tree(self):
        assert is_deterministic("ab")
        assert is_deterministic(parse("ab"))
        assert is_deterministic(build_parse_tree("ab"))

    def test_empty_language_of_epsilon_only(self):
        from repro.regex.ast import Epsilon

        assert is_deterministic(Epsilon())

    def test_single_symbol(self):
        assert is_deterministic("a")

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("a?a", False),          # both a's follow the start
            ("a*a", False),
            ("(a?b)*a", False),
            ("(ab?)*", True),
            ("(a+b)(a+c)", True),
            ("(a+b)?(a+c)", False),
            ("b?(ab)*a?", False),  # a2 and a4 are both first positions
            ("b(ab)*c?", True),
            ("((a+b)c)*a", False),
            ("((a+b)c)*d", True),
        ],
    )
    def test_handpicked_cases(self, text, expected):
        assert is_deterministic(text) is expected
