"""Unit tests for the regular-expression AST."""

import pytest

from repro.errors import InvalidExpressionError
from repro.regex.ast import (
    Concat,
    Epsilon,
    Optional,
    Plus,
    Repeat,
    Star,
    Sym,
    Union,
    concat,
    literal,
    optional,
    plus,
    repeat,
    star,
    sym,
    syms,
    union,
)


class TestConstruction:
    def test_symbol_requires_non_empty_name(self):
        with pytest.raises(InvalidExpressionError):
            Sym("")

    def test_sym_helper(self):
        assert sym("a") == Sym("a")

    def test_syms_helper(self):
        assert syms("a", "b") == [Sym("a"), Sym("b")]

    def test_concat_of_two(self):
        assert concat(sym("a"), sym("b")) == Concat(Sym("a"), Sym("b"))

    def test_concat_is_right_nested(self):
        result = concat(sym("a"), sym("b"), sym("c"))
        assert result == Concat(Sym("a"), Concat(Sym("b"), Sym("c")))

    def test_concat_of_nothing_is_epsilon(self):
        assert concat() == Epsilon()

    def test_concat_drops_epsilon_operands(self):
        assert concat(Epsilon(), sym("a"), Epsilon()) == Sym("a")

    def test_union_requires_an_operand(self):
        with pytest.raises(InvalidExpressionError):
            union()

    def test_union_is_right_nested(self):
        result = union(sym("a"), sym("b"), sym("c"))
        assert result == Union(Sym("a"), Union(Sym("b"), Sym("c")))

    def test_literal_builds_character_concatenation(self):
        assert literal("ab") == Concat(Sym("a"), Sym("b"))

    def test_literal_of_empty_string_is_epsilon(self):
        assert literal("") == Epsilon()

    def test_repeat_rejects_inverted_bounds(self):
        with pytest.raises(InvalidExpressionError):
            repeat(sym("a"), 3, 2)

    def test_repeat_rejects_negative_bounds(self):
        with pytest.raises(InvalidExpressionError):
            Repeat(Sym("a"), -1, 2)

    def test_operator_sugar(self):
        assert (sym("a") | sym("b")) == Union(Sym("a"), Sym("b"))
        assert (sym("a") >> sym("b")) == Concat(Sym("a"), Sym("b"))
        assert sym("a").star() == Star(Sym("a"))
        assert sym("a").plus() == Plus(Sym("a"))
        assert sym("a").optional() == Optional(Sym("a"))


class TestNullability:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            (Sym("a"), False),
            (Epsilon(), True),
            (star(sym("a")), True),
            (plus(sym("a")), False),
            (plus(star(sym("a"))), True),
            (optional(sym("a")), True),
            (Concat(Sym("a"), Star(Sym("b"))), False),
            (Concat(Star(Sym("a")), Star(Sym("b"))), True),
            (Union(Sym("a"), Star(Sym("b"))), True),
            (Union(Sym("a"), Sym("b")), False),
            (Repeat(Sym("a"), 0, 3), True),
            (Repeat(Sym("a"), 1, 3), False),
            (Repeat(Star(Sym("a")), 2, 2), True),
        ],
    )
    def test_nullable(self, expr, expected):
        assert expr.nullable() is expected


class TestStructuralQueries:
    def test_symbols(self):
        expr = union(concat(sym("a"), sym("b")), sym("a"))
        assert expr.symbols() == {"a", "b"}

    def test_positions_in_document_order(self):
        expr = union(concat(sym("a"), sym("b")), sym("a"))
        assert expr.positions() == ["a", "b", "a"]

    def test_occurrence_count(self):
        expr = union(concat(sym("a"), sym("b")), sym("a"))
        assert expr.occurrence_count() == 2

    def test_size_counts_all_nodes(self):
        expr = Concat(Sym("a"), Star(Sym("b")))
        assert expr.size() == 4

    def test_is_star_free(self):
        assert concat(sym("a"), optional(sym("b"))).is_star_free()
        assert not star(sym("a")).is_star_free()
        assert not plus(sym("a")).is_star_free()
        assert not repeat(sym("a"), 2, None).is_star_free()
        assert repeat(sym("a"), 2, 5).is_star_free()

    def test_has_numeric_occurrences(self):
        assert repeat(sym("a"), 1, 2).has_numeric_occurrences()
        assert not star(sym("a")).has_numeric_occurrences()

    def test_iter_nodes_preorder(self):
        expr = Concat(Sym("a"), Sym("b"))
        kinds = [type(node).__name__ for node in expr.iter_nodes()]
        assert kinds == ["Concat", "Sym", "Sym"]

    def test_equality_and_hash(self):
        assert Concat(Sym("a"), Sym("b")) == Concat(Sym("a"), Sym("b"))
        assert hash(Star(Sym("a"))) == hash(Star(Sym("a")))
        assert Star(Sym("a")) != Plus(Sym("a"))
