"""Unit tests for the Glushkov and Thompson baselines."""

import pytest

from repro.automata.glushkov import GlushkovAutomaton, GlushkovDFA
from repro.automata.nfa import ThompsonNFA
from repro.errors import NotDeterministicError
from repro.regex.generators import mixed_content
from repro.regex.parse_tree import build_parse_tree
from repro.regex.parser import parse


class TestGlushkovAutomaton:
    def test_state_count_is_number_of_positions(self):
        automaton = GlushkovAutomaton.from_expression("(ab+c)*")
        # three user positions plus the two sentinels
        assert automaton.state_count() == 5

    def test_transition_count_is_quadratic_on_mixed_content(self):
        small = GlushkovAutomaton.from_expression(mixed_content(8))
        large = GlushkovAutomaton.from_expression(mixed_content(16))
        # (a1+...+am)* has Θ(m^2) transitions: doubling m roughly quadruples them.
        ratio = large.transition_count() / small.transition_count()
        assert ratio > 3.0

    def test_determinism_test_on_paper_examples(self):
        assert GlushkovAutomaton.from_expression("(ab+b(b?)a)*").is_deterministic()
        assert not GlushkovAutomaton.from_expression("(a*ba+bb)*").is_deterministic()
        assert not GlushkovAutomaton.from_expression("ab*b").is_deterministic()

    def test_conflict_witness_shares_a_label(self):
        automaton = GlushkovAutomaton.from_expression("(a*ba+bb)*")
        conflict = automaton.determinism_conflict()
        assert conflict is not None
        tree = automaton.tree
        assert tree.positions[conflict.first].symbol == conflict.symbol
        assert tree.positions[conflict.second].symbol == conflict.symbol

    def test_accepts_by_subset_simulation(self):
        automaton = GlushkovAutomaton.from_expression("(a*ba+bb)*")
        assert automaton.accepts(list("bb"))
        assert automaton.accepts(list("aba"))
        assert automaton.accepts([])
        assert not automaton.accepts(list("ab"))

    def test_accepting_states(self):
        automaton = GlushkovAutomaton.from_expression("ab?")
        tree = automaton.tree
        a_state = tree.positions_by_symbol("a")[0].position_index
        b_state = tree.positions_by_symbol("b")[0].position_index
        assert automaton.is_accepting(a_state)
        assert automaton.is_accepting(b_state)
        assert not automaton.is_accepting(automaton.initial_state)


class TestGlushkovDFA:
    def test_rejects_non_deterministic_expressions(self):
        with pytest.raises(NotDeterministicError):
            GlushkovDFA.from_expression("(a*ba+bb)*")

    def test_matches_words(self):
        dfa = GlushkovDFA.from_expression("(ab+b(b?)a)*")
        assert dfa.accepts(list("abba"))
        assert dfa.accepts([])
        assert not dfa.accepts(list("bb"))

    def test_run_returns_visited_positions(self):
        dfa = GlushkovDFA.from_expression("abc")
        trace = dfa.run(list("ab"))
        assert [dfa.position_of(state).symbol for state in trace] == ["#", "a", "b"]

    def test_run_stops_on_mismatch(self):
        dfa = GlushkovDFA.from_expression("abc")
        assert len(dfa.run(list("az"))) == 2


class TestThompsonNFA:
    @pytest.mark.parametrize(
        "text,word,expected",
        [
            ("(ab)*", "", True),
            ("(ab)*", "ababab", True),
            ("(ab)*", "abba", False),
            ("a?b{2,3}", "bb", True),
            ("a?b{2,3}", "abbb", True),
            ("a?b{2,3}", "b", False),
            ("(a+b)c", "ac", True),
            ("(a+b)c", "bc", True),
            ("(a+b)c", "c", False),
        ],
    )
    def test_accepts(self, text, word, expected):
        assert ThompsonNFA(text).accepts(list(word)) is expected

    def test_state_count_is_linear(self):
        nfa = ThompsonNFA(mixed_content(20))
        tree = build_parse_tree(mixed_content(20))
        assert nfa.state_count <= 4 * tree.size

    def test_accepts_ast_input(self):
        assert ThompsonNFA(parse("ab")).accepts(["a", "b"])

    def test_agreement_with_glushkov_on_random_expressions(self, rng):
        from repro.regex.generators import random_expression
        from repro.regex.words import mutate_word, sample_member

        for _ in range(40):
            expr = random_expression(rng, rng.randint(1, 8))
            automaton = GlushkovAutomaton.from_expression(expr)
            nfa = ThompsonNFA(expr)
            for _ in range(4):
                word = sample_member(expr, rng)
                assert automaton.accepts(word) and nfa.accepts(word)
                other = mutate_word(word, list(automaton.tree.alphabet), rng)
                assert automaton.accepts(other) == nfa.accepts(other)
