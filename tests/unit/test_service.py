"""Unit tests for :class:`repro.service.ValidationService`.

The acceptance bar for the service layer: an 8-worker service must be
verdict-identical to single-threaded execution on the stress corpus, the
batch APIs must agree with per-word matching, and the stats snapshot must
stay internally consistent while requests are in flight.
"""

from __future__ import annotations

import random
import threading

import pytest

import repro
from repro.errors import NotDeterministicError
from repro.service import DocumentVerdict, ValidationService
from repro.xml import DTDValidator, XSDSchema, element, element_particle, parse_dtd, sequence

DTD_TEXT = """
<!ELEMENT catalog (product+)>
<!ELEMENT product (name, price, (description | summary)?, tag*)>
<!ELEMENT name (#PCDATA)> <!ELEMENT price (#PCDATA)>
<!ELEMENT description (#PCDATA)> <!ELEMENT summary (#PCDATA)> <!ELEMENT tag (#PCDATA)>
"""


@pytest.fixture(autouse=True)
def _fresh_caches():
    repro.purge()
    yield
    repro.purge()


def _documents(count: int, rng: random.Random):
    documents = []
    for index in range(count):
        children = [element("name", text="n"), element("price", text="9")]
        if rng.random() < 0.5:
            children.append(element(rng.choice(["description", "summary"])))
        children.extend(element("tag") for _ in range(rng.randint(0, 3)))
        if index % 4 == 3:  # a quarter of the corpus violates the model
            children.reverse()
        documents.append(element("catalog", element("product", *children)))
    return documents


def _word_corpus(expr: str, count: int, rng: random.Random):
    reference = repro.Pattern(expr, compiled=False)
    alphabet = reference.tree.alphabet.as_list()
    words = [
        "".join(rng.choice(alphabet) for _ in range(rng.randint(0, 10))) for _ in range(count)
    ]
    oracle = [reference.match(word) for word in words]
    return words, oracle


class TestMatchBatch:
    def test_agrees_with_single_threaded_oracle(self):
        words, oracle = _word_corpus("(ab+b(b?)a)*", 800, random.Random(1))
        with ValidationService(workers=8, min_chunk=32) as service:
            assert service.match_batch("(ab+b(b?)a)*", words) == oracle

    def test_star_free_pattern_takes_the_multi_matcher_path(self):
        words, oracle = _word_corpus("(a+b)(c?)d", 600, random.Random(2))
        pattern = repro.compile("(a+b)(c?)d")
        assert pattern.describe()["batch_path"] == "star-free-multi"
        with ValidationService(workers=8, min_chunk=16) as service:
            assert service.match_batch("(a+b)(c?)d", words) == oracle

    def test_small_batches_run_inline(self):
        with ValidationService(workers=4) as service:
            assert service.match_batch("(ab)*", ["abab", "aba", ""]) == [True, False, True]

    def test_order_is_preserved_across_chunks(self):
        words = ["ab" * (index % 4) for index in range(257)]
        expected = [repro.Pattern("(ab)*", compiled=False).match(word) for word in words]
        with ValidationService(workers=8, min_chunk=16) as service:
            assert service.match_batch("(ab)*", words) == expected

    def test_non_deterministic_pattern_raises_and_counts_an_error(self):
        with ValidationService(workers=2) as service:
            with pytest.raises(NotDeterministicError):
                service.match_batch("(a*ba+bb)*", ["bb"])
            stats = service.stats()
            assert stats["requests"]["errors"] == 1
            assert stats["requests"]["total"] == 1


class TestValidateDocuments:
    def test_dtd_verdicts_match_direct_validation(self):
        documents = _documents(40, random.Random(3))
        validator = DTDValidator(parse_dtd(DTD_TEXT))
        expected = [validator.validate(document).valid for document in documents]
        with ValidationService(workers=8) as service:
            verdicts = service.validate_documents(validator, documents)
        assert [verdict.valid for verdict in verdicts] == expected
        assert any(not verdict.valid for verdict in verdicts)
        flagged = next(verdict for verdict in verdicts if not verdict.valid)
        assert flagged.violations  # DTD verdicts carry the messages

    def test_accepts_a_raw_dtd(self):
        documents = _documents(6, random.Random(4))
        with ValidationService(workers=2) as service:
            verdicts = service.validate_documents(parse_dtd(DTD_TEXT), documents)
        assert all(isinstance(verdict, DocumentVerdict) for verdict in verdicts)

    def test_xsd_verdicts_match_direct_validation(self):
        schema = XSDSchema(root="catalog")
        schema.declare("catalog", element_particle("product", 1, None))
        schema.declare(
            "product",
            sequence(element_particle("name"), element_particle("tag", 0, None)),
        )
        good = element("catalog", element("product", element("name")))
        bad = element("catalog", element("product", element("tag"), element("name")))
        with ValidationService(workers=4) as service:
            verdicts = service.validate_documents(schema, [good, bad, good])
        assert [verdict.valid for verdict in verdicts] == [True, False, True]

    def test_eight_workers_identical_to_one_worker_on_stress_corpus(self):
        """The acceptance criterion, end to end on documents."""
        documents = _documents(120, random.Random(5))
        validator = DTDValidator(parse_dtd(DTD_TEXT))
        with ValidationService(workers=1) as single:
            sequential = single.validate_documents(validator, documents)
        with ValidationService(workers=8) as service:
            parallel = service.validate_documents(validator, documents)
        assert parallel == sequential


class TestStats:
    def test_counters_and_percentiles(self):
        with ValidationService(workers=2) as service:
            for _ in range(10):
                service.match_batch("(ab)*", ["abab", "ab", "a"])
            stats = service.stats()
        requests = stats["requests"]
        assert requests["total"] == 10
        assert requests["errors"] == 0
        assert requests["in_flight"] == 0
        assert requests["p50_ms"] is not None and requests["p50_ms"] >= 0
        assert requests["p99_ms"] >= requests["p50_ms"]
        assert stats["pattern_cache"]["hits"] >= 9  # one miss, then warm
        assert stats["service"]["workers"] == 2

    def test_patterns_surface_runtime_stats(self):
        with ValidationService(workers=2) as service:
            service.match_batch("(ab)*", ["abab"])
            stats = service.stats()
        (runtime_stats,) = stats["patterns"].values()
        assert runtime_stats["transitions_memoized"] == runtime_stats["misses"] > 0

    def test_stats_sees_the_in_flight_request(self):
        """A snapshot taken mid-request reports it as in flight.

        The corpus generator snapshots the service while ``match_batch``
        is consuming it — deterministically inside the request window.
        """
        with ValidationService(workers=2) as service:
            captured: list[dict] = []

            def corpus():
                yield "abba"
                captured.append(service.stats())
                yield "bb"

            assert service.match_batch("(ab+b(b?)a)*", corpus()) == [True, False]
            (snapshot,) = captured
            assert snapshot["requests"]["in_flight"] == 1
            assert snapshot["requests"]["total"] == 1
            after = service.stats()
            assert after["requests"]["in_flight"] == 0
            assert after["requests"]["total"] == 1

    def test_stats_snapshots_stay_consistent_under_traffic(self):
        """Snapshots probed from another thread never show torn counters."""
        words = ["abba" * 6] * 400
        with ValidationService(workers=4, min_chunk=16) as service:
            stop = threading.Event()
            snapshots: list[dict] = []

            def prober():
                while not stop.is_set():
                    snapshots.append(service.stats())

            thread = threading.Thread(target=prober)
            thread.start()
            try:
                for _ in range(20):
                    service.match_batch("(ab+b(b?)a)*", words)
            finally:
                stop.set()
                thread.join()
        assert snapshots
        totals = [snapshot["requests"]["total"] for snapshot in snapshots]
        assert totals == sorted(totals)  # monotone under concurrency
        for snapshot in snapshots:
            requests = snapshot["requests"]
            assert 0 <= requests["in_flight"] <= 1
            assert requests["errors"] == 0
            assert snapshot["pattern_cache"]["evictions"] >= 0

    def test_stats_after_validation_lists_memoized_validators(self):
        with ValidationService(workers=2) as service:
            validator = service.validator_for_dtd(DTD_TEXT)
            assert service.validator_for_dtd(DTD_TEXT) is validator  # memoized
            service.validate_documents(validator, _documents(4, random.Random(6)))
            stats = service.stats()
        (validator_stats,) = stats["validators"].values()
        assert validator_stats["totals"]["transitions_memoized"] > 0


class TestLifecycle:
    def test_close_is_idempotent(self):
        service = ValidationService(workers=1)
        service.close()
        service.close()
        assert service.stats()["service"]["closed"] is True

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ValidationService(workers=0)

    def test_closed_service_raises_a_clear_error(self):
        """Regression (ISSUE 5): entry points used to fall through to the
        executor, whose shutdown error (or, for inline-sized corpora, a
        silent success) never mentioned that the service was closed."""
        service = ValidationService(workers=2)
        service.close()
        with pytest.raises(RuntimeError, match="service is closed"):
            service.match_batch("(ab)*", ["ab"])
        with pytest.raises(RuntimeError, match="service is closed"):
            service.validate_documents(parse_dtd("<!ELEMENT a EMPTY>"), [])
        with pytest.raises(RuntimeError, match="service is closed"):
            service.validate_document_texts(parse_dtd("<!ELEMENT a EMPTY>"), [])
        # stats stays readable on a closed service (monitoring keeps working)
        assert service.stats()["service"]["closed"] is True


class TestChunkedFailure:
    class _StubPool:
        """A controllable executor double: futures resolve only when the
        test says so, which makes the cancel-on-first-failure behaviour
        of ``_map_chunked`` deterministic to observe."""

        def __init__(self):
            self.futures = []

        def submit(self, fn, *args):
            from concurrent.futures import Future

            future = Future()
            self.futures.append(future)
            return future

        def shutdown(self, wait=True):
            pass

    def test_first_failure_cancels_outstanding_chunks(self):
        """Regression (ISSUE 5): remaining chunks used to keep running
        after one future raised, burning the pool on a poisoned corpus."""
        service = ValidationService(workers=2, min_chunk=1)
        service._pool.shutdown(wait=True)
        stub = service._pool = self._StubPool()
        outcome: dict = {}

        def run():
            try:
                service._map_chunked(lambda chunk: chunk, [0, 1])
            except ValueError as error:
                outcome["error"] = error

        thread = threading.Thread(target=run)
        thread.start()
        for _ in range(200):
            if len(stub.futures) == 2:
                break
            threading.Event().wait(0.01)
        assert len(stub.futures) == 2, "expected two chunks to be submitted"
        stub.futures[0].set_exception(ValueError("poisoned chunk"))
        thread.join(timeout=5)
        assert not thread.is_alive(), "_map_chunked hung on the failed chunk"
        assert isinstance(outcome.get("error"), ValueError)
        assert stub.futures[1].cancelled(), "the outstanding chunk was not cancelled"
        service.close()
