"""Unit tests for the PR-9 diagnostics layer and the redesigned result API.

Covers the :class:`~repro.diagnostics.MatchResult` /
:class:`~repro.diagnostics.ValidationResult` surfaces (bool back-compat,
lazy diagnosis, wire shapes), the witness traces recorded by
``TracedRun`` / ``TraceRecorder``, the repair ranking, the consolidated
``repro.stats()`` namespace with its deprecated aliases, and the
expected-next enrichment of validator violations and ``LexError``.
"""

from __future__ import annotations

import pytest

import repro
from repro.diagnostics import (
    MatchResult,
    Repair,
    TraceRecorder,
    ValidationResult,
    complete_from_trace,
    diagnose,
)
from repro.errors import DiagnosticsError, LexError, ReproError
from repro.lexer import Lexer
from repro.matching.kernel import MIN_BATCH
from repro.service import wire
from repro.xml.dtd import describe_expected, parse_dtd
from repro.xml.parser import parse_document
from repro.xml.validator import DTDValidator
from repro.xml.xsd import XSDSchema, element_particle, sequence

EXPR = "(ab+b(b?)a)*"  # the paper's e1 (in the paper dialect, + is union)


@pytest.fixture(autouse=True)
def _fresh_cache():
    repro.purge()
    yield
    repro.purge()


class TestMatchResult:
    def test_truthiness_matches_the_verdict(self):
        pattern = repro.compile(EXPR)
        assert pattern.match("abba")
        assert not pattern.match("abb")

    def test_bool_equality_back_compat(self):
        pattern = repro.compile(EXPR)
        assert pattern.match("abba") == True  # noqa: E712 - the back-compat contract
        assert pattern.match("abb") == False  # noqa: E712
        assert hash(pattern.match("abba")) == hash(True)

    def test_match_all_default_stays_boolean(self):
        pattern = repro.compile(EXPR)
        verdicts = pattern.match_all(["abba", "bba", "bb"])
        assert verdicts == [True, True, False]
        assert all(isinstance(verdict, bool) for verdict in verdicts)

    def test_failure_diagnosis_fields(self):
        result = repro.compile(EXPR).match("abb")
        assert result.error_index == 3
        assert result.reason == "unexpected-end"
        assert result.expected == ("a", "b")
        assert not result.can_end

    def test_mismatch_reason_and_index(self):
        result = repro.compile("(ab)*c").match("acb")
        assert result.reason == "mismatch"
        assert result.error_index == 1
        assert result.expected == ("b",)

    def test_unknown_symbol_reason(self):
        result = repro.compile(EXPR).match(["a", "zz"])
        assert result.reason == "unknown-symbol"
        assert result.error_index == 1

    def test_success_witness_spells_the_word(self):
        result = repro.compile(EXPR).match("abba")
        nodes = result.positions()
        assert [node.symbol for node in nodes[1:]] == ["a", "b", "b", "a"]
        assert len(result.trace) == 5  # start sentinel + one state per symbol

    def test_repairs_are_ranked_and_bounded(self):
        result = repro.compile(EXPR).match("abb")
        actions = [repair.action for repair in result.repairs]
        assert "insert" in actions
        assert "truncate" in actions  # "ab" was an accepting prefix... no: "" is
        truncate = next(r for r in result.repairs if r.action == "truncate")
        assert truncate.index == 2  # longest accepting prefix is "ab"
        assert truncate.symbol is None

    def test_to_dict_shapes(self):
        ok = repro.compile(EXPR).match("abba").to_dict()
        assert ok == {"matched": True}
        bad = repro.compile(EXPR).match("abb").to_dict()
        assert bad["matched"] is False
        assert bad["error_index"] == 3
        assert bad["expected"] == ["a", "b"]
        assert {"reason", "can_end", "repairs"} <= set(bad)

    def test_describe_names_the_failure(self):
        text = repro.compile(EXPR).match("abb").describe()
        assert "unexpected end" in text
        assert "'a'" in text and "'b'" in text

    def test_result_without_pattern_handle_cannot_diagnose(self):
        orphan = MatchResult(False, ("a",))
        with pytest.raises(DiagnosticsError):
            orphan.diagnosis  # noqa: B018 - the property raises

    def test_diagnostics_error_is_a_repro_error(self):
        assert issubclass(DiagnosticsError, ReproError)

    def test_module_level_match_returns_a_result(self):
        result = repro.match(EXPR, "abb")
        assert isinstance(result, MatchResult)
        assert result.error_index == 3

    def test_uncompiled_pattern_diagnoses_identically(self):
        compiled = repro.compile(EXPR).match("abb")
        direct = repro.compile(EXPR, compiled=False).match("abb")
        assert compiled.expected == direct.expected
        assert compiled.error_index == direct.error_index
        assert compiled.trace == direct.trace

    def test_repair_equality_and_dict(self):
        a = Repair("insert", 2, "a", "insert 'a' at index 2")
        b = Repair("insert", 2, "a", "different prose, same repair")
        assert a == b and hash(a) == hash(b)
        assert a.to_dict() == {"action": "insert", "index": 2, "symbol": "a"}


class TestMatchAllDetail:
    def test_full_detail_agrees_with_verdicts(self):
        pattern = repro.compile(EXPR)
        words = ["abba", "bba", "bb", "", "ab" * 20] * 3  # enough for the kernel path
        assert len(words) >= MIN_BATCH
        plain = pattern.match_all(words)
        rich = pattern.match_all(words, detail="full")
        assert [bool(result) for result in rich] == plain
        assert all(isinstance(result, MatchResult) for result in rich)

    def test_full_detail_failures_carry_diagnosis(self):
        pattern = repro.compile(EXPR)
        words = ["abba"] * (MIN_BATCH - 1) + ["abb"]
        rich = pattern.match_all(words, detail="full")
        assert rich[-1].error_index == 3
        assert rich[-1].expected == ("a", "b")

    def test_unknown_detail_level_is_rejected(self):
        with pytest.raises(ValueError):
            repro.compile(EXPR).match_all(["abba"], detail="everything")

    def test_uncompiled_full_detail(self):
        pattern = repro.compile(EXPR, compiled=False)
        rich = pattern.match_all(["abba", "abb"], detail="full")
        assert [bool(result) for result in rich] == [True, False]
        assert rich[1].reason == "unexpected-end"


class TestWitnessRecording:
    def test_traced_run_records_the_state_path(self):
        runtime = repro.compile(EXPR).runtime
        run = runtime.start(trace=True)
        assert run.feed_all(["a", "b", "b", "a"])
        assert run.trace[0] == runtime._start_state
        assert len(run.trace) == 5
        assert run.is_accepting()

    def test_traced_run_stops_recording_at_death(self):
        runtime = repro.compile(EXPR).runtime
        run = runtime.start(trace=True)
        assert not run.feed_all(["a", "a"])
        assert len(run.trace) == 2  # start + the consumed 'a'

    def test_trace_recorder_matches_accepts_encoded(self):
        runtime = repro.compile(EXPR).runtime
        recorder = TraceRecorder(runtime)
        for word in (["a", "b", "b", "a"], ["a", "b", "b"], ["b", "a"]):
            codes = runtime.encode(word)
            assert recorder(codes) == runtime.accepts_encoded(codes)
            verdict, trace = recorder.traces[tuple(codes)]
            assert trace[0] == runtime._start_state

    def test_complete_from_trace_matches_fresh_diagnosis(self):
        pattern = repro.compile(EXPR)
        runtime = pattern.runtime
        recorder = TraceRecorder(runtime)
        word = ["a", "b", "b"]
        verdict = recorder(runtime.encode(word))
        _, trace = recorder.traces[tuple(runtime.encode(word))]
        finished = complete_from_trace(pattern, word, verdict, trace)
        fresh = diagnose(pattern, word)
        assert finished.matched == fresh.matched
        assert finished.error_index == fresh.error_index
        assert finished.expected == fresh.expected
        assert finished.repairs == fresh.repairs

    def test_diagnose_expect_guard(self):
        pattern = repro.compile(EXPR)
        with pytest.raises(DiagnosticsError):
            diagnose(pattern, ["a", "b", "b", "a"], expect=False)


class TestValidationResult:
    def test_truthy_is_valid(self):
        assert ValidationResult(True)
        assert not ValidationResult(False, ("boom",))

    def test_list_protocol_over_violations(self):
        result = ValidationResult(False, ("first", "second"))
        assert len(result) == 2
        assert list(result) == ["first", "second"]
        assert result[0] == "first"

    def test_bool_equality(self):
        assert ValidationResult(True) == True  # noqa: E712 - the back-compat contract
        assert ValidationResult(False, ("x",)) == False  # noqa: E712

    def test_to_dict_duck_types_violations(self):
        class Structured:
            def to_dict(self):
                return {"kind": "content"}

        result = ValidationResult(False, (Structured(), "plain"))
        assert result.to_dict() == {
            "valid": False,
            "violations": [{"kind": "content"}, "plain"],
        }


class TestValidatorDiagnostics:
    DTD = (
        "<!ELEMENT catalog (product+)>"
        "<!ELEMENT product (name, price?)>"
        "<!ELEMENT name EMPTY><!ELEMENT price EMPTY>"
    )

    def test_dtd_violation_carries_path_index_and_expected(self):
        validator = DTDValidator(parse_dtd(self.DTD))
        document = parse_document(
            "<catalog><product><name/></product>"
            "<product><price/></product></catalog>"
        )
        result = validator.validate(document)
        assert not result
        violation = result[0]
        assert violation.kind == "content"
        assert violation.path == "/catalog/product[2]"
        assert violation.child_index == 0
        assert violation.expected == ("name",)
        assert "expected <name>" in violation.message

    def test_dtd_early_end_reports_the_tail_index(self):
        validator = DTDValidator(parse_dtd(self.DTD))
        result = validator.validate(parse_document("<catalog></catalog>"))
        violation = result[0]
        assert violation.child_index == 0
        assert "ended too early" in violation.message

    def test_is_valid_polarity(self):
        validator = DTDValidator(parse_dtd(self.DTD))
        good = parse_document("<catalog><product><name/></product></catalog>")
        assert validator.is_valid(good)
        assert validator.validate(good)

    def test_xsd_children_violation_fields(self):
        schema = XSDSchema(root="order")
        schema.declare(
            "order",
            sequence(element_particle("item", 1, None), element_particle("note", 0, 1)),
        )
        result = schema.validate_children("order", ["note"])
        assert not result
        assert result[0].child_index == 0
        assert result[0].expected == ("item",)

    def test_describe_expected_rendering(self):
        assert describe_expected(("a", "b"), True) == "(<a> | <b> | #END)"
        assert describe_expected(("a",), False) == "<a>"
        assert describe_expected((), False) == "nothing"


class TestLexerDiagnostics:
    def test_stuck_error_reports_expected_tags(self):
        lexer = Lexer([("AB", "ab(ab)*"), ("C", "cc*")])
        with pytest.raises(LexError) as excinfo:
            lexer.tokenize("aba")
        error = excinfo.value
        assert error.position == 2
        assert error.expected == ("b",)
        assert error.tags == ("AB",)
        assert "expected one of ['b']" in str(error)
        assert "rules: AB" in str(error)


class TestWireShapes:
    def test_shape_match_levels(self):
        miss = repro.compile(EXPR).match("abb")
        assert wire.shape_match(miss, "verdict") is False
        assert wire.shape_match(miss, "summary") == {"matched": False, "error_index": 3}
        full = wire.shape_match(miss, "full")
        assert full["expected"] == ["a", "b"]
        assert wire.shape_match(True, "full") is True  # bare bools stay bools

    def test_shape_verdict_with_structured_violations(self):
        validator = DTDValidator(parse_dtd(TestValidatorDiagnostics.DTD))
        result = validator.validate(
            parse_document("<catalog><product><price/></product></catalog>")
        )
        shaped = wire.shape_verdict(result.valid, tuple(result), "full")
        assert shaped["valid"] is False
        assert shaped["violations"][0]["child_index"] == 0
        assert wire.shape_verdict(result.valid, tuple(result), "summary") == {
            "valid": False,
            "violations": 1,
        }


class TestStatsNamespace:
    def test_consolidated_namespaces(self):
        stats = repro.stats()
        assert set(stats) == {"pattern_cache", "snapshot", "kernel"}
        assert {"hits", "misses", "size", "max_size", "evictions"} <= set(
            stats["pattern_cache"]
        )
        assert "backend" in stats["kernel"]
        assert "materialized" in stats["snapshot"]

    def test_kernel_stats_alias_warns(self):
        from repro.matching.kernel import kernel_stats, stats as kernel_namespace

        with pytest.deprecated_call():
            assert kernel_stats() == kernel_namespace()
