"""Snapshot format v2: three sections, v1 compatibility, live lifecycle.

The contract under test (ISSUE 5): the v2 file persists star-free tables
and validator memos next to the dense rows; v1 files keep loading
(counted ``format_v1``); corrupt or stale v2 *sections* degrade
per-section to lazy rebuild — never a changed verdict; and the serving
layer streams the current file over ``GET /snapshot`` so a fresh host
bootstraps from a running fleet.
"""

from __future__ import annotations

import threading
import urllib.error
import urllib.request

import pytest

import repro
from repro import cache
from repro.matching import snapshot as snapshot_format
from repro.matching.snapshot import SnapshotError
from repro.matching.star_free import StarFreeMultiMatcher
from repro.service import ServiceHTTPServer, SnapshotRefresher, ValidationService
from repro.xml import parse_dtd
from repro.xml.memo import AcceptanceMemo
from repro.xml.parser import parse_document
from repro.xml.validator import DTDValidator

ROWS_EXPR = "(ab+b(b?)a)*"
ROWS_WORDS = ["abba", "ab", "bb", "abab", "ba", "", "abbaab"]

STAR_FREE_EXPR = "(a+b)(c?)d"
STAR_FREE_WORDS = ["acd", "bd", "dd", "", "ad", "bcd"]

DTD_TEXT = "<!ELEMENT a (b, c?)> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>"
DOCUMENTS = ["<a><b/></a>", "<a><b/><c/></a>", "<a><c/></a>", "<a><c/><b/></a>"]


@pytest.fixture(autouse=True)
def _fresh_caches():
    repro.purge()
    yield
    repro.purge()


def _warm_everything() -> None:
    """Materialize state in all three sections: rows, tables, memos."""
    pattern = repro.compile(ROWS_EXPR)
    for word in ROWS_WORDS:
        pattern.match(word)
    star_free = repro.compile(STAR_FREE_EXPR)
    star_free.match_all(STAR_FREE_WORDS)
    validator = DTDValidator(parse_dtd(DTD_TEXT))
    for text in DOCUMENTS:
        validator.is_valid(parse_document(text))


def _oracle() -> dict:
    rows = repro.Pattern(ROWS_EXPR, compiled=False)
    star_free = repro.Pattern(STAR_FREE_EXPR, compiled=False)
    validator = DTDValidator(parse_dtd(DTD_TEXT), compiled=False)
    return {
        "rows": [rows.match(word) for word in ROWS_WORDS],
        "star_free": [star_free.match(word) for word in STAR_FREE_WORDS],
        "documents": [validator.is_valid(parse_document(text)) for text in DOCUMENTS],
    }


def _verdicts_now() -> dict:
    pattern = repro.compile(ROWS_EXPR)
    star_free = repro.compile(STAR_FREE_EXPR)
    validator = DTDValidator(parse_dtd(DTD_TEXT))
    return {
        "rows": [pattern.match(word) for word in ROWS_WORDS],
        "star_free": star_free.match_all(STAR_FREE_WORDS),
        "documents": [validator.is_valid(parse_document(text)) for text in DOCUMENTS],
    }


class TestV2RoundTrip:
    def test_all_three_sections_round_trip(self, tmp_path):
        path = tmp_path / "state.snapshot"
        _warm_everything()
        saved = repro.save_snapshot(str(path))
        assert saved["patterns"] >= 2, saved
        assert saved["star_free_patterns"] == 1, saved
        assert saved["decisions"] > 0, saved
        assert saved["memo_patterns"] >= 1, saved
        assert saved["memo_entries"] >= len({("b",), ("b", "c"), ("c",), ("c", "b")}), saved
        assert saved["sections"] == ["ROWS", "SFTB", "MEMO"]

        repro.purge()
        report = repro.load_snapshot(str(path))
        assert report["format"] == 2
        assert report["rejected"] == 0, report
        assert report["patterns_loaded"] >= 2
        assert report["tables_loaded"] == 1
        assert report["table_entries_loaded"] > 0
        assert report["memos_loaded"] >= 1
        assert report["memo_entries_loaded"] >= 4
        assert _verdicts_now() == _oracle()

        # The adopted star-free tables really landed on the matcher.
        multi = repro.compile(STAR_FREE_EXPR).plan.built_star_free()
        assert multi is not None
        stats = multi.table_stats()
        assert stats["adopted_decisions"] > 0 or stats["adopted_accepts"] > 0

    def test_save_load_counts_into_telemetry(self, tmp_path):
        path = tmp_path / "state.snapshot"
        _warm_everything()
        before = repro.stats()["snapshot"]
        repro.save_snapshot(str(path))
        repro.purge()
        repro.load_snapshot(str(path))
        stats = repro.stats()["snapshot"]
        assert stats["format_v2"] == before["format_v2"] + 1
        assert stats["tables_saved"] == before["tables_saved"] + 1
        assert stats["tables_loaded"] == before["tables_loaded"] + 1
        assert stats["memo_entries_saved"] > before["memo_entries_saved"]
        assert stats["memo_entries_loaded"] > before["memo_entries_loaded"]

    def test_describe_file_lists_sections(self, tmp_path):
        path = tmp_path / "state.snapshot"
        _warm_everything()
        saved = repro.save_snapshot(str(path))
        description = snapshot_format.describe_file(path)
        assert description["format"] == 2
        assert description["bytes"] == saved["bytes"]
        assert [s["tag"] for s in description["sections"]] == ["ROWS", "SFTB", "MEMO"]
        total = sum(s["length"] for s in description["sections"])
        assert description["sections"][0]["offset"] + total == saved["bytes"]

    def test_memo_only_pattern_is_persisted(self, tmp_path):
        """A pattern warm only in its memo still earns a snapshot entry."""
        validator = DTDValidator(parse_dtd(DTD_TEXT))
        validator.is_valid(parse_document("<a><b/></a>"))
        saved = repro.save_snapshot(str(tmp_path / "memo.snapshot"))
        assert saved["memo_patterns"] >= 1

    def test_materialized_gauge_tracks_all_sections(self):
        base = repro.stats()["snapshot"]["materialized"]
        assert base["total"] == 0
        _warm_everything()
        gauge = repro.stats()["snapshot"]["materialized"]
        assert gauge["transitions"] > 0
        assert gauge["star_free_entries"] > 0
        assert gauge["memo_entries"] > 0
        assert gauge["total"] == (
            gauge["transitions"] + gauge["star_free_entries"] + gauge["memo_entries"]
        )


class TestV1Compatibility:
    def test_v1_file_still_loads_and_is_counted(self, tmp_path):
        path = tmp_path / "rows.v1.snapshot"
        pattern = repro.compile(ROWS_EXPR)
        for word in ROWS_WORDS:
            pattern.match(word)
        key = (ROWS_EXPR, "paper", "auto", True)
        meta = cache.snapshot_meta(key, pattern)
        export = pattern.runtime.export_rows()
        written = snapshot_format.write_v1(
            path,
            [
                {
                    "fingerprint": snapshot_format.pattern_fingerprint(meta),
                    "meta": meta,
                    "accepts": export["accepts"],
                    "rows": export["rows"],
                }
            ],
        )
        assert written["patterns"] == 1
        assert snapshot_format.describe_file(path)["format"] == 1

        repro.purge()
        before = repro.stats()["snapshot"]["format_v1"]
        report = repro.load_snapshot(str(path))
        assert report["format"] == 1
        assert report["patterns_loaded"] == 1
        assert report["rows_loaded"] == written["rows"]
        assert report["tables_loaded"] == 0 and report["memos_loaded"] == 0
        assert repro.stats()["snapshot"]["format_v1"] == before + 1
        restored = repro.compile(ROWS_EXPR)
        oracle = repro.Pattern(ROWS_EXPR, compiled=False)
        assert [restored.match(w) for w in ROWS_WORDS] == [oracle.match(w) for w in ROWS_WORDS]
        assert restored.runtime.stats()["misses"] == 0


class TestSectionDegradation:
    def _flip_in_section(self, path, tag: str) -> None:
        description = snapshot_format.describe_file(path)
        section = next(s for s in description["sections"] if s["tag"] == tag)
        blob = bytearray(path.read_bytes())
        blob[section["offset"] + section["length"] // 2] ^= 0x20
        path.write_bytes(bytes(blob))

    @pytest.mark.parametrize("corrupt", ["ROWS", "SFTB", "MEMO"])
    def test_one_bad_section_leaves_the_others_adopting(self, tmp_path, corrupt):
        path = tmp_path / "state.snapshot"
        _warm_everything()
        oracle = _oracle()
        repro.save_snapshot(str(path))
        self._flip_in_section(path, corrupt)
        repro.purge()
        before = repro.stats()["snapshot"]["snapshot_rejected"]
        report = repro.load_snapshot(str(path))
        assert report["rejected"] >= 1, report
        assert repro.stats()["snapshot"]["snapshot_rejected"] > before
        assert repro.stats()["snapshot"]["rejected_reasons"].get("checksum", 0) >= 1
        if corrupt != "ROWS":
            assert report["patterns_loaded"] >= 2
        if corrupt != "SFTB":
            assert report["tables_loaded"] == 1
        if corrupt != "MEMO":
            assert report["memos_loaded"] >= 1
        assert _verdicts_now() == oracle, f"verdict changed with a corrupt {corrupt} section"

    def test_structurally_bad_rows_section_adopts_nothing_from_it(self, tmp_path):
        """A ROWS section with a valid CRC but malformed structure must
        reject as a unit — no half-adopted prefix of its entries."""
        import struct
        import zlib

        from repro.matching.snapshot import _HEADER_V2, _SECTION

        path = tmp_path / "state.snapshot"
        _warm_everything()
        repro.save_snapshot(str(path))
        blob = bytearray(path.read_bytes())
        description = snapshot_format.describe_file(path)
        rows = next(s for s in description["sections"] if s["tag"] == "ROWS")
        # The last 8 bytes of the ROWS payload are the final entry's last
        # (state, pool_index) pair; point the pool index outside the pool.
        struct.pack_into("<I", blob, rows["offset"] + rows["length"] - 4, 0xFFFFFF)
        # Recompute the section CRC and the directory CRC so only the
        # *structure* is bad.
        payload = bytes(blob[rows["offset"] : rows["offset"] + rows["length"]])
        directory_start = _HEADER_V2.size
        for index in range(len(description["sections"])):
            entry_offset = directory_start + index * _SECTION.size
            tag = bytes(blob[entry_offset : entry_offset + 4])
            if tag == b"ROWS":
                struct.pack_into("<I", blob, entry_offset + 4, zlib.crc32(payload) & 0xFFFFFFFF)
        directory = bytes(
            blob[directory_start : directory_start + len(description["sections"]) * _SECTION.size]
        )
        struct.pack_into("<I", blob, 16, zlib.crc32(directory) & 0xFFFFFFFF)
        path.write_bytes(bytes(blob))

        repro.purge()
        report = repro.load_snapshot(str(path))
        assert report["rejected"] == 1, report
        assert report["patterns_loaded"] == 0, "a rejected ROWS section partially adopted"
        assert report["rows_loaded"] == 0, report
        assert report["tables_loaded"] == 1 and report["memos_loaded"] >= 1, report
        assert _verdicts_now() == _oracle()

    def test_fully_rejected_file_is_not_counted_as_a_load(self, tmp_path):
        """Corrupting every section must not increment loads/format_v2."""
        path = tmp_path / "state.snapshot"
        _warm_everything()
        repro.save_snapshot(str(path))
        for tag in ("ROWS", "SFTB", "MEMO"):
            self._flip_in_section(path, tag)
        repro.purge()
        before = repro.stats()["snapshot"]
        report = repro.load_snapshot(str(path))
        assert report["rejected"] == 3, report
        stats = repro.stats()["snapshot"]
        assert stats["loads"] == before["loads"], "an all-rejected file was counted as a load"
        assert stats["format_v2"] == before["format_v2"]
        assert _verdicts_now() == _oracle()

    def test_header_corruption_rejects_the_whole_file(self, tmp_path):
        path = tmp_path / "state.snapshot"
        _warm_everything()
        repro.save_snapshot(str(path))
        blob = bytearray(path.read_bytes())
        blob[16] ^= 0x01  # the directory CRC
        path.write_bytes(bytes(blob))
        repro.purge()
        report = repro.load_snapshot(str(path))
        assert report["rejected"] == 1
        assert report["patterns_loaded"] == 0
        assert report["tables_loaded"] == 0
        assert report["memos_loaded"] == 0
        assert _verdicts_now() == _oracle()

    def test_stale_star_free_fingerprint_is_counted(self, tmp_path):
        pattern = repro.compile(STAR_FREE_EXPR)
        pattern.match_all(STAR_FREE_WORDS)
        key = (STAR_FREE_EXPR, "paper", "auto", True)
        meta = cache.snapshot_meta(key, pattern)
        stale = dict(meta)
        stale["alphabet"] = meta["alphabet"] + ["zzz"]
        tables = pattern.plan.built_star_free().export_tables()
        path = tmp_path / "stale.snapshot"
        snapshot_format.write(
            path,
            [],
            star_free=[
                {
                    "fingerprint": snapshot_format.pattern_fingerprint(stale),
                    "meta": stale,
                    "accepts": tables["accepts"],
                    "decisions": tables["decisions"],
                }
            ],
        )
        repro.purge()
        report = repro.load_snapshot(str(path))
        assert report["rejected"] == 1
        assert report["tables_loaded"] == 0
        assert repro.stats()["snapshot"]["rejected_reasons"].get("fingerprint", 0) >= 1
        oracle = repro.Pattern(STAR_FREE_EXPR, compiled=False)
        fresh = repro.compile(STAR_FREE_EXPR)
        assert fresh.match_all(STAR_FREE_WORDS) == [
            oracle.match(w) for w in STAR_FREE_WORDS
        ]


class TestAdoptTables:
    """Star-free table adoption: reject before any mutation."""

    def _matcher(self) -> StarFreeMultiMatcher:
        return StarFreeMultiMatcher(STAR_FREE_EXPR, verify=False)

    def test_roundtrip_reproduces_verdicts(self):
        warm = self._matcher()
        expected = warm.match_all([list(w) for w in STAR_FREE_WORDS])
        tables = warm.export_tables()
        assert tables["decisions"] or tables["accepts"]
        fresh = self._matcher()
        adopted = fresh.adopt_tables(tables["accepts"], tables["decisions"])
        assert adopted == len(tables["accepts"]) + len(tables["decisions"])
        assert fresh.match_all([list(w) for w in STAR_FREE_WORDS]) == expected
        # Fixpoint: re-export reproduces the same tables.
        assert fresh.export_tables()["decisions"] == tables["decisions"]

    def test_rejects_out_of_range_pre_numbers(self):
        matcher = self._matcher()
        with pytest.raises(SnapshotError) as excinfo:
            matcher.adopt_tables({}, {(99999, 0): 1})
        assert excinfo.value.reason == "table-bounds"
        assert matcher.table_stats()["decisions"] == 0

    def test_rejects_invalid_decision_code(self):
        matcher = self._matcher()
        with pytest.raises(SnapshotError) as excinfo:
            matcher.adopt_tables({}, {(0, 1): 7})
        assert excinfo.value.reason == "malformed"

    def test_rejects_invalid_accept_verdict(self):
        matcher = self._matcher()
        with pytest.raises(SnapshotError) as excinfo:
            matcher.adopt_tables({0: 2}, {})
        assert excinfo.value.reason == "malformed"

    def test_partial_failure_mutates_nothing(self):
        warm = self._matcher()
        warm.match_all([list(w) for w in STAR_FREE_WORDS])
        tables = warm.export_tables()
        bad_decisions = dict(tables["decisions"])
        bad_decisions[(0, 99999)] = 1  # one bad key among good ones
        fresh = self._matcher()
        with pytest.raises(SnapshotError):
            fresh.adopt_tables(tables["accepts"], bad_decisions)
        stats = fresh.table_stats()
        assert stats["decisions"] == 0 and stats["accepts"] == 0

    def test_local_results_win(self):
        warm = self._matcher()
        warm.match_all([list(w) for w in STAR_FREE_WORDS])
        tables = warm.export_tables()
        other = self._matcher()
        other.match_all([list(w) for w in STAR_FREE_WORDS])
        adopted = other.adopt_tables(tables["accepts"], tables["decisions"])
        assert adopted == 0, "locally computed entries must win"


class TestAcceptanceMemo:
    def test_memo_short_circuits_repeat_validation(self):
        validator = DTDValidator(parse_dtd(DTD_TEXT))
        document = parse_document("<a><b/><c/></a>")
        assert validator.is_valid(document)
        memo = validator._plans["a"].built_memo()
        assert memo is not None and len(memo) == 1
        hits_before = memo.hits
        assert validator.is_valid(document)
        assert memo.hits > hits_before

    def test_memo_is_shared_across_validators_of_one_model(self):
        first = DTDValidator(parse_dtd(DTD_TEXT))
        second = DTDValidator(parse_dtd(DTD_TEXT))
        assert first._plans["a"].built_memo() is second._plans["a"].built_memo()

    def test_adopt_validates_before_mutating(self):
        memo = AcceptanceMemo()
        with pytest.raises(SnapshotError) as excinfo:
            memo.adopt([(["b"], True), (["c"], "yes")])
        assert excinfo.value.reason == "memo-entry"
        assert len(memo) == 0

    def test_adopt_rejects_non_sequence_keys(self):
        memo = AcceptanceMemo()
        for bad in [("bc", True)], [(7, True)], [([1, 2], True)], ["x"]:
            with pytest.raises(SnapshotError):
                memo.adopt(bad)
        assert len(memo) == 0

    def test_adopt_respects_the_bound_and_local_wins(self):
        memo = AcceptanceMemo(limit=2)
        memo.put(("b",), True)
        adopted = memo.adopt([(["b"], False), (["c"], True), (["d"], False)])
        assert adopted == 1  # ("c",) fits; ("b",) loses to local; ("d",) over bound
        assert memo.get(("b",)) is True, "local verdict must win"
        assert memo.get(("c",)) is True

    def test_put_stops_at_the_bound(self):
        memo = AcceptanceMemo(limit=1)
        memo.put(("a",), True)
        memo.put(("b",), False)
        assert len(memo) == 1
        assert memo.get(("b",)) is None


class TestLiveLifecycle:
    def test_refresher_persists_on_growth_and_idles_otherwise(self, tmp_path):
        path = tmp_path / "live.snapshot"
        refresher = SnapshotRefresher(str(path), interval=3600, min_growth=1)
        assert refresher.maybe_save() is None, "nothing materialized yet"
        assert not path.exists()
        _warm_everything()
        report = refresher.maybe_save()
        assert report is not None and path.exists()
        assert refresher.saves == 1
        # No further growth: the next tick must not rewrite.
        assert refresher.maybe_save() is None
        assert refresher.saves == 1
        # New growth: the file is rewritten atomically.
        extra = repro.compile("(xy)*z")
        extra.match("xyz")
        assert refresher.maybe_save() is not None
        assert refresher.saves == 2
        assert snapshot_format.describe_file(path)["format"] == 2

    def test_refresher_thread_runs_and_stops(self, tmp_path):
        path = tmp_path / "live.snapshot"
        _warm_everything()
        refresher = SnapshotRefresher(str(path), interval=0.05, min_growth=1)
        refresher.start()
        try:
            for _ in range(100):
                if path.exists():
                    break
                threading.Event().wait(0.05)
            assert path.exists(), "the background thread never persisted"
        finally:
            refresher.stop()
        assert refresher._thread is None


@pytest.fixture()
def snapshot_server(tmp_path):
    """A real HTTP server whose ``GET /snapshot`` serves a warm v2 file."""
    _warm_everything()
    path = tmp_path / "served.snapshot"
    repro.save_snapshot(str(path))
    service = ValidationService(workers=1)
    server = ServiceHTTPServer(("127.0.0.1", 0), service, snapshot_source=str(path))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, path
    server.shutdown()
    server.server_close()
    service.close()
    thread.join(timeout=5)


class TestSnapshotEndpoint:
    def test_get_snapshot_streams_the_exact_file(self, snapshot_server):
        server, path = snapshot_server
        port = server.server_address[1]
        with urllib.request.urlopen(f"http://127.0.0.1:{port}/snapshot") as response:
            assert response.headers["Content-Type"] == "application/octet-stream"
            blob = response.read()
        assert blob == path.read_bytes()

    def test_get_snapshot_404_without_a_source(self):
        service = ValidationService(workers=1)
        server = ServiceHTTPServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            port = server.server_address[1]
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"http://127.0.0.1:{port}/snapshot")
            assert excinfo.value.code == 404
        finally:
            server.shutdown()
            server.server_close()
            service.close()
            thread.join(timeout=5)

    def test_fleet_bootstrap_over_the_wire(self, snapshot_server):
        """load_snapshot(url): a fresh host adopts a running fleet's state."""
        server, _path = snapshot_server
        port = server.server_address[1]
        repro.purge()
        report = repro.load_snapshot(f"http://127.0.0.1:{port}/snapshot")
        assert report["url"].endswith("/snapshot")
        assert report["rejected"] == 0, report
        assert report["patterns_loaded"] >= 2
        assert report["tables_loaded"] == 1
        assert report["memos_loaded"] >= 1
        assert _verdicts_now() == _oracle()

    def test_fetch_failure_degrades_to_cold_start(self):
        before = repro.stats()["snapshot"]["snapshot_rejected"]
        report = repro.load_snapshot("http://127.0.0.1:9/snapshot")  # closed port
        assert report["rejected"] == 1
        assert report["patterns_loaded"] == 0
        stats = repro.stats()["snapshot"]
        assert stats["snapshot_rejected"] == before + 1
        assert stats["rejected_reasons"].get("fetch", 0) >= 1
        assert repro.compile(ROWS_EXPR).match("abba")

    def test_failed_fetches_do_not_leak_file_descriptors(self):
        """A bootstrap retry loop against a dead fleet must not bleed fds."""
        import os

        fd_dir = "/proc/self/fd"
        if not os.path.isdir(fd_dir):  # pragma: no cover - non-Linux
            pytest.skip("needs /proc to count descriptors")
        repro.load_snapshot("http://127.0.0.1:9/snapshot")  # warm any lazy imports
        before = len(os.listdir(fd_dir))
        for _ in range(5):
            repro.load_snapshot("http://127.0.0.1:9/snapshot")
        assert len(os.listdir(fd_dir)) == before
