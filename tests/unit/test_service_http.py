"""End-to-end tests of the stdlib HTTP front end (``repro.service.http``).

A real server is booted on an ephemeral port once per module; requests go
through ``urllib`` exactly as an external client's would, so routing,
status codes, JSON envelopes and error mapping are all exercised over a
socket rather than by calling handler methods directly.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

import repro
from repro.service import ServiceHTTPServer, ValidationService

DTD_TEXT = "<!ELEMENT a (b, c?)> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>"


@pytest.fixture(scope="module")
def http_service():
    service = ValidationService(workers=4)
    server = ServiceHTTPServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield service, server.server_address[1]
    server.shutdown()
    server.server_close()
    service.close()
    thread.join(timeout=5)


@pytest.fixture(scope="module")
def server_port(http_service):
    return http_service[1]


def _get(port: int, path: str):
    try:
        with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _post(port: int, path: str, payload, raw: bytes | None = None):
    body = raw if raw is not None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=body,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestMatchEndpoint:
    def test_batch_verdicts_match_the_library(self, server_port):
        words = ["abba", "bba", "bb", "", "ab"]
        status, body = _post(server_port, "/match", {"pattern": "(ab+b(b?)a)*", "words": words})
        assert status == 200
        oracle = repro.Pattern("(ab+b(b?)a)*", compiled=False)
        assert body["verdicts"] == [oracle.match(word) for word in words]
        assert body["count"] == len(words)
        assert body["batch_path"] == "compiled-kernel"

    def test_star_free_pattern_reports_its_batch_path(self, server_port):
        status, body = _post(
            server_port, "/match", {"pattern": "(a+b)(c?)d", "words": ["acd", "bd", "dd"]}
        )
        assert status == 200
        assert body["verdicts"] == [True, True, False]
        assert body["batch_path"] == "star-free-multi"

    def test_words_may_be_symbol_lists(self, server_port):
        status, body = _post(
            server_port, "/match", {"pattern": "(ab)*", "words": [["a", "b"], ["b"]]}
        )
        assert status == 200
        assert body["verdicts"] == [True, False]

    def test_non_deterministic_pattern_is_422(self, server_port):
        status, body = _post(server_port, "/match", {"pattern": "(a*ba+bb)*", "words": ["bb"]})
        assert status == 422
        assert "deterministic" in body["error"]

    def test_syntax_error_is_400(self, server_port):
        status, body = _post(server_port, "/match", {"pattern": "((", "words": []})
        assert status == 400
        assert "error" in body

    def test_missing_fields_are_400(self, server_port):
        assert _post(server_port, "/match", {"words": ["a"]})[0] == 400
        assert _post(server_port, "/match", {"pattern": "(ab)*"})[0] == 400
        assert _post(server_port, "/match", {"pattern": "(ab)*", "words": "ab"})[0] == 400

    def test_non_string_word_entries_are_a_clean_400(self, server_port):
        """Regression (ISSUE 5): a non-string word used to surface as a
        worker-pool TypeError repr'd into the 400 body — after a wasted
        fan-out on the chunked path.  It must be rejected up front."""
        for words in (["ab", 7], [None], [["a", 3]], [{"a": 1}]):
            status, body = _post(
                server_port, "/match", {"pattern": "(ab)*", "words": words}
            )
            assert status == 400, (words, body)
            assert "TypeError" not in body["error"], body
            assert "words" in body["error"], body


class TestValidateEndpoint:
    def test_dtd_validation_with_violation_messages(self, server_port):
        status, body = _post(
            server_port,
            "/validate",
            {"dtd": DTD_TEXT, "documents": ["<a><b/></a>", "<a><c/><b/></a>"]},
        )
        assert status == 200
        assert body["schema"] == "dtd"
        assert [verdict["valid"] for verdict in body["verdicts"]] == [True, False]
        assert body["verdicts"][1]["violations"]

    def test_xsd_validation(self, server_port):
        schema = {
            "root": "a",
            "elements": {
                "a": {
                    "kind": "sequence",
                    "min": 1,
                    "max": 1,
                    "children": [
                        {"kind": "element", "name": "b", "min": 1, "max": 2},
                        {"kind": "element", "name": "c", "min": 0, "max": 1},
                    ],
                }
            },
        }
        status, body = _post(
            server_port,
            "/validate",
            {"xsd": schema, "documents": ["<a><b/><b/><c/></a>", "<a><b/><b/><b/></a>"]},
        )
        assert status == 200
        assert body["schema"] == "xsd"
        assert [verdict["valid"] for verdict in body["verdicts"]] == [True, False]

    def test_upa_violating_schema_is_422(self, server_port):
        schema = {
            "elements": {
                "a": {
                    "kind": "sequence",
                    "min": 1,
                    "max": 1,
                    "children": [
                        {"kind": "element", "name": "b", "min": 0, "max": 2},
                        {"kind": "element", "name": "b", "min": 1, "max": 1},
                    ],
                }
            }
        }
        status, body = _post(server_port, "/validate", {"xsd": schema, "documents": []})
        assert status == 422
        assert "Particle" in body["error"]

    def test_malformed_xml_is_400(self, server_port):
        status, _ = _post(server_port, "/validate", {"dtd": DTD_TEXT, "documents": ["<a><b>"]})
        assert status == 400

    def test_requires_exactly_one_schema_kind(self, server_port):
        assert _post(server_port, "/validate", {"documents": []})[0] == 400
        payload = {"dtd": DTD_TEXT, "xsd": {"elements": {}}, "documents": []}
        assert _post(server_port, "/validate", payload)[0] == 400

    def test_malformed_request_leaves_the_validator_memo_untouched(self, http_service):
        """Regression (ISSUE 5): the validator used to be built and
        *memoized* before the documents were type-checked, so a stream of
        malformed requests could evict warm validators from the bounded
        memo.  A bad request must not touch the memo at all."""
        service, port = http_service
        warm = "<!ELEMENT w (x?)> <!ELEMENT x EMPTY>"
        status, _ = _post(port, "/validate", {"dtd": warm, "documents": ["<w><x/></w>"]})
        assert status == 200
        with service._memo_lock:
            before = list(service._validators)
        assert "dtd:" + warm in before
        evictor = "<!ELEMENT e EMPTY>"
        status, body = _post(port, "/validate", {"dtd": evictor, "documents": [42]})
        assert status == 400 and "documents" in body["error"]
        with service._memo_lock:
            after = list(service._validators)
        assert after == before, "a malformed request changed the validator memo"
        assert "dtd:" + evictor not in after


class TestPlumbing:
    def test_stats_endpoint_aggregates_all_surfaces(self, server_port):
        _post(server_port, "/match", {"pattern": "(ab)*", "words": ["ab"]})
        status, body = _get(server_port, "/stats")
        assert status == 200
        assert {
            "service", "requests", "pattern_cache", "patterns", "validators", "shared_rows"
        } <= set(body)
        requests = body["requests"]
        assert requests["total"] >= 1
        assert requests["in_flight"] == 0
        assert requests["p50_ms"] is not None
        assert body["pattern_cache"]["max_size"] == repro.COMPILE_CACHE_SIZE

    def test_healthz(self, server_port):
        assert _get(server_port, "/healthz")[0] == 200

    def test_unknown_routes_are_404(self, server_port):
        assert _get(server_port, "/nope")[0] == 404
        assert _post(server_port, "/nope", {})[0] == 404

    def test_invalid_json_is_400(self, server_port):
        status, body = _post(server_port, "/match", None, raw=b"{not json")
        assert status == 400
        assert "invalid JSON" in body["error"]

    def test_non_object_body_is_400(self, server_port):
        status, _ = _post(server_port, "/match", ["a", "b"])
        assert status == 400

    def test_keep_alive_connection_survives_across_requests(self, server_port):
        import http.client

        connection = http.client.HTTPConnection("127.0.0.1", server_port)
        try:
            for _ in range(3):  # one persistent connection, three requests
                connection.request(
                    "POST",
                    "/match",
                    body=json.dumps({"pattern": "(ab)*", "words": ["ab"]}),
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                assert response.status == 200
                assert json.loads(response.read())["verdicts"] == [True]
        finally:
            connection.close()

    def test_unconsumed_body_errors_close_the_connection(self, server_port):
        """Error replies sent before the body was read must not leave the
        unread bytes to be parsed as the next request (keep-alive desync)."""
        import http.client

        body = json.dumps({"pattern": "(ab)*", "words": ["ab"]})
        connection = http.client.HTTPConnection("127.0.0.1", server_port)
        try:
            connection.request(
                "POST", "/nope", body=body, headers={"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            assert response.status == 404
            assert response.getheader("Connection") == "close"
            response.read()
        finally:
            connection.close()

    def test_concurrent_clients_get_consistent_answers(self, server_port):
        words = ["abba", "bb", "bba"]
        oracle = repro.Pattern("(ab+b(b?)a)*", compiled=False)
        expected = [oracle.match(word) for word in words]
        failures: list[object] = []

        def client():
            status, body = _post(
                server_port, "/match", {"pattern": "(ab+b(b?)a)*", "words": words}
            )
            if status != 200 or body["verdicts"] != expected:
                failures.append((status, body))

        threads = [threading.Thread(target=client) for _ in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures[0]
