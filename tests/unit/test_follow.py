"""Unit tests for the constant-time follow index (Theorem 2.4, Lemmas 2.2/2.3)."""

from repro.core.follow import FollowIndex
from repro.regex.language import LanguageOracle
from repro.regex.parse_tree import build_parse_tree


class TestFirstLastMembership:
    def test_in_first_matches_oracle(self, rng):
        from repro.regex.generators import random_expression

        for _ in range(40):
            tree = build_parse_tree(random_expression(rng, rng.randint(1, 10)))
            index = FollowIndex(tree)
            oracle = LanguageOracle(tree)
            for node in tree.nodes:
                first = oracle.first(node)
                last = oracle.last(node)
                for position in tree.positions:
                    assert index.in_first(node, position) == (position.position_index in first)
                    assert index.in_last(node, position) == (position.position_index in last)

    def test_lemma_2_3_on_figure1(self):
        tree = build_parse_tree("(c?((ab*)(a?c)))*(ba)")
        index = FollowIndex(tree)
        oracle = LanguageOracle(tree)
        body = tree.inner_root.left.left  # n2 of Figure 1
        members = {tree.positions[i] for i in oracle.first(body)}
        for position in tree.positions:
            assert index.in_first(body, position) == (position in members)


class TestCheckIfFollow:
    def test_paper_example_e0_follow_pairs(self):
        """Figure 1 discussion: p4 ∈ Follow·(p3) and p1 ∈ Follow*(p5)."""
        tree = build_parse_tree("(c?((ab*)(a?c)))*(ba)")
        index = FollowIndex(tree)
        p1, p3, p4, p5 = (tree.positions[i] for i in (1, 3, 4, 5))
        assert index.follows_via_concat(p3, p4)
        assert index.follows(p3, p4)
        assert index.follows_via_star(p5, p1)
        assert index.follows(p5, p1)
        assert not index.follows(p4, p3)

    def test_matches_oracle_on_random_expressions(self, rng):
        from repro.regex.generators import random_expression

        for _ in range(60):
            tree = build_parse_tree(random_expression(rng, rng.randint(1, 12)))
            index = FollowIndex(tree)
            oracle = LanguageOracle(tree)
            for p in tree.positions:
                for q in tree.positions:
                    assert index.follows(p, q) == oracle.follows(p, q)

    def test_position_can_follow_itself_through_a_star(self):
        tree = build_parse_tree("a*")
        index = FollowIndex(tree)
        a = tree.positions_by_symbol("a")[0]
        assert index.follows(a, a)

    def test_position_cannot_follow_itself_without_iteration(self):
        tree = build_parse_tree("ab")
        index = FollowIndex(tree)
        a = tree.positions_by_symbol("a")[0]
        assert not index.follows(a, a)

    def test_star_case_and_concat_case_can_coincide(self):
        # In (ab)*, a follows b both through the star; through-concat is false.
        tree = build_parse_tree("(ab)*")
        index = FollowIndex(tree)
        a = tree.positions_by_symbol("a")[0]
        b = tree.positions_by_symbol("b")[0]
        assert index.follows_via_star(b, a)
        assert not index.follows_via_concat(b, a)
        assert index.follows_via_concat(a, b)

    def test_follows_maybe_tolerates_none(self):
        tree = build_parse_tree("ab")
        index = FollowIndex(tree)
        assert not index.follows_maybe(tree.positions[1], None)

    def test_accepts_at(self):
        tree = build_parse_tree("ab?")
        index = FollowIndex(tree)
        a = tree.positions_by_symbol("a")[0]
        b = tree.positions_by_symbol("b")[0]
        assert index.accepts_at(a)
        assert index.accepts_at(b)
        assert not index.accepts_at(tree.start)

    def test_accepts_at_start_for_nullable_expression(self):
        tree = build_parse_tree("a*")
        index = FollowIndex(tree)
        assert index.accepts_at(tree.start)

    def test_lca_helper(self):
        tree = build_parse_tree("(ab)(cd)")
        index = FollowIndex(tree)
        a = tree.positions_by_symbol("a")[0]
        d = tree.positions_by_symbol("d")[0]
        assert index.lca(a, d) is tree.lca_naive(a, d)
