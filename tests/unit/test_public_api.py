"""Locks on the public API surface and the moved-name shims.

The ExecutionPlan refactor split ``repro.api`` into a facade plus
``repro.cache`` and ``repro.matching.plan``, and split the asyncio front
into ``aio`` / ``aio_frames`` / ``aio_run``.  These tests pin down that
none of it changed the published surface:

* ``repro.__all__`` is byte-identical to the pre-split export list;
* the signatures user code calls (``compile``, ``match``, ``Pattern``)
  are unchanged;
* internal names that moved keep their old import paths alive through
  ``DeprecationWarning`` shims resolving to the *same* objects.

The shim tests use :func:`pytest.deprecated_call`, so they still pass
under the CI diagnostics leg's ``-W error::DeprecationWarning`` — while
any first-party use of a moved path fails that leg.
"""

from __future__ import annotations

import inspect

import pytest

import repro
from repro import api, cache

EXPECTED_ALL = [
    "AlphabetError",
    "COMPILE_CACHE_SIZE",
    "CompiledRuntime",
    "DTDSyntaxError",
    "DeterminismConflict",
    "DeterminismReport",
    "DiagnosticsError",
    "FollowIndex",
    "InvalidExpressionError",
    "LexError",
    "Lexer",
    "MatchResult",
    "NotDeterministicError",
    "NumericDeterminismReport",
    "Pattern",
    "Regex",
    "Repair",
    "Token",
    "RegexSyntaxError",
    "ReproError",
    "ValidationError",
    "ValidationResult",
    "XMLSyntaxError",
    "__version__",
    "build_matcher",
    "build_parse_tree",
    "cache_stats",
    "check_deterministic",
    "check_deterministic_numeric",
    "compile",
    "is_deterministic",
    "is_deterministic_numeric",
    "iter_cached_patterns",
    "load_snapshot",
    "match",
    "parse",
    "parse_word",
    "purge",
    "resize_compile_cache",
    "save_snapshot",
    "snapshot_stats",
    "stats",
    "to_text",
]


class TestPublicSurface:
    def test_all_is_locked(self):
        assert repro.__all__ == EXPECTED_ALL

    def test_every_exported_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_compile_signature(self):
        parameters = inspect.signature(repro.compile).parameters
        assert list(parameters) == ["expr", "dialect", "strategy", "compiled"]
        assert parameters["dialect"].default == "paper"
        assert parameters["strategy"].default == "auto"
        assert parameters["compiled"].default is True

    def test_pattern_constructor_signature(self):
        parameters = inspect.signature(repro.Pattern).parameters
        assert list(parameters) == ["expr", "dialect", "strategy", "compiled"]

    def test_match_signature(self):
        parameters = inspect.signature(repro.match).parameters
        assert list(parameters) == ["expr", "word", "dialect"]

    def test_match_all_signature(self):
        parameters = inspect.signature(repro.Pattern.match_all).parameters
        assert list(parameters) == ["self", "words", "detail"]
        assert parameters["detail"].default == "verdict"

    def test_pattern_keeps_its_public_members(self):
        pattern = repro.compile("(ab+b(b?)a)*")
        for member in (
            "match",
            "match_all",
            "stream",
            "describe",
            "stats",
            "runtime_stats",
            "cache_stats",
            "acceptance_memo",
            "is_deterministic",
            "explain",
            "matcher",
            "runtime",
            "plan",
        ):
            assert hasattr(pattern, member), member


class TestMovedNameShims:
    """Old private import paths warn but still resolve to the real objects."""

    @pytest.mark.parametrize(
        ("old_name", "target"),
        sorted(api._MOVED_TO_CACHE.items()),
    )
    def test_api_to_cache_shims(self, old_name, target):
        with pytest.deprecated_call(match=f"moved to repro.cache.{target}"):
            shimmed = getattr(api, old_name)
        assert shimmed is getattr(cache, target)

    def test_aio_entry_point_shims(self):
        from repro.service import aio, aio_run

        with pytest.deprecated_call(match="moved to repro.service.aio_run"):
            shimmed = aio.serve
        assert shimmed is aio_run.serve
        with pytest.deprecated_call(match="moved to repro.service.aio_run"):
            shimmed = aio.run_prefork_worker
        assert shimmed is aio_run.run_prefork_worker

    def test_unknown_attributes_still_raise(self):
        with pytest.raises(AttributeError):
            api.no_such_name
        from repro.service import aio

        with pytest.raises(AttributeError):
            aio.no_such_name

    def test_deprecated_stats_aliases_delegate(self):
        with pytest.deprecated_call():
            assert repro.cache_stats() == repro.stats()["pattern_cache"]
        with pytest.deprecated_call():
            snapshot = repro.snapshot_stats()
        assert snapshot.keys() == repro.stats()["snapshot"].keys()
