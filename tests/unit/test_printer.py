"""Unit tests for rendering ASTs back to text."""

import pytest

from repro.regex.ast import Concat, Optional, Plus, Repeat, Star, Sym, Union
from repro.regex.parser import parse
from repro.regex.printer import paper_style_applicable, to_text


class TestPaperStyle:
    @pytest.mark.parametrize(
        "text",
        [
            "a",
            "ab",
            "a+b",
            "ab+c",
            "(a+b)c",
            "a*",
            "a?b",
            "(ab+b(b?)a)*",
            "(c?((ab*)(a?c)))*(ba)",
            "(a+b)*(c+d)?",
            "a{2,3}b",
            "a{2,}",
            "a{4}",
        ],
    )
    def test_round_trip(self, text):
        expr = parse(text)
        assert parse(to_text(expr, dialect="paper")) == expr

    def test_left_nested_concat_needs_parentheses(self):
        expr = Concat(Concat(Sym("a"), Sym("b")), Sym("c"))
        rendered = to_text(expr, dialect="paper")
        assert rendered == "(ab)c"
        assert parse(rendered) == expr

    def test_left_nested_union_needs_parentheses(self):
        expr = Union(Union(Sym("a"), Sym("b")), Sym("c"))
        rendered = to_text(expr, dialect="paper")
        assert rendered == "(a+b)+c"
        assert parse(rendered) == expr

    def test_chained_postfix_operators(self):
        expr = Optional(Star(Sym("a")))
        rendered = to_text(expr, dialect="paper")
        assert rendered == "(a*)?"
        assert parse(rendered) == expr


class TestNamedStyle:
    @pytest.mark.parametrize(
        "text",
        [
            "title author",
            "title (author | editor)+ year?",
            "section+",
            "item{2,5} note?",
        ],
    )
    def test_round_trip(self, text):
        expr = parse(text, dialect="named")
        assert parse(to_text(expr, dialect="named"), dialect="named") == expr

    def test_plus_rendering(self):
        assert to_text(Plus(Sym("author")), dialect="named") == "author+"

    def test_repeat_rendering(self):
        assert to_text(Repeat(Sym("item"), 2, None), dialect="named") == "item{2,}"
        assert to_text(Repeat(Sym("item"), 3, 3), dialect="named") == "item{3}"


class TestAutoStyle:
    def test_auto_picks_paper_for_single_characters(self):
        assert to_text(parse("ab+c")) == "ab+c"

    def test_auto_picks_named_for_identifiers(self):
        expr = parse("title author", dialect="named")
        assert to_text(expr) == "title author"

    def test_paper_style_applicable(self):
        assert paper_style_applicable(parse("ab*"))
        assert not paper_style_applicable(parse("title", dialect="named"))
        assert not paper_style_applicable(Plus(Sym("a")))

    def test_str_uses_auto_style(self):
        assert str(parse("(a+b)*")) == "(a+b)*"

    def test_unknown_dialect_raises(self):
        with pytest.raises(ValueError):
            to_text(Sym("a"), dialect="fancy")
