"""Unit tests for word sampling/enumeration and the expression generators."""

import random

import pytest

from repro.regex.generators import (
    bounded_occurrence,
    chare,
    deep_alternation,
    dtd_corpus,
    dtd_like,
    mixed_content,
    numeric_particles,
    random_deterministic_expression,
    random_expression,
    random_one_ore,
    star_free_chain,
)
from repro.regex.language import LanguageOracle
from repro.regex.parse_tree import build_parse_tree
from repro.regex.parser import parse
from repro.regex.properties import (
    alternation_depth,
    is_chare,
    is_one_ore,
    is_star_free,
    occurrence_bound,
)
from repro.regex.words import (
    enumerate_members,
    member_stream,
    mutate_word,
    non_members,
    sample_member,
    sample_members,
)


class TestSampling:
    def test_samples_are_members(self, rng):
        expr = parse("(ab+b(b?)a)*")
        oracle = LanguageOracle(build_parse_tree(expr))
        for word in sample_members(expr, 50, rng):
            assert oracle.accepts(word)

    def test_samples_cover_both_union_branches(self, rng):
        expr = parse("ab+cd")
        words = {tuple(w) for w in sample_members(expr, 60, rng)}
        assert ("a", "b") in words and ("c", "d") in words

    def test_plus_always_produces_at_least_one_iteration(self, rng):
        expr = parse("item+", dialect="named")
        for word in sample_members(expr, 30, rng):
            assert len(word) >= 1

    def test_numeric_repetition_respects_bounds(self, rng):
        expr = parse("a{2,4}")
        for word in sample_members(expr, 30, rng):
            assert 2 <= len(word) <= 4


class TestEnumeration:
    def test_enumerate_small_language(self):
        words = {tuple(w) for w in enumerate_members(parse("a?b"), 3)}
        assert words == {("b",), ("a", "b")}

    def test_enumerate_respects_length_bound(self):
        words = enumerate_members(parse("a*"), 3)
        assert {tuple(w) for w in words} == {(), ("a",), ("a", "a"), ("a", "a", "a")}

    def test_enumerate_with_word_cap(self):
        words = enumerate_members(parse("(a+b)*"), 4, max_words=5)
        assert len(words) == 5

    def test_enumeration_matches_oracle(self, rng):
        expr = random_expression(rng, 5)
        oracle = LanguageOracle(build_parse_tree(expr))
        for word in enumerate_members(expr, 4):
            assert oracle.accepts(word)


class TestStreamsAndNonMembers:
    def test_member_stream_reaches_target_length(self, rng):
        expr = mixed_content(5)
        word = member_stream(expr, 200, rng)
        assert len(word) >= 200

    def test_member_stream_for_star_free_is_member(self, rng):
        expr = star_free_chain(6)
        word = member_stream(expr, 50, rng)
        assert LanguageOracle(build_parse_tree(expr)).accepts(word)

    def test_non_members_are_rejected(self, rng):
        expr = parse("(ab)*c")
        oracle = LanguageOracle(build_parse_tree(expr))
        rejected = non_members(expr, 10, rng)
        assert rejected
        for word in rejected:
            assert not oracle.accepts(word)

    def test_mutate_word_changes_something_or_stays_word(self, rng):
        word = ["a", "b", "c"]
        mutated = mutate_word(word, ["a", "b", "c"], rng)
        assert isinstance(mutated, list)

    def test_mutate_empty_word_inserts(self, rng):
        assert mutate_word([], ["a"], rng) == ["a"]


class TestFamilies:
    def test_mixed_content_shape(self):
        expr = mixed_content(10)
        assert is_one_ore(expr)
        assert occurrence_bound(expr) == 1
        assert len(expr.symbols()) == 10

    def test_mixed_content_requires_a_symbol(self):
        with pytest.raises(ValueError):
            mixed_content(0)

    def test_chare_is_chare_and_deterministic(self):
        expr = chare(6)
        assert is_chare(expr)
        assert LanguageOracle(build_parse_tree(expr)).is_deterministic()

    def test_deep_alternation_is_deterministic_with_growing_depth(self):
        expr = deep_alternation(6)
        assert LanguageOracle(build_parse_tree(expr)).is_deterministic()
        assert alternation_depth(expr) >= 6

    def test_bounded_occurrence_is_deterministic(self):
        for k in (1, 2, 4):
            expr = bounded_occurrence(k, 3)
            assert occurrence_bound(expr) == k
            assert LanguageOracle(build_parse_tree(expr)).is_deterministic()

    def test_bounded_occurrence_rejects_bad_k(self):
        with pytest.raises(ValueError):
            bounded_occurrence(0, 2)

    def test_star_free_chain_is_star_free_and_deterministic(self):
        expr = star_free_chain(8)
        assert is_star_free(expr)
        assert LanguageOracle(build_parse_tree(expr)).is_deterministic()

    def test_numeric_particles_have_numeric_nodes(self):
        expr = numeric_particles(3)
        assert expr.has_numeric_occurrences()

    def test_random_one_ore_is_deterministic(self, rng):
        for _ in range(20):
            expr = random_one_ore(rng, rng.randint(1, 12))
            assert is_one_ore(expr)
            assert LanguageOracle(build_parse_tree(expr)).is_deterministic()

    def test_random_deterministic_expression_is_deterministic(self, rng):
        for _ in range(10):
            expr = random_deterministic_expression(rng, 6)
            assert LanguageOracle(build_parse_tree(expr)).is_deterministic()

    def test_random_expression_has_requested_leaf_count(self, rng):
        expr = random_expression(rng, 9)
        assert len(expr.positions()) == 9

    def test_random_expression_rejects_zero_leaves(self, rng):
        with pytest.raises(ValueError):
            random_expression(rng, 0)

    def test_dtd_like_models_are_mostly_chares(self, rng):
        corpus = dtd_corpus(rng, 200)
        chare_fraction = sum(1 for model in corpus if is_chare(model)) / len(corpus)
        assert chare_fraction > 0.75

    def test_dtd_like_alternation_depth_is_small(self, rng):
        for _ in range(100):
            assert alternation_depth(dtd_like(rng)) <= 4
