"""Unit tests for the batch matching kernel and its wiring.

Covers the program builder (fallback edges for unmaterialized state,
generation-keyed caching, table limits), the batch drivers (dedup fan-out,
cold→warm convergence), the ``Pattern.match_all`` / service routing, the
telemetry surfaces and the backend selection knob.  The compiled-vs-pure
equivalence lives in ``tests/property/test_kernel_properties.py``.
"""

from __future__ import annotations

import pytest

import repro
from repro.matching import CompiledRuntime, build_matcher
from repro.matching import kernel
from repro.matching.kernel import (
    MIN_BATCH,
    VERDICT_ACCEPT,
    VERDICT_FALLBACK,
    VERDICT_REJECT,
    build_program,
    match_corpus,
    match_words,
    reset_kernel_stats,
)
from repro.regex.parse_tree import build_parse_tree


@pytest.fixture(autouse=True)
def _fresh_state():
    repro.purge()
    reset_kernel_stats()
    yield
    repro.purge()
    reset_kernel_stats()


def _runtime(expr: str) -> CompiledRuntime:
    return CompiledRuntime(build_matcher(build_parse_tree(expr), verify=False))


WORDS = ["abba", "ab", "bba", "abab", "", "bb", "a", "abba", "ab", "abba"]


def _oracle(expr: str, words) -> list[bool]:
    pattern = repro.Pattern(expr, compiled=False)
    return [pattern.match(word) for word in words]


class TestBuildProgram:
    def test_cold_program_sends_everything_to_fallback(self):
        runtime = _runtime("(ab+b(b?)a)*")
        program = build_program(runtime)
        corpus = program.encode_corpus([tuple("abba"), tuple("ab")])
        verdicts = program.scan(corpus)
        assert set(verdicts) == {VERDICT_FALLBACK}

    def test_warm_program_answers_without_fallback(self):
        runtime = _runtime("(ab+b(b?)a)*")
        words = [tuple(word) for word in WORDS]
        for word in words:
            runtime.accepts_encoded(runtime.encode(word))
        program = build_program(runtime)
        corpus = program.encode_corpus(words)
        verdicts = program.scan(corpus)
        assert VERDICT_FALLBACK not in verdicts
        resolved = [verdicts[slot] == VERDICT_ACCEPT for slot in corpus.index]
        assert resolved == _oracle("(ab+b(b?)a)*", WORDS)

    def test_unknown_symbols_reject_via_the_dead_column(self):
        runtime = _runtime("(ab)*")
        runtime.accepts_encoded(runtime.encode("abab"))
        runtime.accepts_encoded(runtime.encode("ba"))
        program = build_program(runtime)
        corpus = program.encode_corpus([tuple("abzab")])
        assert program.scan(corpus)[0] == VERDICT_REJECT

    def test_table_limit_returns_none(self):
        runtime = _runtime("(ab+b(b?)a)*")
        assert build_program(runtime, max_entries=10) is None
        assert runtime.export_kernel_program(max_entries=10) is None

    def test_stride_grows_until_the_limit(self):
        runtime = _runtime("(ab)*")
        wide = build_program(runtime)
        assert wide.stride == kernel.MAX_STRIDE
        narrow = build_program(runtime, max_entries=(len(runtime._positions) + 2) * 4)
        assert narrow.stride == 1


class TestConvergence:
    def test_cold_corpus_converges_to_all_kernel(self):
        runtime = _runtime("(ab+b(b?)a)*")
        words = [tuple(word) for word in WORDS]
        verdicts, kernel_words, fallback_words = match_words(runtime, words)
        assert verdicts == _oracle("(ab+b(b?)a)*", WORDS)
        assert fallback_words > 0  # the cold pass replays through the runtime

        # The replays filled rows; the rebuilt program answers everything.
        verdicts, kernel_words, fallback_words = match_words(runtime, words)
        assert verdicts == _oracle("(ab+b(b?)a)*", WORDS)
        assert fallback_words == 0
        assert kernel_words == len(WORDS)

    def test_dedup_fans_verdicts_back_out(self):
        runtime = _runtime("(ab)*")
        words = [tuple("ab"), tuple("aa"), tuple("ab"), tuple("ab"), tuple("aa")]
        program = runtime.export_kernel_program()
        corpus = program.encode_corpus(words)
        assert len(corpus.distinct) == 2
        assert list(corpus.index) == [0, 1, 0, 0, 1]
        verdicts, _, _ = match_corpus(runtime, program, corpus)
        assert verdicts == [True, False, True, True, False]

    def test_scan_never_mutates_the_runtime(self):
        runtime = _runtime("(ab+b(b?)a)*")
        for word in WORDS:
            runtime.accepts_encoded(runtime.encode(word))
        misses_before = runtime.misses
        generation_before = runtime._generation
        program = runtime.export_kernel_program()
        corpus = program.encode_corpus([tuple(word) for word in WORDS])
        program.scan(corpus)
        assert runtime.misses == misses_before
        assert runtime._generation == generation_before


class TestProgramCache:
    def test_program_is_cached_per_generation(self):
        runtime = _runtime("(ab)*")
        first = runtime.export_kernel_program()
        assert runtime.export_kernel_program() is first
        runtime.accepts_encoded(runtime.encode("ab"))  # bumps the generation
        rebuilt = runtime.export_kernel_program()
        assert rebuilt is not first
        assert runtime.kernel_programs_built == 2

    def test_rebuild_inherits_the_encode_cache(self):
        runtime = _runtime("(ab)*")
        first = runtime.export_kernel_program()
        first.encode_corpus([tuple("ab")])
        assert first._encode_cache
        runtime.accepts_encoded(runtime.encode("ab"))
        rebuilt = runtime.export_kernel_program()
        assert rebuilt._encode_cache is first._encode_cache

    def test_strides_cache_independently(self):
        runtime = _runtime("(ab)*")
        wide = runtime.export_kernel_program()
        narrow = runtime.export_kernel_program(max_stride=1)
        assert wide.stride > narrow.stride
        assert runtime.export_kernel_program(max_stride=1) is narrow

    def test_adopted_rows_yield_a_program_without_a_matcher(self):
        donor = _runtime("(ab+b(b?)a)*")
        for word in WORDS:
            donor.accepts_encoded(donor.encode(word))
        export = donor.export_rows(complete=True)

        def explode():
            raise AssertionError("matcher must stay deferred")

        adopter = CompiledRuntime(tree=build_parse_tree("(ab+b(b?)a)*"), matcher_factory=explode)
        adopter.adopt_rows(export["accepts"], export["rows"])
        words = [tuple(word) for word in WORDS]
        verdicts, _, fallback_words = match_words(adopter, words)
        assert verdicts == _oracle("(ab+b(b?)a)*", WORDS)
        assert fallback_words == 0


class TestPatternRouting:
    def test_match_all_routes_through_the_kernel(self):
        pattern = repro.compile("(ab+b(b?)a)*")
        assert pattern.describe()["batch_path"] == "compiled-kernel"
        assert pattern.match_all(WORDS) == _oracle("(ab+b(b?)a)*", WORDS)
        stats = pattern.stats()
        assert stats["kernel_words"] + stats["kernel_fallback_words"] == len(WORDS)
        assert stats["kernel_programs"] >= 1

    def test_small_batches_stay_on_the_per_word_driver(self):
        pattern = repro.compile("(ab)*")
        few = ["ab", "aba"]
        assert len(few) < MIN_BATCH
        assert pattern.match_all(few) == [True, False]
        assert pattern.stats()["kernel_programs"] == 0

    def test_small_batches_use_a_program_once_cached(self):
        pattern = repro.compile("(ab)*")
        pattern.match_all(["ab" * n for n in range(MIN_BATCH)])  # builds the program
        built = pattern.stats()["kernel_programs"]
        assert built >= 1
        kernel_words_before = pattern.stats()["kernel_words"]
        assert pattern.match_all(["ab", "aba"]) == [True, False]
        assert pattern.stats()["kernel_words"] > kernel_words_before

    def test_star_free_patterns_keep_the_multi_matcher_path(self):
        pattern = repro.compile("(a+b)(c?)d")
        assert pattern.describe()["batch_path"] == "star-free-multi"
        assert pattern.match_all(["acd", "bd", "dd"]) == [True, True, False]
        assert pattern.stats() is None or pattern.stats()["kernel_words"] == 0

    def test_match_all_agrees_with_match_on_rejecting_traffic(self):
        pattern = repro.compile("(ab+b(b?)a)*")
        words = ["abba", "zz", "ba" * 40, "ab" * 17, "b" * 9]
        assert pattern.match_all(words) == [pattern.match(word) for word in words]


class TestTelemetry:
    def test_kernel_stats_shape(self):
        stats = kernel.stats()
        for key in (
            "programs_built",
            "corpora_encoded",
            "kernel_words",
            "fallback_words",
            "requested",
            "native_available",
            "backend",
        ):
            assert key in stats
        assert stats["backend"] in ("pure", "native")

    def test_batch_traffic_bumps_the_module_counters(self):
        runtime = _runtime("(ab)*")
        match_words(runtime, [tuple("ab")] * MIN_BATCH)
        stats = kernel.stats()
        assert stats["programs_built"] >= 1
        assert stats["corpora_encoded"] >= 1
        assert stats["kernel_words"] + stats["fallback_words"] == MIN_BATCH

    def test_service_stats_include_the_kernel_block(self):
        from repro.service.core import ValidationService

        with ValidationService(workers=2) as service:
            stats = service.stats()
        assert "kernel" in stats
        assert "backend" in stats["kernel"]


class TestBackendSelection:
    def test_env_knob_forces_pure(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "pure")
        assert kernel.requested_backend() == "pure"
        assert kernel._effective_backend() == "pure"

    def test_invalid_env_value_falls_back_to_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "turbo")
        assert kernel.requested_backend() == "auto"

    def test_pure_scan_is_used_when_forced(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "pure")
        runtime = _runtime("(ab)*")
        words = [tuple("ab"), tuple("ba")] * 4
        verdicts, _, _ = match_words(runtime, words)
        assert verdicts == [True, False] * 4
