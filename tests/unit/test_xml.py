"""Unit tests for the XML layer: documents, parser, DTDs, XSD particles, validation."""

import pytest

from repro.errors import DTDSyntaxError, NotDeterministicError, XMLSyntaxError
from repro.regex.ast import Concat, Optional, Plus, Star, Sym, Union
from repro.xml import (
    DTD,
    DTDValidator,
    Element,
    XSDSchema,
    choice,
    content_model_expression,
    dtd_to_text,
    element,
    element_particle,
    parse_content_model,
    parse_document,
    parse_dtd,
    parse_xml,
    sequence,
)


class TestDocumentModel:
    def test_child_sequence(self):
        book = element("book", element("title"), element("author"), element("author"))
        assert book.child_sequence() == ["title", "author", "author"]

    def test_iter_and_find(self):
        doc = element("a", element("b", element("c")), element("d"))
        assert [node.name for node in doc.iter_elements()] == ["a", "b", "c", "d"]
        assert doc.find("c").name == "c"
        assert doc.find("missing") is None
        assert len(doc.find_all("b")) == 1

    def test_size_and_text(self):
        node = element("p", text="hello")
        assert node.size() == 1
        assert node.has_text()

    def test_serialisation_round_trip(self):
        root = element("book", element("title", text="T & Co"), element("note"), lang="en")
        text = root.to_xml()
        parsed = parse_document('<?xml version="1.0"?>\n' + text)
        assert parsed.root.name == "book"
        assert parsed.root.attributes == {"lang": "en"}
        assert parsed.root.children[0].text == "T & Co"


class TestXMLParser:
    def test_simple_document(self):
        doc = parse_document("<a><b x='1'/><c>text</c></a>")
        assert doc.root.name == "a"
        assert doc.root.children[0].attributes == {"x": "1"}
        assert doc.root.children[1].text == "text"

    def test_prolog_comments_and_cdata(self):
        doc = parse_xml(
            "<?xml version='1.0'?><!-- c --><root><![CDATA[<raw>]]><child/></root>"
        )
        assert doc.document.root.text == "<raw>"
        assert doc.document.root.children[0].name == "child"

    def test_doctype_with_internal_subset(self):
        parsed = parse_xml(
            "<!DOCTYPE book [<!ELEMENT book (title)><!ELEMENT title (#PCDATA)>]>"
            "<book><title/></book>"
        )
        assert parsed.doctype_name == "book"
        assert "<!ELEMENT book" in parsed.internal_subset

    def test_entities_are_decoded(self):
        doc = parse_document("<a b='&lt;&amp;&gt;'>&quot;x&apos;</a>")
        assert doc.root.attributes["b"] == "<&>"
        assert doc.root.text == '"x\''

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "<a>",
            "<a></b>",
            "<a><b></a></b>",
            "<a/><b/>",
            "<a x=1/>",
            "<!-- unterminated <a/>",
        ],
    )
    def test_malformed_documents_raise(self, text):
        with pytest.raises(XMLSyntaxError):
            parse_xml(text)

    def test_error_positions(self):
        with pytest.raises(XMLSyntaxError) as excinfo:
            parse_xml("<a>\n  <b>\n</a>")
        assert excinfo.value.line >= 2


class TestContentModels:
    def test_empty_and_any(self):
        assert parse_content_model("EMPTY").kind == "empty"
        assert parse_content_model("ANY").kind == "any"

    def test_mixed_content(self):
        model = parse_content_model("(#PCDATA | em | strong)*")
        assert model.kind == "mixed"
        assert model.mixed_names == ("em", "strong")
        assert model.allows_text
        expression = content_model_expression(model)
        assert isinstance(expression, Star)

    def test_pcdata_only(self):
        model = parse_content_model("(#PCDATA)")
        assert model.kind == "mixed"
        assert model.mixed_names == ()
        assert content_model_expression(model) is None

    def test_element_content(self):
        model = parse_content_model("(title, author+, chapter*)")
        assert model.kind == "children"
        expression = model.expression
        assert isinstance(expression, Concat)
        assert expression.positions() == ["title", "author", "chapter"]

    def test_choice_content(self):
        model = parse_content_model("(para | figure | table)?")
        assert isinstance(model.expression, Optional)

    def test_nested_groups(self):
        model = parse_content_model("((head, body) | frameset)")
        assert isinstance(model.expression, Union)

    @pytest.mark.parametrize("text", ["", "(a,,b)", "(a | b,c)", "(a", "(#PCDATA | 1bad)*", "a b"])
    def test_malformed_content_models_raise(self, text):
        with pytest.raises(DTDSyntaxError):
            parse_content_model(text)

    def test_mixing_separators_rejected(self):
        with pytest.raises(DTDSyntaxError):
            parse_content_model("(a, b | c)")


class TestDTD:
    DTD_TEXT = """
    <!-- a small book DTD -->
    <!ELEMENT book (title, author+, chapter*)>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT author (#PCDATA)>
    <!ELEMENT chapter (title, (para | figure)*)>
    <!ELEMENT para (#PCDATA)>
    <!ELEMENT figure EMPTY>
    <!ATTLIST figure src CDATA #REQUIRED>
    """

    def test_parse_dtd(self):
        dtd = parse_dtd(self.DTD_TEXT)
        assert set(dtd.declared_names()) == {"book", "title", "author", "chapter", "para", "figure"}
        assert dtd.root == "book"
        assert dtd.content_model("figure").kind == "empty"

    def test_declare_accepts_text_ast_and_model(self):
        dtd = DTD()
        dtd.declare("a", "(b, c?)")
        dtd.declare("b", Concat(Sym("x"), Plus(Sym("y"))))
        dtd.declare("c", parse_content_model("ANY"))
        assert dtd.content_model("a").kind == "children"
        assert dtd.content_model("c").kind == "any"

    def test_content_expressions_iteration(self):
        dtd = parse_dtd(self.DTD_TEXT)
        names = {name for name, _ in dtd.content_expressions()}
        assert "book" in names and "chapter" in names
        assert "figure" not in names  # EMPTY has no expression

    def test_round_trip_to_text(self):
        dtd = parse_dtd(self.DTD_TEXT)
        text = dtd_to_text(dtd)
        reparsed = parse_dtd(text)
        assert set(reparsed.declared_names()) == set(dtd.declared_names())
        assert reparsed.content_model("book").expression == dtd.content_model("book").expression


class TestDTDValidator:
    def _dtd(self):
        return parse_dtd(TestDTD.DTD_TEXT)

    def _valid_doc(self):
        return element(
            "book",
            element("title", text="T"),
            element("author", text="A"),
            element("chapter", element("title"), element("para"), element("figure")),
        )

    def test_valid_document(self):
        validator = DTDValidator(self._dtd())
        assert validator.is_valid(self._valid_doc())

    def test_wrong_child_order(self):
        validator = DTDValidator(self._dtd())
        doc = element("book", element("author"), element("title"))
        violations = validator.validate(doc)
        assert not violations.valid and violations[0].kind == "content"
        assert "book" in violations[0].describe()

    def test_missing_required_child(self):
        validator = DTDValidator(self._dtd())
        doc = element("book", element("title"))
        assert not validator.is_valid(doc)

    def test_empty_element_must_be_empty(self):
        validator = DTDValidator(self._dtd())
        doc = self._valid_doc()
        doc.children[2].children[2].append(element("para"))
        assert not validator.is_valid(doc)

    def test_unexpected_text(self):
        validator = DTDValidator(self._dtd())
        doc = self._valid_doc()
        doc.children[2].text = "loose text"
        violations = validator.validate(doc)
        assert any(v.kind == "unexpected-text" for v in violations)

    def test_undeclared_elements_in_strict_mode(self):
        validator = DTDValidator(self._dtd(), strict=True)
        doc = element("book", element("title"), element("author"), element("preface"))
        kinds = {v.kind for v in validator.validate(doc)}
        assert "undeclared" in kinds

    def test_non_deterministic_content_model_rejected(self):
        dtd = DTD()
        dtd.declare("bad", "((a, b) | (a, c))")
        with pytest.raises(NotDeterministicError):
            DTDValidator(dtd)

    def test_plus_under_star_content_model_is_accepted(self):
        """A content model like ((a+ , b) | c)* is deterministic in the DTD
        sense even though the E E* rewriting of the '+' is Glushkov-ambiguous;
        the validator must accept it and still validate correctly."""
        dtd = DTD()
        dtd.declare("root", "((a+, b) | c)*")
        dtd.declare("a", "EMPTY")
        dtd.declare("b", "EMPTY")
        dtd.declare("c", "EMPTY")
        validator = DTDValidator(dtd)
        good = element("root", element("a"), element("a"), element("b"), element("c"))
        bad = element("root", element("a"), element("c"))
        assert validator.is_valid(good)
        assert not validator.is_valid(bad)

    def test_streaming_checker(self):
        validator = DTDValidator(self._dtd())
        checker = validator.checker_for("book")
        assert checker.feed("title")
        assert not checker.complete()  # author is still required
        assert checker.feed("author")
        assert checker.complete()
        assert checker.feed("chapter")
        assert checker.complete()
        assert not checker.feed("title")
        assert checker.consumed == 3

    def test_checker_for_unconstrained_model(self):
        validator = DTDValidator(self._dtd())
        assert validator.checker_for("figure") is None


class TestXSD:
    def _schema(self):
        schema = XSDSchema(root="order")
        schema.declare(
            "order",
            sequence(element_particle("item", 1, None), element_particle("note", 0, 1)),
        )
        schema.declare(
            "item",
            sequence(element_particle("sku"), element_particle("qty", 1, 3)),
        )
        return schema

    def test_particle_to_regex_and_describe(self):
        particle = sequence(
            element_particle("a", 2, 4), choice(element_particle("b"), element_particle("c"))
        )
        expression = particle.to_regex()
        assert expression.positions() == ["a", "b", "c"]
        assert "{2,4}" in particle.describe()

    def test_invalid_particles_rejected(self):
        from repro.errors import InvalidExpressionError

        with pytest.raises(InvalidExpressionError):
            element_particle("a", 3, 2)
        with pytest.raises(InvalidExpressionError):
            sequence()

    def test_unique_particle_attribution(self):
        schema = self._schema()
        assert schema.is_valid_schema()
        reports = schema.check_unique_particle_attribution()
        assert set(reports) == {"order", "item"}

    def test_upa_violation_detected(self):
        schema = XSDSchema()
        schema.declare(
            "bad",
            sequence(element_particle("a", 1, 2), element_particle("a", 1, 1)),
        )
        assert not schema.is_valid_schema()

    def test_validate_children_and_element(self):
        schema = self._schema()
        assert schema.validate_children("item", ["sku", "qty", "qty"])
        assert not schema.validate_children("item", ["qty"])
        order = element("order", element("item", element("sku"), element("qty")), element("note"))
        assert schema.validate_element(order)
        assert schema.validate_children("undeclared", ["anything"])
