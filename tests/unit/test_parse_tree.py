"""Unit tests for the annotated parse tree (R1 wrapping, pointers, numbering)."""

import pytest

from repro.errors import InvalidExpressionError
from repro.regex.alphabet import END_SENTINEL, START_SENTINEL
from repro.regex.ast import Epsilon, Sym, concat, star, sym, union
from repro.regex.parse_tree import NodeKind, build_parse_tree, tree_from_text


class TestStructure:
    def test_r1_wrapping(self):
        tree = build_parse_tree("a")
        assert tree.root.kind is NodeKind.CONCAT
        assert tree.positions[0].symbol == START_SENTINEL
        assert tree.positions[-1].symbol == END_SENTINEL
        assert tree.start is tree.positions[0]
        assert tree.end is tree.positions[-1]

    def test_positions_are_in_document_order(self):
        tree = build_parse_tree("(ab+b(b?)a)*")
        inner = [p.symbol for p in tree.positions[1:-1]]
        assert inner == ["a", "b", "b", "b", "a"]

    def test_position_indices_are_consecutive(self):
        tree = build_parse_tree("(ab+c)*d")
        assert [p.position_index for p in tree.positions] == list(range(len(tree.positions)))

    def test_node_indices_match_list(self):
        tree = build_parse_tree("(a+b)c*")
        for index, node in enumerate(tree.nodes):
            assert node.index == index

    def test_alphabet_excludes_sentinels(self):
        tree = build_parse_tree("ab+a")
        assert sorted(tree.alphabet) == ["a", "b"]

    def test_size_is_linear_in_positions(self):
        # Restrictions (R2)/(R3) guarantee |e| = O(|Pos(e)|).
        tree = build_parse_tree("((a?)*)*b")
        assert tree.size <= 4 * tree.num_positions

    def test_empty_expression(self):
        tree = build_parse_tree(Epsilon())
        assert tree.inner_root is None
        assert [p.symbol for p in tree.positions] == [START_SENTINEL, END_SENTINEL]

    def test_sentinel_symbols_rejected_in_user_expressions(self):
        with pytest.raises(InvalidExpressionError):
            build_parse_tree(Sym("#"))

    def test_positions_by_symbol(self):
        tree = build_parse_tree("aba")
        assert [p.position_index for p in tree.positions_by_symbol("a")] == [1, 3]
        assert tree.positions_by_symbol("z") == []

    def test_occurrence_count(self):
        assert build_parse_tree("aba").occurrence_count() == 2
        assert build_parse_tree("abc").occurrence_count() == 1

    def test_named_dialect_entry_point(self):
        tree = build_parse_tree("title author+", dialect="named")
        assert "title" in tree.alphabet and "author" in tree.alphabet


class TestAncestorsAndDepth:
    def test_ancestor_test_is_reflexive(self):
        tree = build_parse_tree("ab*")
        for node in tree.nodes:
            assert node.is_ancestor_of(node)
            assert not node.is_strict_ancestor_of(node)

    def test_ancestor_test_matches_parent_chain(self):
        tree = build_parse_tree("(a+b)*(c?d)")
        for node in tree.nodes:
            walker = node
            ancestors = set()
            while walker is not None:
                ancestors.add(walker.index)
                walker = walker.parent
            for other in tree.nodes:
                assert other.is_ancestor_of(node) == (other.index in ancestors)

    def test_depths_increase_by_one(self):
        tree = build_parse_tree("(ab+c)*")
        for node in tree.nodes:
            if node.parent is not None:
                assert node.depth == node.parent.depth + 1

    def test_lca_naive(self):
        tree = build_parse_tree("(ab)(cd)")
        a = tree.positions_by_symbol("a")[0]
        b = tree.positions_by_symbol("b")[0]
        d = tree.positions_by_symbol("d")[0]
        assert tree.lca_naive(a, b).kind is NodeKind.CONCAT
        assert tree.lca_naive(a, a) is a
        assert tree.lca_naive(a, d).is_ancestor_of(b)


class TestAnnotations:
    def test_nullability(self):
        tree = build_parse_tree("a*b?")
        star_node = next(n for n in tree.nodes if n.kind is NodeKind.STAR)
        optional_node = next(n for n in tree.nodes if n.kind is NodeKind.OPTIONAL)
        assert star_node.nullable and optional_node.nullable
        assert tree.inner_root.nullable  # a*b? is nullable
        assert not tree.root.nullable  # the sentinels are not

    def test_sup_first_flag(self):
        # In ab, the b position is a SupFirst node (right child of a concat
        # whose left sibling a is non-nullable).
        tree = build_parse_tree("ab")
        b = tree.positions_by_symbol("b")[0]
        a = tree.positions_by_symbol("a")[0]
        assert b.sup_first
        assert a.sup_last
        assert not a.sup_first

    def test_sup_first_not_set_for_nullable_left_sibling(self):
        tree = build_parse_tree("a?b")
        b = tree.positions_by_symbol("b")[0]
        assert not b.sup_first

    def test_p_sup_first_points_to_lowest_flagged_ancestor(self):
        tree = build_parse_tree("ab")
        b = tree.positions_by_symbol("b")[0]
        assert b.p_sup_first is b
        a = tree.positions_by_symbol("a")[0]
        # a has no SupFirst ancestor below the wrapper: it is in First(e').
        assert a.p_sup_first is not None
        assert a.p_sup_first.is_ancestor_of(a)

    def test_start_sentinel_has_no_sup_first(self):
        tree = build_parse_tree("ab")
        assert tree.start.p_sup_first is None
        assert tree.end.p_sup_last is None

    def test_every_inner_position_has_both_pointers(self):
        tree = build_parse_tree("(c?((ab*)(a?c)))*(ba)")
        for position in tree.positions[1:-1]:
            assert position.p_sup_first is not None
            assert position.p_sup_last is not None

    def test_p_star_points_to_lowest_iteration(self):
        tree = build_parse_tree("(ab*)*")
        b = tree.positions_by_symbol("b")[0]
        inner_star = b.parent
        assert inner_star.kind is NodeKind.STAR
        assert b.p_star is inner_star
        a = tree.positions_by_symbol("a")[0]
        outer_star = a.p_star
        assert outer_star.kind is NodeKind.STAR
        assert outer_star.is_strict_ancestor_of(inner_star)

    def test_p_star_is_none_for_star_free(self):
        tree = build_parse_tree("ab?c")
        for position in tree.positions:
            assert position.p_star is None

    def test_figure1_top_level_flags(self):
        """In Figure 1's expression the first factor ``(c?((ab*)(a?c)))*`` is a
        SupLast node (its right sibling ``(ba)`` is non-nullable) while the
        ``(ba)`` factor is *not* SupFirst (its left sibling, the star, is
        nullable)."""
        tree = build_parse_tree("(c?((ab*)(a?c)))*(ba)")
        inner = tree.inner_root
        assert inner.kind is NodeKind.CONCAT
        assert inner.left.kind is NodeKind.STAR
        assert inner.left.sup_last
        assert not inner.right.sup_first
