"""Unit tests for determinism with numeric occurrence indicators (Section 3.3)."""

import pytest

from repro.core.numeric import (
    NumericDeterminismChecker,
    check_deterministic_numeric,
    is_deterministic_numeric,
)
from repro.regex.ast import Repeat, Sym, concat, repeat, sym, union
from repro.regex.parser import parse


class TestPaperExamples:
    def test_rigid_counter_example_is_deterministic(self):
        """Section 3.3: (ab)^{2..2} a (b+d) is deterministic."""
        assert is_deterministic_numeric("(ab){2}a(b+d)")

    def test_flexible_counter_example_is_not(self):
        """Section 3.3: (ab)^{1..2} a is not deterministic (word aba)."""
        assert not is_deterministic_numeric("(ab){1,2}a")

    def test_nested_interaction_e5(self):
        """Section 3.3 / [19]: ((a^{2..3}+b)^2)^2 b is non-deterministic (word a^8 b)."""
        assert not is_deterministic_numeric("((a{2,3}+b){2}){2}b")

    def test_plain_deterministic_expression(self):
        assert is_deterministic_numeric("(ab+b(b?)a)*")

    def test_plain_non_deterministic_expression(self):
        assert not is_deterministic_numeric("(a*ba+bb)*")


class TestFlexibility:
    def test_star_is_flexible(self):
        checker = NumericDeterminismChecker("(ab)*")
        assert checker.flexibility() == [(0, None, True)]

    def test_range_with_slack_is_flexible(self):
        checker = NumericDeterminismChecker("(ab){1,2}")
        assert checker.flexibility() == [(1, 2, True)]

    def test_exact_counter_on_anchored_body_is_rigid(self):
        checker = NumericDeterminismChecker("(ab){2}")
        assert checker.flexibility() == [(2, 2, False)]

    def test_exact_counter_on_count_ambiguous_body_is_flexible(self):
        checker = NumericDeterminismChecker("(a{2,3}){2}")
        flags = dict(((low, high), flexible) for low, high, flexible in checker.flexibility())
        assert flags[(2, 2)] is True

    def test_exact_counter_on_nullable_body_is_flexible(self):
        checker = NumericDeterminismChecker(Repeat(parse("a?"), 2, 2))
        assert any(flexible for _, _, flexible in checker.flexibility())

    def test_counter_with_anchoring_symbol_stays_rigid_despite_inner_flexibility(self):
        checker = NumericDeterminismChecker("(a{2,3}b){2}")
        flags = {(low, high): flexible for low, high, flexible in checker.flexibility()}
        assert flags[(2, 2)] is False
        assert flags[(2, 3)] is True

    def test_optional_is_not_flexible(self):
        checker = NumericDeterminismChecker("(ab)?")
        assert checker.flexibility() == [(0, 1, False)]


class TestCounterCases:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("a{3}a", True),            # the counter forces loop/exit, never a choice
            ("a{2,3}a", False),         # at count 2 both loop and exit read an a
            ("a{2,}a", False),
            ("(a{2,3}b){2}a", True),    # the b anchors the iteration count
            ("(a{2,3}b){2}b", True),    # loop needs an a, exit needs a b
            ("(ab?){3}b", False),       # at the third a both b's are readable
            ("(ab){3}(ab)", True),      # the counter always forces loop or exit
            ("a{0,2}b", True),
            ("(a+b){2}(c+d)", True),
            ("(a+b){1,2}(a+d)", False),
            ("(ab){2}", True),
            ("(a?b){2}a", True),
        ],
    )
    def test_handpicked(self, text, expected):
        assert is_deterministic_numeric(text) is expected

    def test_report_carries_a_conflict(self):
        report = check_deterministic_numeric("(ab){1,2}a")
        assert not report.deterministic
        conflict = report.conflict
        assert conflict is not None
        assert conflict.first.symbol == conflict.second.symbol == "a"
        assert "compete" in report.describe()

    def test_deterministic_report_description(self):
        report = check_deterministic_numeric("(ab){2}c")
        assert report.deterministic
        assert "deterministic" in report.describe()


class TestAgreementWithPlainChecker:
    def test_matches_linear_test_on_plus_free_expressions(self, rng):
        from repro.core.determinism import is_deterministic
        from repro.regex.ast import Plus
        from repro.regex.generators import random_expression

        checked = 0
        for _ in range(200):
            expr = random_expression(rng, rng.randint(1, 9))
            if any(isinstance(node, Plus) for node in expr.iter_nodes()):
                continue  # '+' deliberately uses the native semantics (see api.Pattern)
            checked += 1
            assert is_deterministic_numeric(expr) == is_deterministic(expr), str(expr)
        assert checked > 80

    def test_accepts_ast_input(self):
        particle = concat(repeat(concat(sym("a"), sym("b")), 2, 4), sym("c"))
        assert is_deterministic_numeric(particle)

    def test_shared_ast_subtrees_get_distinct_positions(self):
        shared = Sym("a")
        expr = concat(shared, shared)
        checker = NumericDeterminismChecker(expr)
        assert len(checker.positions) == 2


class TestFollowEdgeProvenance:
    """Regression: conflicts between a counter's loop edge and an enclosing
    iterator's restart edge must be detected.

    ``((d{2,3})+)*`` on ``ddd``: after two d's the inner counter can loop
    (toward 3) or exit and let the enclosing ``+``/``*`` restart it — both
    read a d, so the expression is not deterministic.  The checker once
    collapsed those two follow edges into one (same position pair) and
    missed the conflict; edges now carry their owning-loop provenance.
    """

    def test_flexible_counter_under_an_iterator_is_not_deterministic(self):
        from repro.regex.ast import plus, star

        inner = repeat(sym("d"), 2, 3)
        assert not is_deterministic_numeric(star(plus(inner)))
        assert not is_deterministic_numeric(star(inner))
        assert not is_deterministic_numeric(plus(inner))

    def test_rigid_counter_under_an_iterator_stays_deterministic(self):
        from repro.regex.ast import plus, star

        assert is_deterministic_numeric(star(repeat(sym("d"), 2, 2)))
        assert is_deterministic_numeric(star(plus(concat(sym("d"), sym("d")))))

    def test_plain_iterators_keep_their_native_semantics(self):
        from repro.regex.ast import plus, star

        assert is_deterministic_numeric(star(star(sym("d"))))
        assert is_deterministic_numeric(plus(plus(sym("d"))))
        assert is_deterministic_numeric("d{2,3}")

    def test_conflict_report_names_the_symbol(self):
        from repro.regex.ast import star

        report = check_deterministic_numeric(star(repeat(sym("d"), 2, 3)))
        assert not report.deterministic
        assert report.conflict is not None
        assert report.conflict.first.symbol == report.conflict.second.symbol == "d"
