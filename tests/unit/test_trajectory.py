"""The perf-trajectory merger (benchmarks/trajectory.py) used by CI.

Loaded straight from its file path: ``benchmarks/`` is not importable
from the tier-1 run (testpaths pins collection to ``tests/``), but the
merger must stay a plain stdlib script so the CI job can run it with the
runner's bare python.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

TRAJECTORY_PATH = Path(__file__).resolve().parents[2] / "benchmarks" / "trajectory.py"

_spec = importlib.util.spec_from_file_location("bench_trajectory", TRAJECTORY_PATH)
trajectory = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(trajectory)


def _bench_file(path: Path, names_and_medians: dict[str, float], rounds: int = 5) -> Path:
    path.write_text(
        json.dumps(
            {
                "benchmarks": [
                    {
                        "name": name,
                        "stats": {
                            "median": median,
                            "mean": median * 1.1,
                            "ops": 1.0 / median,
                            "rounds": rounds,
                        },
                    }
                    for name, median in names_and_medians.items()
                ]
            }
        )
    )
    return path


def test_merge_combines_all_artifacts(tmp_path):
    first = _bench_file(tmp_path / "BENCH_runtime.json", {"test_compiled": 0.002})
    second = _bench_file(tmp_path / "BENCH_service.json", {"test_batch": 0.5})
    merged = trajectory.merge([first, second])
    assert set(merged["benchmarks"]) == {"test_compiled", "test_batch"}
    assert merged["benchmarks"]["test_batch"]["median_s"] == 0.5
    assert merged["benchmarks"]["test_compiled"]["source"] == "BENCH_runtime.json"
    assert len(merged["sources"]) == 2 and not merged["skipped"]


def test_merge_prefers_better_sampled_duplicates(tmp_path):
    sparse = _bench_file(tmp_path / "a.json", {"test_x": 1.0}, rounds=2)
    dense = _bench_file(tmp_path / "b.json", {"test_x": 2.0}, rounds=9)
    merged = trajectory.merge([sparse, dense])
    assert merged["benchmarks"]["test_x"]["median_s"] == 2.0
    assert merged["benchmarks"]["test_x"]["rounds"] == 9


def test_merge_skips_non_benchmark_files(tmp_path):
    good = _bench_file(tmp_path / "BENCH_ok.json", {"test_y": 0.25})
    garbage = tmp_path / "noise.json"
    garbage.write_text("{not json")
    missing = tmp_path / "never-written.json"
    merged = trajectory.merge([good, garbage, missing])
    assert set(merged["benchmarks"]) == {"test_y"}
    assert len(merged["skipped"]) == 2


def test_markdown_table_lists_every_benchmark(tmp_path):
    source = _bench_file(
        tmp_path / "BENCH_all.json", {"test_fast": 0.000004, "test_slow": 2.5}
    )
    merged = trajectory.merge([source])
    table = trajectory.to_markdown(merged)
    assert "| `test_fast` | 4.000 µs |" in table
    assert "| `test_slow` | 2.500 s |" in table
    assert table.startswith("## Benchmark trajectory")


def test_main_writes_merged_artifact(tmp_path, capsys, monkeypatch):
    source = _bench_file(tmp_path / "BENCH_one.json", {"test_z": 0.125})
    out = tmp_path / "BENCH_trajectory.json"
    exit_code = trajectory.main([str(source), "--out", str(out), "--markdown"])
    assert exit_code == 0
    merged = json.loads(out.read_text())
    assert merged["benchmarks"]["test_z"]["median_s"] == 0.125
    assert "test_z" in capsys.readouterr().out


def test_main_fails_loudly_on_empty_input(tmp_path):
    garbage = tmp_path / "noise.json"
    garbage.write_text("[]")
    out = tmp_path / "BENCH_trajectory.json"
    assert trajectory.main([str(garbage), "--out", str(out)]) == 1


def test_merge_flags_artifacts_with_zero_benchmarks(tmp_path):
    """A leg that ran with benchmarks disabled writes `"benchmarks": []`.

    It must surface in ``empty`` (and the markdown warning) instead of
    silently counting as a merged source — this was how whole legs went
    missing from the trajectory without failing anything.
    """
    good = _bench_file(tmp_path / "BENCH_ok.json", {"test_y": 0.25})
    hollow = tmp_path / "BENCH_disabled.json"
    hollow.write_text(json.dumps({"benchmarks": []}))
    merged = trajectory.merge([good, hollow])
    assert merged["empty"] == [str(hollow)]
    assert len(merged["sources"]) == 2
    assert "zero benchmarks" in trajectory.to_markdown(merged)


def test_main_min_files_guard_fails_when_a_leg_is_missing(tmp_path):
    good = _bench_file(tmp_path / "BENCH_ok.json", {"test_y": 0.25})
    out = tmp_path / "BENCH_trajectory.json"
    assert trajectory.main([str(good), "--out", str(out), "--min-files", "2"]) == 1
    # The partial artifact is still written for post-mortems.
    assert json.loads(out.read_text())["benchmarks"]


def test_main_min_files_guard_ignores_empty_artifacts(tmp_path):
    good = _bench_file(tmp_path / "BENCH_ok.json", {"test_y": 0.25})
    hollow = tmp_path / "BENCH_disabled.json"
    hollow.write_text(json.dumps({"benchmarks": []}))
    out = tmp_path / "BENCH_trajectory.json"
    argv = [str(good), str(hollow), "--out", str(out), "--min-files", "2"]
    assert trajectory.main(argv) == 1
    argv[-1] = "1"
    assert trajectory.main(argv) == 0
