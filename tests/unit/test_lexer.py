"""Unit tests for the kernel-backed longest-match lexer."""

from __future__ import annotations

import pytest

from repro.errors import LexError, NotDeterministicError
from repro.lexer import Lexer, Token
from repro.regex.ast import plus, sym, union

DIGITS = union(*[sym(ch) for ch in "0123456789"])
LETTERS = union(*[sym(ch) for ch in "abcdefghijklmnopqrstuvwxyz"])


def _word_lexer() -> Lexer:
    return Lexer(
        [
            ("NUM", plus(DIGITS)),
            ("WORD", plus(LETTERS)),
            ("SPACE", plus(sym(" "))),
        ]
    )


class TestTokenization:
    def test_basic_token_stream(self):
        tokens = _word_lexer().tokenize("abc 42 de1")
        assert [(t.tag, t.text) for t in tokens] == [
            ("WORD", "abc"),
            ("SPACE", " "),
            ("NUM", "42"),
            ("SPACE", " "),
            ("WORD", "de"),
            ("NUM", "1"),
        ]

    def test_tokens_carry_exact_spans(self):
        tokens = _word_lexer().tokenize("ab 12")
        assert tokens[0] == Token("WORD", "ab", 0, 2)
        assert tokens[2] == Token("NUM", "12", 3, 5)
        assert all(token.text == "ab 12"[token.start:token.end] for token in tokens)

    def test_longest_match_wins(self):
        # "ab" must be one WORD token, never two single-letter ones; a rule
        # accepting a prefix of a longer match must lose to the longer one.
        lexer = Lexer([("AB", "ab(ab)*"), ("C", "cc*")])
        assert [(t.tag, t.text) for t in lexer.tokenize("ababcc")] == [
            ("AB", "abab"),
            ("C", "cc"),
        ]

    def test_skip_rules_are_matched_but_not_yielded(self):
        lexer = Lexer(
            [("NUM", plus(DIGITS)), ("SPACE", plus(sym(" ")))],
            skip=("SPACE",),
        )
        assert [(t.tag, t.text) for t in lexer.tokenize(" 1  23 ")] == [
            ("NUM", "1"),
            ("NUM", "23"),
        ]

    def test_empty_input_yields_nothing(self):
        assert _word_lexer().tokenize("") == []

    def test_rule_expressions_may_be_paper_dialect_strings(self):
        # In the paper dialect + is union, so "a+b" is the class {a, b}.
        lexer = Lexer([("AB", "(a+b)(a+b)*"), ("C", "cc*")])
        assert [t.tag for t in lexer.tokenize("abbac")] == ["AB", "C"]

    def test_tokens_are_reiterable(self):
        lexer = _word_lexer()
        first = lexer.tokenize("ab 12")
        second = lexer.tokenize("ab 12")
        assert first == second


class TestErrors:
    def test_stuck_input_raises_with_the_offset(self):
        lexer = _word_lexer()
        with pytest.raises(LexError) as excinfo:
            lexer.tokenize("ab !")
        assert excinfo.value.position == 3
        assert "position 3" in str(excinfo.value)

    def test_tokens_before_the_stuck_position_are_yielded(self):
        stream = _word_lexer().tokens("ab!")
        assert next(stream).text == "ab"
        with pytest.raises(LexError):
            next(stream)

    def test_nullable_rule_is_rejected(self):
        with pytest.raises(LexError, match="empty word"):
            Lexer([("OPT", "a?")])

    def test_overlapping_rules_are_rejected(self):
        # Both rules can start (and continue) a run of a's: the union is
        # not one-unambiguous, which the constructor must report.
        with pytest.raises(NotDeterministicError):
            Lexer([("A", "aa*"), ("AA", "a(a?)")])

    def test_empty_rule_set_is_rejected(self):
        with pytest.raises(LexError, match="at least one rule"):
            Lexer([])

    def test_unknown_skip_name_is_rejected(self):
        with pytest.raises(LexError, match="skip names no rule"):
            Lexer([("A", "aa*")], skip=("GHOST",))


class TestCompilation:
    def test_stats_shape(self):
        stats = _word_lexer().stats()
        assert stats["rules"] == 3
        assert stats["states"] > 0
        assert stats["table_entries"] > 0

    def test_scanner_agrees_with_the_union_pattern(self):
        # Every token's text must be a member of the union language, and
        # the concatenation must reconstruct the input exactly.
        lexer = _word_lexer()
        text = "abc 123 xyz  7"
        tokens = lexer.tokenize(text)
        assert "".join(token.text for token in tokens) == text
        for token in tokens:
            # pass an explicit symbol list: parse_word would eat the
            # whitespace a SPACE token is made of
            assert lexer.pattern.match(list(token.text)), token

    def test_each_tag_names_the_right_rule(self):
        lexer = _word_lexer()
        for text, tag in (("abc", "WORD"), ("405", "NUM"), ("  ", "SPACE")):
            (token,) = lexer.tokenize(text)
            assert token.tag == tag
