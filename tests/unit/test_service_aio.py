"""Tests for the asyncio streaming front (``repro.service.aio``).

The wire framing is tested as pure functions; the server itself is
exercised over real sockets with a hand-rolled HTTP/1.1 client, because
the behaviours under test — chunked NDJSON streaming, backpressure,
deadlines, mid-stream disconnects, keep-alive — are exactly the parts a
convenience client library would paper over.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

import pytest

import repro
from repro.service import wire
from repro.service.aio import AsyncServiceServer
from repro.service.autosize import Autosizer
from repro.service.core import ValidationService
from repro.service.wire import WireError
from repro.xml.memo import AcceptanceMemo

PATTERN = "(ab+b(b?)a)*"
DTD_TEXT = "<!ELEMENT a (b, c?)> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>"
VALID_DOC = "<a><b/></a>"
INVALID_DOC = "<a><c/></a>"


# ---------------------------------------------------------------------------
# wire.py: framing as pure functions
# ---------------------------------------------------------------------------

class TestRequestHead:
    def test_roundtrip(self):
        head = wire.parse_request_head(
            b"POST /match?detail=summary&x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 12\r\n"
        )
        assert head.method == "POST"
        assert head.path == "/match"
        assert head.query == {"detail": "summary", "x": "1"}
        assert head.headers["host"] == "h"
        assert head.content_length() == 12
        assert head.keep_alive()

    def test_oversized_head_is_431(self):
        with pytest.raises(WireError) as caught:
            wire.parse_request_head(b"G" * (wire.MAX_HEAD_BYTES + 1))
        assert caught.value.status == 431

    def test_unknown_version_is_505(self):
        with pytest.raises(WireError) as caught:
            wire.parse_request_head(b"GET / HTTP/2.0\r\n")
        assert caught.value.status == 505

    def test_malformed_request_line_is_400(self):
        with pytest.raises(WireError) as caught:
            wire.parse_request_head(b"GETGARBAGE\r\n")
        assert caught.value.status == 400

    def test_garbage_content_length_is_400(self):
        head = wire.parse_request_head(b"POST / HTTP/1.1\r\nContent-Length: ten\r\n")
        with pytest.raises(WireError) as caught:
            head.content_length()
        assert caught.value.status == 400

    def test_http_10_defaults_to_close(self):
        head = wire.parse_request_head(b"GET / HTTP/1.0\r\n")
        assert not head.keep_alive()
        head = wire.parse_request_head(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n")
        assert head.keep_alive()

    def test_ndjson_content_types(self):
        for content_type in ("application/x-ndjson", "application/ndjson; charset=utf-8"):
            head = wire.parse_request_head(
                f"POST / HTTP/1.1\r\nContent-Type: {content_type}\r\n".encode()
            )
            assert head.wants_ndjson()
        head = wire.parse_request_head(b"POST / HTTP/1.1\r\nContent-Type: application/json\r\n")
        assert not head.wants_ndjson()


class TestDetailNegotiation:
    def test_query_beats_header_beats_accept(self):
        headers = {
            "x-repro-detail": "summary",
            "accept": "application/x-ndjson; detail=full",
        }
        assert wire.negotiate_detail(headers, {"detail": "verdict"}) == "verdict"
        assert wire.negotiate_detail(headers, {}) == "summary"
        assert wire.negotiate_detail(
            {"accept": "application/x-ndjson; detail=verdict"}, {}
        ) == "verdict"
        assert wire.negotiate_detail({}, {}) == "full"

    def test_unknown_level_is_400(self):
        with pytest.raises(WireError) as caught:
            wire.negotiate_detail({}, {"detail": "everything"})
        assert caught.value.status == 400

    def test_shapes(self):
        violations = ("missing <b>", "stray <c>")
        assert wire.shape_verdict(False, violations, "verdict") is False
        assert wire.shape_verdict(False, violations, "summary") == {
            "valid": False,
            "violations": 2,
        }
        assert wire.shape_verdict(True, (), "full") == {"valid": True, "violations": []}


class TestChunkedFraming:
    def test_chunk_roundtrip(self):
        assert wire.chunk(b"abc") == b"3\r\nabc\r\n"
        assert wire.chunk(b"") == b""
        assert wire.parse_chunk_size(b"1a;ext=1\r\n") == 26

    def test_bad_chunk_size_is_400(self):
        with pytest.raises(WireError) as caught:
            wire.parse_chunk_size(b"xyz\r\n")
        assert caught.value.status == 400

    def test_split_lines_keeps_the_tail(self):
        buffer = bytearray(b'"one"\r\n"two"\n"par')
        assert wire.split_lines(buffer) == [b'"one"', b'"two"']
        assert bytes(buffer) == b'"par'
        buffer.extend(b'tial"\n')
        assert wire.split_lines(buffer) == [b'"partial"']

    def test_oversized_line_is_413(self):
        buffer = bytearray(b"x" * (wire.MAX_LINE_BYTES + 1))
        with pytest.raises(WireError) as caught:
            wire.split_lines(buffer)
        assert caught.value.status == 413


class TestRangeRequests:
    def test_plain_and_open_ended(self):
        assert wire.parse_range(None, 100) is None
        assert wire.parse_range("bytes=0-9", 100) == (0, 10)
        assert wire.parse_range("bytes=90-", 100) == (90, 10)
        assert wire.parse_range("bytes=0-1000", 100) == (0, 100)

    def test_suffix_range(self):
        assert wire.parse_range("bytes=-10", 100) == (90, 10)
        assert wire.parse_range("bytes=-1000", 100) == (0, 100)

    def test_unusable_shapes_serve_the_whole_file(self):
        assert wire.parse_range("items=0-9", 100) is None
        assert wire.parse_range("bytes=0-9,20-29", 100) is None
        assert wire.parse_range("bytes=9-0", 100) is None

    def test_beyond_the_file_is_416(self):
        with pytest.raises(WireError) as caught:
            wire.parse_range("bytes=100-", 100)
        assert caught.value.status == 416

    def test_etag_tracks_the_file_identity(self, tmp_path):
        path = tmp_path / "snap.bin"
        path.write_bytes(b"generation-one")
        first = wire.snapshot_etag(os.stat(path))
        replacement = tmp_path / "snap.new"
        replacement.write_bytes(b"generation-two!")
        os.replace(replacement, path)
        assert wire.snapshot_etag(os.stat(path)) != first


# ---------------------------------------------------------------------------
# A minimal async HTTP/1.1 client for the server tests
# ---------------------------------------------------------------------------

class Front:
    """Boots one AsyncServiceServer on an ephemeral port for a test coroutine."""

    def __init__(self, workers: int = 4, **kwargs):
        self.workers = workers
        self.kwargs = kwargs

    async def __aenter__(self) -> "Front":
        self.service = ValidationService(workers=self.workers)
        self.front = AsyncServiceServer(self.service, **self.kwargs)
        await self.front.start("127.0.0.1", 0)
        self.port = self.front.address()[1]
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.front.close()
        self.service.close()


async def _open(port: int):
    return await asyncio.open_connection("127.0.0.1", port)


def _request_bytes(method: str, target: str, headers: dict[str, str], body: bytes = b"") -> bytes:
    lines = [f"{method} {target} HTTP/1.1", "Host: test"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + body


async def _read_response(reader) -> tuple[int, dict[str, str], bytes]:
    head = await reader.readuntil(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    headers: dict[str, str] = {}
    for line in head.split(b"\r\n")[1:]:
        name, sep, value = line.partition(b":")
        if sep:
            headers[name.strip().lower().decode()] = value.strip().decode()
    if headers.get("transfer-encoding") == "chunked":
        body = bytearray()
        while True:
            size = int((await reader.readline()).strip(), 16)
            if size == 0:
                await reader.readline()
                break
            body += await reader.readexactly(size)
            await reader.readexactly(2)
        return status, headers, bytes(body)
    length = int(headers.get("content-length", "0"))
    return status, headers, await reader.readexactly(length)


async def _roundtrip(port: int, method: str, target: str, headers=None, body: bytes = b""):
    reader, writer = await _open(port)
    try:
        sent = dict(headers or {})
        if body and "Content-Length" not in sent and "Transfer-Encoding" not in sent:
            sent["Content-Length"] = str(len(body))
        writer.write(_request_bytes(method, target, sent, body))
        await writer.drain()
        return await _read_response(reader)
    finally:
        writer.close()


async def _json_roundtrip(port: int, method: str, target: str, payload=None, headers=None):
    body = json.dumps(payload).encode() if payload is not None else b""
    sent = {"Content-Type": "application/json", **(headers or {})}
    status, _, raw = await _roundtrip(port, method, target, sent, body)
    return status, json.loads(raw) if raw else None


def _ndjson_body(header: dict, items: list) -> bytes:
    lines = [json.dumps(header)] + [json.dumps(item) for item in items]
    return ("\n".join(lines) + "\n").encode()


async def _stream_roundtrip(port: int, target: str, header: dict, items: list, headers=None):
    body = _ndjson_body(header, items)
    sent = {"Content-Type": "application/x-ndjson", **(headers or {})}
    status, response_headers, raw = await _roundtrip(port, "POST", target, sent, body)
    if status != 200:
        return status, json.loads(raw), None, None
    lines = [json.loads(line) for line in raw.splitlines()]
    return status, lines[0], lines[1:-1], lines[-1]


# ---------------------------------------------------------------------------
# Routing, shapes, keep-alive
# ---------------------------------------------------------------------------

class TestRoutes:
    def test_healthz_and_stats(self):
        async def scenario():
            async with Front() as front:
                status, body = await _json_roundtrip(front.port, "GET", "/healthz")
                assert (status, body["status"]) == (200, "ok")
                status, stats = await _json_roundtrip(front.port, "GET", "/stats")
                assert status == 200
                assert stats["aio"]["connections"] >= 1
                assert stats["aio"]["max_pending_batches"] >= 1
                assert "requests" in stats and "pattern_cache" in stats

        asyncio.run(scenario())

    def test_unknown_endpoint_and_method(self):
        async def scenario():
            async with Front() as front:
                status, _ = await _json_roundtrip(front.port, "GET", "/nope")
                assert status == 404
                status, _, _ = await _roundtrip(front.port, "DELETE", "/match")
                assert status == 405

        asyncio.run(scenario())

    def test_buffered_match_has_the_threaded_shape(self):
        async def scenario():
            async with Front() as front:
                words = ["abba", "bba", "bb", "", "ab"]
                status, body = await _json_roundtrip(
                    front.port, "POST", "/match", {"pattern": PATTERN, "words": words}
                )
                assert status == 200
                oracle = repro.Pattern(PATTERN, compiled=False)
                assert body["verdicts"] == [oracle.match(word) for word in words]
                assert set(body) == {"pattern", "count", "detail", "verdicts", "strategy", "batch_path"}

        asyncio.run(scenario())

    def test_buffered_error_mapping(self):
        async def scenario():
            async with Front() as front:
                status, body = await _json_roundtrip(
                    front.port, "POST", "/match", {"pattern": "(a*ba+bb)*", "words": []}
                )
                assert status == 422  # non-deterministic input, not a server fault
                status, _ = await _json_roundtrip(
                    front.port, "POST", "/match", {"pattern": "((", "words": []}
                )
                assert status == 400
                status, _ = await _json_roundtrip(front.port, "POST", "/match", {"words": []})
                assert status == 400

        asyncio.run(scenario())

    def test_get_with_a_body_is_drained_for_keep_alive(self):
        """A GET carrying a body is unusual but legal: the body must be
        consumed, or the next request on the connection would be parsed
        out of the leftover body bytes and die with a spurious 400."""
        async def scenario():
            async with Front() as front:
                reader, writer = await _open(front.port)
                try:
                    body = b'{"ignored": true}'
                    writer.write(
                        _request_bytes(
                            "GET",
                            "/healthz",
                            {"Content-Length": str(len(body))},
                            body,
                        )
                    )
                    await writer.drain()
                    status, _, _ = await _read_response(reader)
                    assert status == 200
                    # The same connection must still frame correctly.
                    writer.write(_request_bytes("GET", "/stats", {}))
                    await writer.drain()
                    status, _, raw = await _read_response(reader)
                    assert status == 200
                    assert "aio" in json.loads(raw)
                finally:
                    writer.close()

        asyncio.run(scenario())

    def test_keep_alive_carries_sequential_requests(self):
        async def scenario():
            async with Front() as front:
                reader, writer = await _open(front.port)
                try:
                    for _ in range(3):
                        payload = json.dumps(
                            {"pattern": PATTERN, "words": ["abba", "bb"]}
                        ).encode()
                        writer.write(
                            _request_bytes(
                                "POST",
                                "/match",
                                {
                                    "Content-Type": "application/json",
                                    "Content-Length": str(len(payload)),
                                },
                                payload,
                            )
                        )
                        await writer.drain()
                        status, _, raw = await _read_response(reader)
                        assert status == 200
                        assert json.loads(raw)["verdicts"] == [True, False]
                finally:
                    writer.close()

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# NDJSON streaming
# ---------------------------------------------------------------------------

class TestStreaming:
    def test_stream_grammar_and_verdict_order(self):
        async def scenario():
            async with Front() as front:
                words = ["abba", "bb", "", "abbaabba", "ba"]
                status, header, verdicts, trailer = await _stream_roundtrip(
                    front.port, "/match", {"pattern": PATTERN}, words
                )
                assert status == 200
                assert header["pattern"] == PATTERN
                assert "strategy" in header and "batch_path" in header
                oracle = repro.Pattern(PATTERN, compiled=False)
                assert verdicts == [oracle.match(word) for word in words]
                assert trailer == {"count": len(words), "done": True}

        asyncio.run(scenario())

    def test_stream_over_chunked_request_body(self):
        async def scenario():
            async with Front() as front:
                body = _ndjson_body({"pattern": PATTERN}, ["abba", "bb"])
                reader, writer = await _open(front.port)
                try:
                    writer.write(
                        _request_bytes(
                            "POST",
                            "/match",
                            {
                                "Content-Type": "application/x-ndjson",
                                "Transfer-Encoding": "chunked",
                            },
                        )
                    )
                    # Deliver the body in awkward splits to exercise the
                    # frame/line reassembly.
                    for low in range(0, len(body), 7):
                        piece = body[low : low + 7]
                        writer.write(f"{len(piece):x}\r\n".encode() + piece + b"\r\n")
                        await writer.drain()
                    writer.write(b"0\r\n\r\n")
                    await writer.drain()
                    status, _, raw = await _read_response(reader)
                    assert status == 200
                    lines = [json.loads(line) for line in raw.splitlines()]
                    assert lines[1:-1] == [True, False]
                    assert lines[-1]["done"] is True
                finally:
                    writer.close()

        asyncio.run(scenario())

    def test_stream_validate_detail_levels(self):
        async def scenario():
            async with Front() as front:
                documents = [VALID_DOC, INVALID_DOC]
                status, header, verdicts, trailer = await _stream_roundtrip(
                    front.port, "/validate?detail=verdict", {"dtd": DTD_TEXT}, documents
                )
                assert status == 200
                assert header == {"schema": "dtd", "detail": "verdict"}
                assert verdicts == [True, False]

                status, header, verdicts, _ = await _stream_roundtrip(
                    front.port,
                    "/validate",
                    {"dtd": DTD_TEXT},
                    documents,
                    headers={"X-Repro-Detail": "summary"},
                )
                assert header["detail"] == "summary"
                assert verdicts[0] == {"valid": True, "violations": 0}
                assert verdicts[1]["valid"] is False and verdicts[1]["violations"] >= 1

                status, header, verdicts, _ = await _stream_roundtrip(
                    front.port,
                    "/validate",
                    {"dtd": DTD_TEXT},
                    documents,
                    headers={"Accept": "application/x-ndjson; detail=full"},
                )
                assert header["detail"] == "full"
                assert verdicts[0] == {"valid": True, "violations": []}
                assert verdicts[1]["violations"]  # the actual messages

        asyncio.run(scenario())

    def test_buffered_validate_detail_negotiation(self):
        async def scenario():
            async with Front() as front:
                status, body = await _json_roundtrip(
                    front.port,
                    "POST",
                    "/validate?detail=summary",
                    {"dtd": DTD_TEXT, "documents": [VALID_DOC, INVALID_DOC]},
                )
                assert status == 200
                assert body["detail"] == "summary"
                assert body["verdicts"][0] == {"valid": True, "violations": 0}

        asyncio.run(scenario())

    def test_unknown_detail_level_is_400(self):
        async def scenario():
            async with Front() as front:
                status, body = await _json_roundtrip(
                    front.port,
                    "POST",
                    "/validate?detail=everything",
                    {"dtd": DTD_TEXT, "documents": []},
                )
                assert status == 400

        asyncio.run(scenario())

    def test_stream_of_nothing_still_closes_cleanly(self):
        async def scenario():
            async with Front() as front:
                status, header, verdicts, trailer = await _stream_roundtrip(
                    front.port, "/match", {"pattern": PATTERN}, []
                )
                assert status == 200
                assert verdicts == []
                assert trailer == {"count": 0, "done": True}

        asyncio.run(scenario())

    def test_mid_stream_parse_error_stays_in_stream(self):
        """A malformed document after verdicts went out must surface as an
        in-stream error line — never a second HTTP status head spliced into
        the chunked body (which would break framing entirely)."""
        async def scenario():
            async with Front(stream_batch=2) as front:
                documents = [VALID_DOC, VALID_DOC, "<a><unclosed", VALID_DOC]
                # _read_response decodes the chunked framing: a raw
                # "HTTP/1.1 400" head injected mid-body would blow up the
                # chunk-size parse and fail the test here.
                status, _, raw = await _roundtrip(
                    front.port,
                    "POST",
                    "/validate?detail=verdict",
                    {"Content-Type": "application/x-ndjson"},
                    _ndjson_body({"dtd": DTD_TEXT}, documents),
                )
                assert status == 200  # the head was already out
                lines = [json.loads(line) for line in raw.splitlines()]
                assert lines[0] == {"schema": "dtd", "detail": "verdict"}
                assert lines[1:-1] == [True, True]  # the first batch flowed
                assert "error" in lines[-1]  # ... then the in-stream error
                assert all(
                    not (isinstance(line, dict) and line.get("done")) for line in lines
                )

        asyncio.run(scenario())

    def test_non_deterministic_stream_header_is_422(self):
        async def scenario():
            async with Front() as front:
                status, body, _, _ = await _stream_roundtrip(
                    front.port, "/match", {"pattern": "(a*ba+bb)*"}, ["a"]
                )
                assert status == 422

        asyncio.run(scenario())

    def test_one_stream_counts_as_one_request(self):
        async def scenario():
            async with Front() as front:
                before = front.service.stats()["requests"]["total"]
                await _stream_roundtrip(
                    front.port, "/match", {"pattern": PATTERN}, ["abba"] * 900
                )
                after = front.service.stats()["requests"]["total"]
                assert after == before + 1

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------

class TestDeadlines:
    def test_invalid_deadline_header_is_400(self):
        async def scenario():
            async with Front() as front:
                status, _ = await _json_roundtrip(
                    front.port,
                    "POST",
                    "/match",
                    {"pattern": PATTERN, "words": []},
                    headers={"X-Repro-Deadline-Ms": "soon"},
                )
                assert status == 400

        asyncio.run(scenario())

    def test_buffered_deadline_exceeded_is_504(self):
        async def scenario():
            async with Front(workers=2) as front:
                words = ["abba" * 8] * 20000  # comfortably more than 1ms of work
                status, body = await _json_roundtrip(
                    front.port,
                    "POST",
                    "/match",
                    {"pattern": PATTERN, "words": words},
                    headers={"X-Repro-Deadline-Ms": "1"},
                )
                assert status == 504
                assert "deadline" in body["error"]
                assert front.front.deadline_hits == 1

        asyncio.run(scenario())

    def test_mid_stream_deadline_truncates_with_an_error_line(self):
        async def scenario():
            async with Front() as front:
                reader, writer = await _open(front.port)
                try:
                    writer.write(
                        _request_bytes(
                            "POST",
                            "/match",
                            {
                                "Content-Type": "application/x-ndjson",
                                "Transfer-Encoding": "chunked",
                                "X-Repro-Deadline-Ms": "300",
                            },
                        )
                    )
                    opening = _ndjson_body({"pattern": PATTERN}, ["abba"])
                    writer.write(f"{len(opening):x}\r\n".encode() + opening + b"\r\n")
                    await writer.drain()
                    # ... then stall: the server must cut the stream at the
                    # deadline instead of waiting for the body forever.
                    status, headers, raw = await _read_response(reader)
                    assert status == 200  # the stream had already started
                    lines = [json.loads(line) for line in raw.splitlines()]
                    assert "error" in lines[-1]
                    assert all(
                        not (isinstance(line, dict) and line.get("done")) for line in lines
                    )
                finally:
                    writer.close()

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Backpressure and disconnects
# ---------------------------------------------------------------------------

class TestBackpressure:
    def test_outstanding_batches_stay_bounded(self):
        async def scenario():
            async with Front(workers=2, stream_batch=1, max_pending=2) as front:
                service = front.service
                original = service.submit
                state = {"outstanding": 0, "peak": 0, "batches": 0}

                def tracking_submit(work, *args, **kwargs):
                    def slowed(*inner_args, **inner_kwargs):
                        time.sleep(0.005)
                        return work(*inner_args, **inner_kwargs)

                    state["outstanding"] += 1
                    state["batches"] += 1
                    state["peak"] = max(state["peak"], state["outstanding"])
                    future = original(slowed, *args, **kwargs)
                    future.add_done_callback(
                        lambda _f: state.__setitem__("outstanding", state["outstanding"] - 1)
                    )
                    return future

                service.submit = tracking_submit
                try:
                    words = ["abba"] * 40
                    status, _, verdicts, trailer = await _stream_roundtrip(
                        front.port, "/match", {"pattern": PATTERN}, words
                    )
                finally:
                    service.submit = original
                assert status == 200
                assert trailer["count"] == len(words)
                # The compile rides submit too; everything beyond it is
                # the stream's micro-batches.
                assert state["batches"] >= len(words)
                # queue depth + the batch in the producer's hand + the one
                # the writer is awaiting
                assert state["peak"] <= front.front.max_pending + 2

        asyncio.run(scenario())

    def test_mid_stream_disconnect_leaves_the_server_healthy(self):
        async def scenario():
            async with Front() as front:
                reader, writer = await _open(front.port)
                writer.write(
                    _request_bytes(
                        "POST",
                        "/match",
                        {
                            "Content-Type": "application/x-ndjson",
                            "Transfer-Encoding": "chunked",
                        },
                    )
                )
                opening = _ndjson_body({"pattern": PATTERN}, ["abba"] * 500)
                writer.write(f"{len(opening):x}\r\n".encode() + opening + b"\r\n")
                await writer.drain()
                # Read the response head to be sure the stream started,
                # then vanish without warning.
                await reader.readuntil(b"\r\n\r\n")
                writer.transport.abort()
                # The server must shrug this off and keep serving.
                for _ in range(50):
                    await asyncio.sleep(0.02)
                    status, body = await _json_roundtrip(front.port, "GET", "/healthz")
                    assert status == 200
                    if front.service.stats()["requests"]["in_flight"] == 0:
                        break
                assert front.service.stats()["requests"]["in_flight"] == 0

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Auth hook
# ---------------------------------------------------------------------------

class TestAuth:
    def test_bearer_token_gates_everything_but_health(self):
        async def scenario():
            async with Front(auth_token="sesame") as front:
                status, _ = await _json_roundtrip(front.port, "GET", "/healthz")
                assert status == 200
                status, _ = await _json_roundtrip(front.port, "GET", "/stats")
                assert status == 401
                status, _ = await _json_roundtrip(
                    front.port,
                    "GET",
                    "/stats",
                    headers={"Authorization": "Bearer wrong"},
                )
                assert status == 401
                status, _ = await _json_roundtrip(
                    front.port,
                    "GET",
                    "/stats",
                    headers={"Authorization": "Bearer sesame"},
                )
                assert status == 200

        asyncio.run(scenario())

    def test_custom_hook_overrides_the_default(self):
        async def scenario():
            async with Front() as front:
                front.front.authorize = lambda head: head.headers.get("x-magic") == "yes"
                status, _ = await _json_roundtrip(front.port, "GET", "/stats")
                assert status == 401
                status, _ = await _json_roundtrip(
                    front.port, "GET", "/stats", headers={"X-Magic": "yes"}
                )
                assert status == 200

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# GET /snapshot: ETag, ranges, sendfile
# ---------------------------------------------------------------------------

class TestSnapshotDownloads:
    def test_full_download_carries_etag_and_length(self, tmp_path):
        payload = os.urandom(8192)
        path = tmp_path / "snap.bin"
        path.write_bytes(payload)

        async def scenario():
            async with Front(snapshot_source=str(path)) as front:
                status, headers, raw = await _roundtrip(front.port, "GET", "/snapshot")
                assert status == 200
                assert raw == payload
                assert headers["etag"] == wire.snapshot_etag(os.stat(path))
                assert headers["accept-ranges"] == "bytes"
                assert int(headers["content-length"]) == len(payload)
                assert front.front.sendfile_sends >= 1 or True  # fallback is fine too

        asyncio.run(scenario())

    def test_range_resume_and_if_range(self, tmp_path):
        payload = os.urandom(4096)
        path = tmp_path / "snap.bin"
        path.write_bytes(payload)

        async def scenario():
            async with Front(snapshot_source=str(path)) as front:
                status, headers, first_half = await _roundtrip(
                    front.port, "GET", "/snapshot", {"Range": "bytes=0-2047"}
                )
                assert status == 206
                assert first_half == payload[:2048]
                assert headers["content-range"] == f"bytes 0-2047/{len(payload)}"
                etag = headers["etag"]

                # Same generation: the resume completes the byte stream.
                status, _, second_half = await _roundtrip(
                    front.port,
                    "GET",
                    "/snapshot",
                    {"Range": "bytes=2048-", "If-Range": etag},
                )
                assert status == 206
                assert first_half + second_half == payload

                # New generation (atomic replace = new inode): the stale
                # tag must force a full 200, never a spliced 206.
                replacement = tmp_path / "snap.new"
                new_payload = os.urandom(4096)
                replacement.write_bytes(new_payload)
                os.replace(replacement, path)
                status, headers, body = await _roundtrip(
                    front.port,
                    "GET",
                    "/snapshot",
                    {"Range": "bytes=2048-", "If-Range": etag},
                )
                assert status == 200
                assert body == new_payload

        asyncio.run(scenario())

    def test_range_beyond_the_file_is_416(self, tmp_path):
        path = tmp_path / "snap.bin"
        path.write_bytes(b"tiny")

        async def scenario():
            async with Front(snapshot_source=str(path)) as front:
                status, headers, _ = await _roundtrip(
                    front.port, "GET", "/snapshot", {"Range": "bytes=100-"}
                )
                assert status == 416
                assert headers["content-range"] == "bytes */4"

        asyncio.run(scenario())

    def test_no_snapshot_is_404(self):
        async def scenario():
            async with Front() as front:
                status, _, _ = await _roundtrip(front.port, "GET", "/snapshot")
                assert status == 404

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Autosizing: the telemetry→bounds feedback loop
# ---------------------------------------------------------------------------

class TestMemoResize:
    def test_growing_lifts_the_insertion_cap(self):
        memo = AcceptanceMemo(limit=2)
        memo.put(("a",), True)
        memo.put(("b",), False)
        memo.put(("c",), True)  # bounced: full
        assert len(memo) == 2
        assert memo.resize(4) == 2
        memo.put(("c",), True)
        assert len(memo) == 3

    def test_shrinking_keeps_the_newest_entries(self):
        memo = AcceptanceMemo(limit=8)
        for index in range(6):
            memo.put((f"s{index}",), True)
        memo.resize(2)
        assert len(memo) == 2
        assert memo.get(("s5",)) is True
        assert memo.get(("s4",)) is True
        assert memo.get(("s0",)) is None

    def test_rejects_a_nonpositive_bound(self):
        with pytest.raises(ValueError):
            AcceptanceMemo().resize(0)


class TestCompileCacheResize:
    def test_resize_rebounds_and_restores(self):
        previous = repro.resize_compile_cache(1024)
        try:
            assert repro.stats()["pattern_cache"]["max_size"] == 1024
        finally:
            repro.resize_compile_cache(previous)

    def test_shrink_evicts_down_to_the_bound(self):
        repro.purge()
        previous = repro.stats()["pattern_cache"]["max_size"]
        try:
            for index in range(8):
                repro.compile(f"(a{'b' * (index + 1)})*")
            repro.resize_compile_cache(2)
            assert repro.stats()["pattern_cache"]["size"] <= 2
        finally:
            repro.resize_compile_cache(previous)
            repro.purge()

    def test_rejects_a_nonpositive_bound(self):
        with pytest.raises(ValueError):
            repro.resize_compile_cache(0)


class TestAutosizer:
    def _fresh(self, **kwargs) -> Autosizer:
        return Autosizer(**kwargs)

    def test_grows_the_compile_cache_on_evictions(self):
        repro.purge()
        previous = repro.resize_compile_cache(4)
        try:
            sizer = self._fresh(cache_floor=4, cache_ceiling=64)
            for index in range(10):  # 10 inserts through a 4-slot cache
                repro.compile(f"(a{'b' * (index + 1)})*")
            decisions = sizer.sample()
            grown = [d for d in decisions if d["target"] == "compile_cache"]
            assert grown and grown[0]["action"] == "grow"
            assert repro.stats()["pattern_cache"]["max_size"] == 8
        finally:
            repro.resize_compile_cache(previous)
            repro.purge()

    def test_shrinks_an_idle_oversized_cache(self):
        repro.purge()
        previous = repro.resize_compile_cache(512)
        try:
            repro.compile("(ab)*")  # 1 entry under a 512 bound
            sizer = self._fresh(cache_floor=64, cache_ceiling=1024, idle_ticks=2)
            assert sizer.sample() == []  # first idle tick: patience
            decisions = sizer.sample()
            shrunk = [d for d in decisions if d["target"] == "compile_cache"]
            assert shrunk and shrunk[0]["action"] == "shrink"
            assert repro.stats()["pattern_cache"]["max_size"] == 256
        finally:
            repro.resize_compile_cache(previous)
            repro.purge()

    def test_grows_a_full_busy_memo(self):
        repro.purge()
        try:
            pattern = repro.compile("(b?)(c?)(d?)")
            memo = pattern.acceptance_memo()
            memo.resize(2)
            memo.put(("b",), True)
            memo.put(("c",), True)
            sizer = self._fresh(memo_floor=2, memo_ceiling=16)
            sizer.sample()  # registers the memo's baseline traffic
            memo.get(("d",))  # a miss the bound refused to help with
            decisions = sizer.sample()
            grown = [d for d in decisions if d["target"] == "memo"]
            assert grown and grown[0]["action"] == "grow"
            assert memo.limit == 4
        finally:
            repro.purge()

    def test_shrinks_an_idle_sparse_memo(self):
        repro.purge()
        try:
            pattern = repro.compile("(e?)(f?)")
            memo = pattern.acceptance_memo()
            memo.resize(64)
            memo.put(("e",), True)
            sizer = self._fresh(memo_floor=8, memo_ceiling=128, idle_ticks=2)
            assert not [d for d in sizer.sample() if d["target"] == "memo"]  # patience
            decisions = sizer.sample()
            shrunk = [d for d in decisions if d["target"] == "memo"]
            assert shrunk and shrunk[0]["action"] == "shrink"
            assert memo.limit == 32
        finally:
            repro.purge()

    def test_recompiled_pattern_restarts_its_baseline(self):
        """Tracking is keyed by the compile-cache key: after an eviction
        and recompile, the fresh memo's lower counters re-baseline instead
        of inheriting the dead memo's traffic (which a recycled ``id()``
        used to make possible)."""
        repro.purge()
        try:
            expr = "(g?)(h?)"
            memo = repro.compile(expr).acceptance_memo()
            memo.resize(4)
            for _ in range(10):
                memo.get(("g",))
            sizer = self._fresh(memo_floor=2, memo_ceiling=16)
            sizer.sample()  # baseline: 10 probes
            repro.purge()
            fresh_memo = repro.compile(expr).acceptance_memo()  # same cache key
            fresh_memo.resize(2)
            fresh_memo.put(("g",), True)
            fresh_memo.put(("h",), True)
            # Counter (2) is behind the stale baseline (10): this tick
            # must quietly re-baseline, not act on a bogus delta.
            assert not [d for d in sizer.sample() if d["target"] == "memo"]
            fresh_memo.get(("gh",))  # a miss the bound refused to help with
            decisions = sizer.sample()
            grown = [d for d in decisions if d["target"] == "memo"]
            assert grown and grown[0]["action"] == "grow"
            assert fresh_memo.limit == 4
        finally:
            repro.purge()

    def test_stats_surface_through_the_service(self):
        service = ValidationService(workers=1)
        try:
            sizer = Autosizer(service, interval=999)
            sizer.sample()
            block = service.stats()["autosize"]
            assert block["ticks"] == 1
            assert block["compile_cache"]["floor"] == sizer.cache_floor
            assert isinstance(block["decisions"], list)
        finally:
            service.close()

    def test_background_thread_starts_and_stops(self):
        sizer = Autosizer(interval=0.01)
        sizer.start()
        try:
            deadline = time.time() + 2.0
            while sizer.ticks == 0 and time.time() < deadline:
                time.sleep(0.01)
            assert sizer.ticks > 0
        finally:
            sizer.stop()
        assert sizer.stats()["running"] is False
