"""Unit tests for the compiled lazy-DFA runtime and the compile cache."""

from __future__ import annotations

import pytest

import repro
from repro.matching import CompiledRun, CompiledRuntime, build_matcher, compile_runtime
from repro.matching.runtime import (
    DEAD,
    clear_shared_rows,
    densify_threshold,
    shared_row_count,
)
from repro.regex.ast import Sym
from repro.regex.parse_tree import build_parse_tree
from repro.xml import element, parse_dtd
from repro.xml.dtd import parse_content_model
from repro.xml.validator import DTDValidator


@pytest.fixture(autouse=True)
def _fresh_compile_cache():
    """Keep the module-level compile cache from leaking between tests."""
    repro.purge()
    yield
    repro.purge()


def _runtime(expr: str) -> CompiledRuntime:
    return CompiledRuntime(build_matcher(build_parse_tree(expr), verify=False))


class TestCompiledRuntime:
    def test_agrees_on_paper_example(self):
        runtime = _runtime("(ab+b(b?)a)*")
        matcher = runtime.matcher
        for word in ["", "ab", "abba", "bba", "bb", "a", "ba", "abab", "zz"]:
            assert runtime.accepts(word) == matcher.accepts(word), word

    def test_unknown_symbols_reject_via_encoding(self):
        runtime = _runtime("(ab)*")
        codes = runtime.encode(["a", "z", "b"])
        assert codes[0] >= 0 and codes[2] >= 0
        assert codes[1] < 0
        assert not runtime.accepts_encoded(codes)
        assert runtime.alphabet.decode([codes[0], codes[2]]) == ["a", "b"]

    def test_transitions_memoize_and_misses_stop_growing(self):
        runtime = _runtime("(ab+b(b?)a)*")
        assert runtime.stats()["transitions_memoized"] == 0
        first = runtime.accepts("abba")
        warm = runtime.misses
        assert warm > 0
        assert runtime.accepts("abba") is first
        assert runtime.misses == warm  # second pass replays memoized rows
        stats = runtime.stats()
        assert stats["transitions_memoized"] == warm

    def test_dead_transitions_are_memoized_too(self):
        runtime = _runtime("(ab)*")
        assert not runtime.accepts("aa")
        warm = runtime.misses
        assert not runtime.accepts("aa")
        assert runtime.misses == warm

    def test_match_many_matches_individual_verdicts(self):
        runtime = _runtime("(ab+b(b?)a)*")
        words = ["abba", "bb", "", "ab", "bba"]
        assert runtime.match_many(words) == [runtime.accepts(word) for word in words]

    def test_step_rejects_negative_codes(self):
        runtime = _runtime("a")
        assert runtime.step(runtime.tree.start.position_index, -1) == DEAD

    def test_compile_runtime_is_cached_on_the_matcher(self):
        matcher = build_matcher(build_parse_tree("(ab)*"), verify=False)
        assert compile_runtime(matcher) is compile_runtime(matcher)


class TestDenseRows:
    #: six-symbol mixed content: alphabet width 6, densify threshold 4
    EXPR = "(a+b+c+d+e+f)*"

    def test_densify_threshold_profile(self):
        # full coverage for tiny alphabets, half coverage (>= DENSIFY_MIN)
        # for larger ones
        assert [densify_threshold(w) for w in (1, 2, 3, 4, 8, 20, 100)] == [
            1, 2, 3, 4, 4, 10, 50,
        ]

    def test_hot_row_densifies_and_is_completed_eagerly(self):
        runtime = _runtime(self.EXPR)
        for symbol in "abc":
            runtime.accepts(symbol)
        assert runtime.stats()["dense_rows"] == 0  # below threshold
        runtime.accepts("d")  # fourth distinct code: the start row promotes
        stats = runtime.stats()
        assert stats["dense_rows"] >= 1
        # eager completion resolved e and f at promotion time: probing them
        # now must not delegate to the wrapped matcher again
        warm = runtime.misses
        assert runtime.accepts("e") and runtime.accepts("f")
        assert runtime.misses == warm
        assert runtime.stats()["transitions_memoized"] == runtime.misses

    def test_dense_rows_agree_with_matcher(self):
        runtime = _runtime(self.EXPR)
        runtime._densify_at = 1  # promote every state immediately
        matcher = build_matcher(build_parse_tree(self.EXPR), verify=False)
        for word in ["", "abc", "fedcba", "az", "aa", "abcdef"]:
            assert runtime.accepts(word) == matcher.accepts(word), word
        stats = runtime.stats()
        assert stats["dense_rows"] == stats["states_visited"] > 0

    def test_dense_step_memoizes_dead_transitions(self):
        runtime = _runtime("(ab)*")
        runtime._densify_at = 1
        assert runtime.accepts("ab")
        start = runtime._start_state
        b_code = runtime.alphabet.code("b")
        assert runtime.step(start, b_code) == runtime.step(start, b_code) < 0
        assert runtime.step(start, -1) == DEAD

    def test_structurally_equal_runtimes_share_dense_rows(self):
        first = _runtime(self.EXPR)
        second = _runtime(self.EXPR)
        for runtime in (first, second):
            for word in ["a", "b", "c", "d", "e", "f"]:
                runtime.accepts(word)
        assert first.stats()["dense_rows"] > 0
        # the second runtime's dense rows alias the first's interned arrays
        assert second.row_dedups > 0
        shared = [row for row in second._rows if row is not None and type(row) is not dict]
        assert any(any(row is other for other in first._rows) for row in shared)

    def test_streaming_over_dense_rows(self):
        matcher = build_matcher(build_parse_tree(self.EXPR), verify=False)
        runtime = CompiledRuntime(build_matcher(build_parse_tree(self.EXPR), verify=False))
        runtime._densify_at = 1
        for word in ["abc", "az", ""]:
            direct = matcher.start()
            compiled = runtime.start()
            for symbol in word:
                assert compiled.feed(symbol) == direct.feed(symbol), (word, symbol)
                assert compiled.is_accepting() == direct.is_accepting(), (word, symbol)

    def test_purge_clears_the_shared_registry(self):
        runtime = _runtime(self.EXPR)
        runtime._densify_at = 1
        runtime.accepts("a")
        assert shared_row_count() > 0
        repro.purge()
        assert shared_row_count() == 0
        # already-densified runtimes keep their rows and verdicts
        assert runtime.accepts("ab")
        clear_shared_rows()  # idempotent


class TestCompiledRunStreaming:
    def test_streaming_equivalence_with_direct_run(self):
        matcher = build_matcher(build_parse_tree("(ab+b(b?)a)*"), verify=False)
        runtime = compile_runtime(matcher)
        for word in ["abba", "abz", "bbab", ""]:
            direct = matcher.start()
            compiled = runtime.start()
            for symbol in word:
                assert compiled.feed(symbol) == direct.feed(symbol), (word, symbol)
                assert compiled.is_accepting() == direct.is_accepting(), (word, symbol)
                assert compiled.consumed == direct.consumed
                assert compiled.position is direct.position

    def test_sentinel_symbols_kill_both_paths_identically(self):
        # The literal '$' labels only the R1 end sentinel, which is outside
        # the user alphabet: neither path may transition into it.
        matcher = build_matcher(build_parse_tree("(ab)*"), verify=False)
        runtime = compile_runtime(matcher)
        for sentinel in ("$", "#"):
            direct = matcher.start()
            compiled = runtime.start()
            assert direct.feed("a") and compiled.feed("a")
            assert not direct.feed(sentinel)
            assert not compiled.feed(sentinel)
            assert direct.consumed == compiled.consumed == 1
            assert not matcher.accepts(["a", "b", sentinel])
            assert not runtime.accepts(["a", "b", sentinel])

    def test_decode_rejects_unknown_codes(self):
        runtime = _runtime("(ab)*")
        with pytest.raises(LookupError):
            runtime.alphabet.decode(runtime.encode(["a", "z"]))

    def test_dead_runs_stay_dead(self):
        run = _runtime("(ab)*").start()
        assert run.feed("a")
        assert not run.feed("a")
        assert not run.alive
        assert not run.feed("b")  # still dead even on a symbol that once worked
        assert not run.is_accepting()

    def test_feed_all_stops_at_first_mismatch(self):
        run = _runtime("(ab)*").start()
        assert not run.feed_all("abz")
        assert run.consumed == 2
        assert not run.alive
        assert not run.feed_all("ab")

    def test_feed_all_whole_word(self):
        run = _runtime("(ab)*").start()
        assert run.feed_all("abab")
        assert run.consumed == 4
        assert run.is_accepting()


class TestCompileCache:
    def test_compile_returns_cached_pattern(self):
        first = repro.compile("(ab)*")
        assert repro.compile("(ab)*") is first
        assert repro.stats()["pattern_cache"]["hits"] == 1

    def test_cache_distinguishes_dialect_strategy_and_compiled(self):
        base = repro.compile("(ab)*")
        assert repro.compile("(ab)*", strategy="glushkov-dfa") is not base
        assert repro.compile("(ab)*", compiled=False) is not base

    def test_purge_empties_the_cache(self):
        first = repro.compile("(ab)*")
        repro.purge()
        assert repro.stats()["pattern_cache"]["size"] == 0
        assert repro.compile("(ab)*") is not first

    def test_failed_compiles_do_not_inflate_evictions(self):
        from repro.errors import RegexSyntaxError

        with pytest.raises(RegexSyntaxError):
            repro.compile("((")
        stats = repro.stats()["pattern_cache"]
        assert stats["misses"] == 1  # the attempt is counted ...
        assert stats["evictions"] == 0  # ... but nothing was inserted or evicted

    def test_shared_registry_releases_rows_of_dead_runtimes(self):
        import gc

        runtime = _runtime("(a+b+c+d+e+f)*")
        runtime._densify_at = 1
        runtime.accepts("a")
        assert shared_row_count() > 0
        del runtime
        gc.collect()
        assert shared_row_count() == 0  # weak registry: no leak after eviction

    def test_eviction_counter_tracks_lru_overflow(self):
        assert repro.stats()["pattern_cache"]["evictions"] == 0
        overflow = 5
        for index in range(repro.COMPILE_CACHE_SIZE + overflow):
            repro.compile(Sym(f"s{index}"))
        stats = repro.stats()["pattern_cache"]
        assert stats["size"] == repro.COMPILE_CACHE_SIZE == stats["max_size"]
        assert stats["evictions"] == overflow
        assert stats["misses"] == repro.COMPILE_CACHE_SIZE + overflow

    def test_pattern_stats_reports_runtime_counters(self):
        pattern = repro.compile("(ab+b(b?)a)*")
        assert pattern.stats() is None  # nothing matched yet
        pattern.match("abba")
        runtime = pattern.stats()
        assert runtime["misses"] > 0
        assert runtime["transitions_memoized"] == runtime["misses"]
        assert {"dense_rows", "shared_rows"} <= set(runtime)

    def test_deprecated_stats_aliases_warn_and_delegate(self):
        pattern = repro.compile("(ab+b(b?)a)*")
        pattern.match("abba")
        with pytest.deprecated_call():
            assert pattern.runtime_stats() == pattern.stats()
        with pytest.deprecated_call():
            combined = pattern.cache_stats()
        assert combined["runtime"] == pattern.stats()
        assert combined["pattern_cache"]["misses"] >= 1
        with pytest.deprecated_call():
            assert repro.cache_stats() == repro.stats()["pattern_cache"]
        with pytest.deprecated_call():
            assert set(repro.snapshot_stats()) == set(repro.stats()["snapshot"])

    def test_uncompiled_pattern_reports_no_runtime(self):
        pattern = repro.compile("(ab)*", compiled=False)
        pattern.match("ab")  # builds the matcher but no runtime
        assert pattern.stats() is None

    def test_cached_pattern_shares_warm_runtime(self):
        pattern = repro.compile("(ab+b(b?)a)*")
        pattern.match("abba")
        warm = pattern.runtime.misses
        again = repro.compile("(ab+b(b?)a)*")
        assert again.runtime is pattern.runtime
        again.match("abba")
        assert again.runtime.misses == warm


class TestPatternRuntimePaths:
    def test_match_all_agrees_with_match(self):
        pattern = repro.Pattern("(ab+b(b?)a)*")
        words = ["abba", "bb", "", "ab", ["a", "b"], "b,b,a"]
        assert pattern.match_all(words) == [pattern.match(word) for word in words]

    def test_uncompiled_fallback_agrees(self):
        compiled = repro.Pattern("(ab+b(b?)a)*")
        direct = repro.Pattern("(ab+b(b?)a)*", compiled=False)
        words = ["abba", "bb", "", "ab", "bba", "zz"]
        assert compiled.match_all(words) == direct.match_all(words)
        assert isinstance(direct.stream(), repro.matching.MatchRun)
        assert isinstance(compiled.stream(), CompiledRun)

    def test_runtime_property_shares_matcher_runtime(self):
        pattern = repro.Pattern("(ab)*")
        assert pattern.runtime is compile_runtime(pattern.matcher)

    def test_plus_fallback_semantics_run_compiled(self):
        # b+ under the outer + loses Glushkov-determinism after the
        # E+ -> E E* rewriting; the k-occurrence fallback must behave the
        # same through the runtime.
        pattern = repro.Pattern("(a | b+)+", dialect="named")
        assert pattern.is_deterministic
        assert not pattern.tree_report.deterministic  # rewritten tree is ambiguous
        words = [["a"], ["b", "b"], ["a", "b", "a"], [], ["c"]]
        expected = [True, True, True, False, False]
        assert pattern.match_all(words) == expected
        direct = repro.Pattern("(a | b+)+", dialect="named", compiled=False)
        assert direct.match_all(words) == expected


class TestValidatorFastPath:
    DTD_TEXT = """
    <!ELEMENT catalog (product+)>
    <!ELEMENT product (name, price, (description | summary)?, tag*)>
    <!ELEMENT name (#PCDATA)> <!ELEMENT price (#PCDATA)>
    <!ELEMENT description (#PCDATA)> <!ELEMENT summary (#PCDATA)> <!ELEMENT tag (#PCDATA)>
    """

    def _product(self, valid: bool = True):
        children = [element("name", text="n"), element("price", text="9")]
        if not valid:
            children.reverse()
        return element("product", *children, element("tag"))

    def _document(self, valid: bool = True):
        return element("catalog", self._product(valid), self._product())

    def test_compiled_and_direct_validators_agree(self):
        dtd = parse_dtd(self.DTD_TEXT)
        fast = DTDValidator(dtd)
        slow = DTDValidator(dtd, compiled=False)
        for valid in (True, False):
            document = self._document(valid)
            assert fast.is_valid(document) == slow.is_valid(document) == valid

    def test_streaming_checker_over_runtime(self):
        dtd = parse_dtd(self.DTD_TEXT)
        checker = DTDValidator(dtd).checker_for("product")
        assert checker.feed("name") and checker.feed("price")
        assert checker.complete()
        assert checker.feed("tag") and checker.complete()
        assert not checker.feed("name")  # out of order: run dies
        assert checker.consumed == 3

    def test_content_model_parse_is_memoized(self):
        model = parse_content_model("(name, price, tag*)")
        assert parse_content_model("(name, price, tag*)") is model

    def test_repeated_elements_share_memoized_rows(self):
        dtd = parse_dtd(self.DTD_TEXT)
        validator = DTDValidator(dtd)
        runtime = validator._plans["product"].built_runtime()
        validator.validate(self._document())
        warm = runtime.misses
        validator.validate(self._document())
        assert runtime.misses == warm
